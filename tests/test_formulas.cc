/**
 * @file
 * Parameterized sweeps over the analytic formulas that anchor the
 * power model: booster droop floors, usable-energy windows, latch
 * retention scaling, and provisioning arithmetic.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/provision.hh"
#include "power/bankswitch.hh"
#include "power/booster.hh"
#include "power/parts.hh"
#include "power/units.hh"

using namespace capy;
using namespace capy::power;

/** Droop floor: V* solves V - (P_in/V) ESR = Vmin exactly. */
class DroopSweep
    : public ::testing::TestWithParam<std::tuple<double, double>>
{};

TEST_P(DroopSweep, QuadraticRootSatisfiesEquation)
{
    auto [load, esr] = GetParam();
    OutputBoosterSpec out;
    double v = brownoutVoltage(out, load, esr);
    double p_in = storageDrawPower(out, load);
    EXPECT_NEAR(v - (p_in / v) * esr, out.minInputRun, 1e-9)
        << "load=" << load << " esr=" << esr;
    EXPECT_GE(v, out.minInputRun);
    // Monotonicity in both arguments.
    EXPECT_GE(brownoutVoltage(out, load * 2.0, esr), v);
    EXPECT_GE(brownoutVoltage(out, load, esr * 2.0), v);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DroopSweep,
    ::testing::Combine(::testing::Values(1e-3, 8e-3, 30e-3, 90e-3),
                       ::testing::Values(0.01, 1.0, 25.0, 160.0)));

/** Latch retention: R C ln(Vfull/Vth) scales linearly in R and C. */
class RetentionSweep : public ::testing::TestWithParam<double>
{};

TEST_P(RetentionSweep, ScalesWithRc)
{
    double scale = GetParam();
    SwitchSpec base;
    SwitchSpec big = base;
    big.latchCapacitance *= scale;
    BankSwitch a(base), b(big);
    EXPECT_NEAR(b.retentionTime(), scale * a.retentionTime(),
                1e-9 * b.retentionTime());
}

INSTANTIATE_TEST_SUITE_P(Scales, RetentionSweep,
                         ::testing::Values(0.5, 2.0, 4.7, 10.0));

/** requiredCapacitance: the produced bank's usable window actually
 *  covers the demand, across a demand grid. */
class ProvisionSweep
    : public ::testing::TestWithParam<std::tuple<double, double>>
{};

TEST_P(ProvisionSweep, ProducedCapacitanceCoversDemand)
{
    auto [power_w, duration] = GetParam();
    PowerSystem::Spec spec;
    core::TaskEnergy demand{power_w, duration};
    double c = core::requiredCapacitance(demand, spec,
                                         parts::x5r100uF(), 1.0);
    ASSERT_GT(c, 0.0);
    // Check: stored window energy at that capacitance >= storage-side
    // demand.
    double units = std::max(1.0, c / parts::x5r100uF().capacitance);
    double esr = parts::x5r100uF().esr / units;
    double vtop = spec.maxStorageVoltage;
    double v_bo = brownoutVoltage(spec.output, power_w, esr);
    double stored = 0.5 * c * (vtop * vtop - v_bo * v_bo);
    double needed =
        storageDrawPower(spec.output, power_w) * duration;
    EXPECT_GE(stored, needed * 0.999)
        << "P=" << power_w << " d=" << duration;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ProvisionSweep,
    ::testing::Combine(::testing::Values(2e-3, 10e-3, 25e-3),
                       ::testing::Values(5e-3, 0.1, 1.0)));

TEST(Formulas, UsableWindowGrowsWithTopVoltage)
{
    OutputBoosterSpec out;
    double esr = 1.0;
    double v_bo = brownoutVoltage(out, 10e-3, esr);
    double c = 10e-3;
    double w25 = 0.5 * c * (2.5 * 2.5 - v_bo * v_bo);
    double w30 = 0.5 * c * (3.0 * 3.0 - v_bo * v_bo);
    EXPECT_GT(w30, w25);
    // The pre-charge penalty (0.3 V) costs a predictable fraction.
    double w27 = 0.5 * c * (2.7 * 2.7 - v_bo * v_bo);
    EXPECT_NEAR((w30 - w27) / w30, (9.0 - 7.29) / (9.0 - v_bo * v_bo),
                1e-9);
}

TEST(Formulas, InputBoosterMonotoneInHarvest)
{
    InputBoosterSpec in;
    double prev = 0.0;
    for (double p = 1e-3; p <= 20e-3; p += 1e-3) {
        double chg = inputChargePower(in, p, 3.3, 2.0);
        EXPECT_GE(chg, prev);
        prev = chg;
    }
}

TEST(Formulas, ColdStartTrickleFractionExact)
{
    InputBoosterSpec in;
    in.bypassEnabled = false;
    for (double p : {1e-3, 5e-3, 10e-3}) {
        EXPECT_DOUBLE_EQ(inputChargePower(in, p, 3.3, 0.5),
                         in.coldStartFraction * p);
    }
}
