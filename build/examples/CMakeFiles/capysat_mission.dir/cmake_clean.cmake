file(REMOVE_RECURSE
  "CMakeFiles/capysat_mission.dir/capysat_mission.cpp.o"
  "CMakeFiles/capysat_mission.dir/capysat_mission.cpp.o.d"
  "capysat_mission"
  "capysat_mission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capysat_mission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
