#include "dev/device.hh"

#include <cmath>

#include "power/solver.hh"
#include "sim/logging.hh"

namespace capy::dev
{

namespace
{

/** Margin by which the brown-out must precede completion to abort. */
constexpr double kRaceTol = 1e-9;

} // namespace

Device::Device(sim::Simulator &simulator,
               std::unique_ptr<power::PowerSystem> power_system,
               McuSpec mcu_spec, PowerMode power_mode)
    : sim(simulator), ps(std::move(power_system)),
      mcuSpec(std::move(mcu_spec)), mode(power_mode)
{
    capy_assert(ps != nullptr, "device needs a power system");
}

void
Device::setHooks(Hooks h)
{
    capy_assert(state == State::Idle, "hooks must be set before start()");
    hooks = std::move(h);
}

void
Device::transitionSpan(const char *label)
{
    closeSpan();
    activity.open(sim.now(), label);
}

void
Device::closeSpan()
{
    if (!activity.isOpen())
        return;
    double dur = sim.now() - activity.openStart();
    if (activity.openLabel() == "on")
        devStats.timeOn += dur;
    else if (activity.openLabel() == "charging")
        devStats.timeCharging += dur;
    activity.close(sim.now());
}

void
Device::start()
{
    capy_assert(state == State::Idle, "device already started");
    if (mode == PowerMode::Continuous) {
        // Bench supply: the rail is always available.
        state = State::Booting;
        activity.open(sim.now(), "boot");
        pendingEvent = sim.schedule(mcuSpec.bootTime,
                                    [this] { onBootDone(); });
        return;
    }
    enterCharging();
}

void
Device::enterCharging()
{
    state = State::Charging;
    ps->advanceTo(sim.now());
    ps->setRailEnabled(false);
    transitionSpan("charging");
    scheduleChargeWake();
}

void
Device::scheduleChargeWake()
{
    ps->advanceTo(sim.now());
    sim::Time t_full = ps->timeToFull();
    sim::Time latch_exp = ps->nextLatchExpiry();  // absolute

    sim::Time wake = power::kNever;
    if (std::isfinite(t_full))
        wake = sim.now() + t_full;
    if (std::isfinite(latch_exp)) {
        // A reversion changes the active bank set; re-evaluate just
        // after it takes effect.
        wake = std::min(wake, latch_exp + 1e-9);
    }
    if (!std::isfinite(wake)) {
        if (!warnedStuck) {
            warnedStuck = true;
            capy_warn("device can never charge to full "
                      "(V=%.3g of %.3g, harvest insufficient); "
                      "it stays off forever",
                      ps->storageVoltage(), ps->topVoltage());
        }
        state = State::Dead;
        return;
    }
    pendingEvent = sim.scheduleAt(wake, [this] { onChargeWake(); });
}

void
Device::onChargeWake()
{
    pendingEvent = sim::kInvalidEvent;
    ps->advanceTo(sim.now());
    double v = ps->storageVoltage();
    double v_start = ps->startupVoltage(mcuSpec.activePower);
    if (ps->isFull()) {
        if (v + 1e-6 >= v_start) {
            beginBoot();
            return;
        }
        // Full but unable to start the output booster under load:
        // a mis-provisioned design (e.g. one ultra-high-ESR
        // supercapacitor, §2.2.2).
        if (!warnedStuck) {
            warnedStuck = true;
            capy_warn("buffer full at %.3g V but the output booster "
                      "needs %.3g V under boot load; device is "
                      "unbootable",
                      v, v_start);
        }
        state = State::Dead;
        return;
    }
    scheduleChargeWake();
}

void
Device::beginBoot()
{
    state = State::Booting;
    ps->advanceTo(sim.now());
    ps->setRailEnabled(true);
    ps->setRailLoad(mcuSpec.activePower);
    transitionSpan("boot");

    sim::Time t_bo = ps->timeToBrownout();
    if (t_bo < mcuSpec.bootTime - kRaceTol) {
        pendingIsFail = true;
        pendingEvent =
            sim.schedule(t_bo, [this] { failPower(true); });
        return;
    }
    pendingIsFail = false;
    pendingEvent =
        sim.schedule(mcuSpec.bootTime, [this] { onBootDone(); });
}

void
Device::onBootDone()
{
    pendingEvent = sim::kInvalidEvent;
    state = State::On;
    ++devStats.boots;
    if (mode == PowerMode::Intermittent) {
        ps->advanceTo(sim.now());
        ps->setRailLoad(mcuSpec.activePower);
    }
    transitionSpan("on");
    if (observer.onRailUp)
        observer.onRailUp();
    if (hooks.onBoot)
        hooks.onBoot();
}

void
Device::runWorkload(double rail_power, double duration,
                    std::function<void()> on_complete)
{
    capy_assert(state == State::On,
                "runWorkload while the device is not on");
    capy_assert(rail_power >= 0.0 && duration >= 0.0,
                "bad workload (P=%g, d=%g)", rail_power, duration);

    workloadPower = rail_power;
    workloadStart = sim.now();
    workloadActive = true;

    if (mode == PowerMode::Continuous) {
        pendingIsFail = false;
        pendingEvent = sim.schedule(
            duration, [this, cb = std::move(on_complete)] {
                pendingEvent = sim::kInvalidEvent;
                workloadActive = false;
                ++devStats.workloadsCompleted;
                cb();
            });
        return;
    }

    ps->advanceTo(sim.now());
    ps->setRailLoad(rail_power);
    sim::Time t_bo = ps->timeToBrownout();
    if (t_bo < duration - kRaceTol) {
        ++devStats.workloadsAborted;
        pendingIsFail = true;
        pendingEvent =
            sim.schedule(t_bo, [this] { failPower(false); });
        return;
    }
    pendingIsFail = false;
    pendingEvent = sim.schedule(
        duration, [this, cb = std::move(on_complete)] {
            pendingEvent = sim::kInvalidEvent;
            workloadActive = false;
            ps->advanceTo(sim.now());
            // Back to the kernel's baseline compute draw between
            // workloads.
            ps->setRailLoad(mcuSpec.activePower);
            ++devStats.workloadsCompleted;
            cb();
        });
}

void
Device::failPower(bool during_boot)
{
    pendingEvent = sim::kInvalidEvent;
    pendingIsFail = false;
    workloadActive = false;
    ++devStats.powerFailures;
    if (!during_boot) {
        lastAborted = AbortedWorkload{workloadPower,
                                      sim.now() - workloadStart};
    }
    if (during_boot)
        ++devStats.bootFailures;
    ps->advanceTo(sim.now());
    ps->setRailEnabled(false);
    if (hooks.onPowerFail)
        hooks.onPowerFail();
    // Audit instrumentation runs after the software hook so it sees
    // the exact state the outage leaves behind.
    if (observer.onRailDown)
        observer.onRailDown(RailDownReason::PowerFailure);
    if (mode == PowerMode::Continuous) {
        capy_panic("continuous-power device cannot brown out");
    }
    enterCharging();
}

bool
Device::injectPowerFailure(FailureKind kind)
{
    if (mode == PowerMode::Continuous)
        return false;
    if (state != State::On && state != State::Booting)
        return false;  // a supply fault is invisible to an off device
    bool during_boot = (state == State::Booting);
    bool physics_claimed_abort = pendingIsFail;
    if (pendingEvent != sim::kInvalidEvent) {
        sim.cancel(pendingEvent);
        pendingEvent = sim::kInvalidEvent;
        pendingIsFail = false;
    }
    if (!during_boot) {
        if (workloadActive) {
            // The physics pre-counts an abort when it predicts one at
            // schedule time; only count here if the workload would
            // otherwise have completed.
            if (!physics_claimed_abort)
                ++devStats.workloadsAborted;
        } else {
            // Failure between workloads: the aborted "workload" is
            // the kernel's baseline draw with zero progress lost.
            workloadPower = ps->railLoad();
            workloadStart = sim.now();
        }
    }
    ++devStats.injectedFailures;
    ps->advanceTo(sim.now());
    if (kind == FailureKind::Collapse)
        ps->collapseToBrownout();
    failPower(during_boot);
    return true;
}

void
Device::powerDown()
{
    capy_assert(state == State::On,
                "powerDown while the device is not on");
    if (pendingEvent != sim::kInvalidEvent) {
        sim.cancel(pendingEvent);
        pendingEvent = sim::kInvalidEvent;
        pendingIsFail = false;
    }
    workloadActive = false;
    if (observer.onRailDown)
        observer.onRailDown(RailDownReason::Park);
    if (mode == PowerMode::Continuous) {
        // A continuously-powered board "recharges" instantly: reboot.
        state = State::Booting;
        transitionSpan("boot");
        pendingEvent = sim.schedule(mcuSpec.bootTime,
                                    [this] { onBootDone(); });
        return;
    }
    enterCharging();
}

} // namespace capy::dev
