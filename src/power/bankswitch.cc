#include "power/bankswitch.hh"

#include <cmath>

#include "power/solver.hh"
#include "sim/logging.hh"

namespace capy::power
{

const char *
switchKindName(SwitchKind kind)
{
    switch (kind) {
      case SwitchKind::NormallyOpen:
        return "NO";
      case SwitchKind::NormallyClosed:
        return "NC";
    }
    capy_panic("unknown SwitchKind %d", static_cast<int>(kind));
}

BankSwitch::BankSwitch(SwitchSpec spec, sim::Time t0)
    : switchSpec(spec), isClosed(defaultClosed()), lastUpdate(t0)
{
    capy_assert(spec.latchCapacitance > 0.0, "latch capacitance <= 0");
    capy_assert(spec.latchLeakRes > 0.0, "latch leak resistance <= 0");
    capy_assert(spec.latchFullVoltage > spec.latchThreshold,
                "latch full voltage %g must exceed threshold %g",
                spec.latchFullVoltage, spec.latchThreshold);
}

bool
BankSwitch::defaultClosed() const
{
    return switchSpec.kind == SwitchKind::NormallyClosed;
}

bool
BankSwitch::atDefault() const
{
    return isClosed == defaultClosed();
}

void
BankSwitch::command(bool close, sim::Time t, bool device_powered)
{
    capy_assert(device_powered,
                "switch commanded while the device is unpowered");
    update(t, device_powered);
    isClosed = close;
    // Commanding a non-default state charges the latch; returning to
    // the default discharges it (the latch only needs to hold
    // deviations from the default).
    latchVoltage = atDefault() ? 0.0 : switchSpec.latchFullVoltage;
}

void
BankSwitch::update(sim::Time t, bool device_powered)
{
    capy_assert(t >= lastUpdate, "switch time moved backwards");
    double dt = t - lastUpdate;
    lastUpdate = t;
    if (atDefault()) {
        latchVoltage = 0.0;
        return;
    }
    if (device_powered) {
        // Replenishment circuit keeps the latch topped up.
        latchVoltage = switchSpec.latchFullVoltage;
        return;
    }
    double tau = switchSpec.latchLeakRes * switchSpec.latchCapacitance;
    latchVoltage *= std::exp(-dt / tau);
    // Relative tolerance: expiryTime() computes the crossing instant
    // from the same exponential, so after advancing exactly to it the
    // voltage sits within an ulp of the threshold — possibly above,
    // which without the tolerance would livelock the caller.
    if (latchVoltage <= switchSpec.latchThreshold * (1.0 + 1e-9)) {
        isClosed = defaultClosed();
        latchVoltage = 0.0;
        ++numReversions;
    }
}

sim::Time
BankSwitch::expiryTime(sim::Time now) const
{
    capy_assert(now >= lastUpdate, "expiry query behind switch clock");
    if (atDefault())
        return kNever;
    if (latchVoltage <= switchSpec.latchThreshold)
        return now;  // will revert on the next update
    double tau = switchSpec.latchLeakRes * switchSpec.latchCapacitance;
    double remaining =
        tau * std::log(latchVoltage / switchSpec.latchThreshold);
    return lastUpdate + remaining;
}

double
BankSwitch::retentionTime() const
{
    double tau = switchSpec.latchLeakRes * switchSpec.latchCapacitance;
    return tau *
           std::log(switchSpec.latchFullVoltage /
                    switchSpec.latchThreshold);
}

} // namespace capy::power
