/**
 * @file
 * The composed Capybara power system (Fig. 6a): harvester -> limiter
 * -> input booster (with cold-start bypass) -> reconfigurable array of
 * capacitor banks behind latch switches -> output booster -> load
 * rail.
 *
 * Time advances explicitly through advanceTo(); between calls the
 * system evolves in closed form phase-by-phase (cold-start, bypass,
 * boosted charge, limiter pinning), so the device layer can jump the
 * simulation clock straight to charge-complete and brown-out events
 * obtained from the predictive queries.
 */

#ifndef CAPY_POWER_POWER_SYSTEM_HH
#define CAPY_POWER_POWER_SYSTEM_HH

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "power/bankswitch.hh"
#include "power/booster.hh"
#include "power/capacitor.hh"
#include "power/harvester.hh"
#include "power/solver.hh"
#include "sim/trace.hh"

namespace capy::power
{

/**
 * Reconfigurable energy-storage power system.
 *
 * Usage protocol: construct, add banks, then drive time forward with
 * advanceTo(). All control calls (switch commands, rail load changes)
 * and state queries apply at the current internal time — callers must
 * advanceTo(now) first.
 */
class PowerSystem
{
  public:
    /** Fixed design parameters of the power-distribution circuit. */
    struct Spec
    {
        InputBoosterSpec input{};
        OutputBoosterSpec output{};
        LimiterSpec limiter{};
        /** Design charge target for the storage node, V. */
        double maxStorageVoltage = 3.0;
        /** Always-on board overhead at the storage node, W. */
        double systemQuiescentPower = 2e-6;
        /**
         * Pre-charging tops out this far below the normal target
         * (§6.4 switch-circuit limitation).
         */
        double prechargePenaltyVoltage = 0.3;
    };

    /** Energy-flow accounting since construction. */
    struct EnergyStats
    {
        double harvestedIn = 0.0;   ///< J delivered into storage
        double drainedOut = 0.0;    ///< J drawn for the load + overhead
        double leaked = 0.0;        ///< J lost to storage leakage
        /** J dumped by injected supply collapses (fault harness). */
        double faultDrained = 0.0;
        std::uint64_t chargeCompletions = 0;  ///< times node hit full
    };

    PowerSystem(Spec spec, std::unique_ptr<Harvester> harvester);

    PowerSystem(const PowerSystem &) = delete;
    PowerSystem &operator=(const PowerSystem &) = delete;

    /// @name Construction-time configuration
    /// @{

    /** Add a hard-wired (always-connected) bank. @return bank index. */
    int addBank(const std::string &name, const CapacitorSpec &cap);

    /** Add a bank behind a latch switch. @return bank index. */
    int addSwitchedBank(const std::string &name, const CapacitorSpec &cap,
                        const SwitchSpec &sw);

    int numBanks() const { return static_cast<int>(banks.size()); }
    const CapacitorBank &bank(int idx) const;
    CapacitorBank &bankForTest(int idx);
    /** Switch behind bank @p idx; nullptr for hard-wired banks. */
    const BankSwitch *bankSwitch(int idx) const;

    const Spec &systemSpec() const { return spec; }
    const Harvester &harvesterRef() const { return *harvester; }

    /// @}
    /// @name Time evolution
    /// @{

    /** Advance internal state to absolute time @p t (>= time()). */
    void advanceTo(sim::Time t);

    /** Current internal time. */
    sim::Time time() const { return lastTime; }

    /// @}
    /// @name Control (call advanceTo(now) first)
    /// @{

    /**
     * Drive the GPIO of bank @p idx's switch. Legal only while the
     * rail is on (the MCU must be powered to drive a latch).
     * Closing a charged bank into the active set redistributes charge.
     */
    void commandSwitch(int idx, bool closed);

    /** Set the load power drawn at the regulated rail, W. */
    void setRailLoad(double watts);

    /** Enable/disable the output booster (device boot / power-down). */
    void setRailEnabled(bool on);

    /**
     * Cap the charge target at @p v (pre-charge mode); use
     * clearChargeCeiling() to restore the design target.
     */
    void setChargeCeiling(double v);
    void clearChargeCeiling();

    /**
     * Injected supply collapse: dump the active node's charge to just
     * below the brown-out floor, as if the storage were suddenly
     * shorted by a fault. The rail then browns out through the normal
     * machinery, and recharge starts from the floor rather than from
     * wherever the node happened to sit — matching a physical supply
     * collapse, not a mere control-path abort. The dumped energy is
     * accounted in EnergyStats::faultDrained.
     *
     * @return joules drained (0 when already at/below the floor).
     */
    double collapseToBrownout();

    /// @}
    /// @name Electrical state
    /// @{

    bool railEnabled() const { return railOn; }
    double railLoad() const { return loadPower; }
    bool bankActive(int idx) const;

    /** Voltage of the active storage node (0 if no bank active). */
    double storageVoltage() const;
    double activeCapacitance() const;
    double activeEsr() const;
    /** Stored energy across active banks, J. */
    double activeEnergy() const;

    /** Effective charge target: min(design, active rating, ceiling). */
    double topVoltage() const;

    /** Brown-out voltage at the current rail load and active ESR. */
    double brownoutVoltageNow() const;

    /** Storage voltage needed to start the rail at @p rail_load. */
    double startupVoltage(double rail_load) const;

    /** Whether the storage node is charged to the effective target. */
    bool isFull() const;

    /// @}
    /// @name Predictive queries (relative times from now)
    /// @{

    /**
     * Time until the storage node first reaches @p target_v under
     * current conditions; kNever if unreachable.
     */
    sim::Time timeToVoltage(double target_v) const;

    /** Time until the node reaches the effective charge target. */
    sim::Time timeToFull() const;

    /** Time until the rail browns out at the current load. */
    sim::Time timeToBrownout() const;

    /**
     * Earliest absolute time an unpowered latch reverts; kNever when
     * powered or when all switches rest at their defaults.
     */
    sim::Time nextLatchExpiry() const;

    /// @}
    /// @name Accounting
    /// @{

    const EnergyStats &stats() const { return energyStats; }

    /**
     * Hot-path cache effectiveness counters. The composed active-node
     * snapshot, the effective charge target, and predictive-query
     * results are cached behind dirty flags (invalidated by control
     * calls and time advancement), and the solver memoizes
     * exp(-dt/tau); all caches are pure memoization — query results
     * are bit-identical to a cold rebuild. bench_power exports these
     * alongside callbackHeapFallbacks so a fast path that silently
     * stops hitting shows up in BENCH_SIM.json, not just in
     * wall-clock.
     */
    struct CacheStats
    {
        std::uint64_t nodeHits = 0;    ///< snapshot served from cache
        std::uint64_t nodeMisses = 0;  ///< snapshot rebuilt from banks
        std::uint64_t queryHits = 0;   ///< timeToVoltage memo hits
        std::uint64_t queryMisses = 0; ///< full predictive-query walks
        std::uint64_t expHits = 0;     ///< solver exp memo hits
        std::uint64_t expMisses = 0;
    };

    CacheStats cacheStats() const;

    /**
     * Drop all cached state (test hook): the next query recomputes
     * from the banks. Query results must be unchanged — the property
     * tests compare cached answers against a post-invalidation oracle.
     */
    void invalidateCachesForTest() const;

    /** Record storage voltage into @p ts on every internal step. */
    void attachVoltageTrace(sim::TimeSeries *ts) { voltTrace = ts; }

    /** Board area of all switch modules, mm^2. */
    double totalSwitchArea() const;

    /** Volume of all capacitor banks, mm^3. */
    double totalCapacitorVolume() const;

    /// @}

  private:
    struct BankState
    {
        CapacitorBank bank;
        std::optional<BankSwitch> sw;
    };

    /** Scalar snapshot of the active composite node. */
    struct Node
    {
        double energy = 0.0;
        double capacitance = 0.0;
        double leakRes = 0.0;  ///< parallel leakage, ohm (may be inf)
        double esr = 0.0;
        bool valid = false;  ///< false when no bank is active

        double voltage() const;
        double energyAt(double v) const;
    };

    /** One constant-power phase with its validity bounds in voltage. */
    struct PhaseInfo
    {
        double power = 0.0;   ///< net W into the node
        bool pinned = false;  ///< held at the top by the limiter
        double boundAbove = 0.0;  ///< next V where conditions change
        double boundBelow = 0.0;
    };

    Node snapshotActive() const;
    void writebackActive(const Node &node);
    PhaseInfo phaseAt(const Node &node, double v, sim::Time t) const;

    /**
     * Cached snapshotActive(): rebuilt only when a control call or
     * time advance dirtied the active node since the last query.
     */
    const Node &activeNode() const;

    /** Active-node composition changed (reconfig, writeback, test
     *  mutation): drop the node snapshot and query memo. */
    void invalidateNode() const;

    /** Conditions changed without moving charge (load, ceiling, rail
     *  state, clock): predictive-query results are stale. */
    void invalidateQueries() const;

    /** Uncached timeToVoltage walk (the memo's fill path). */
    sim::Time computeTimeToVoltage(double target_v) const;

    /**
     * Evolve @p node over [t0, t0+dt] with the harvester held at its
     * t0 conditions (caller bounds dt by harvester changes). Updates
     * @p acc energy accounting when non-null.
     */
    void stepNode(Node &node, sim::Time t0, double dt,
                  EnergyStats *acc) const;

    /** Decay inactive banks over @p dt via their own leakage. */
    void decayInactive(double dt);

    /** Update all latches to @p t; returns true if any reverted. */
    bool updateLatches(sim::Time t);

    void rebuildAfterReconfig();
    void recordTrace();

    Spec spec;
    std::unique_ptr<Harvester> harvester;
    std::vector<BankState> banks;
    sim::Time lastTime = 0.0;
    bool railOn = false;
    double loadPower = 0.0;
    double chargeCeiling;  ///< +inf when cleared
    bool wasFull = false;  ///< for charge-completion counting
    EnergyStats energyStats;
    sim::TimeSeries *voltTrace = nullptr;

    // --- Hot-path caches (pure memo state; a PowerSystem is owned by
    // one simulation, so the mutable members need no locking) ---

    /** One memoized predictive-query result. */
    struct QueryMemoEntry
    {
        double target = 0.0;
        sim::Time result = 0.0;
    };

    static constexpr std::size_t kQueryMemoSlots = 4;

    mutable Node nodeCache;
    mutable bool nodeDirty = true;
    mutable double topCache = 0.0;
    mutable bool topDirty = true;
    mutable std::array<QueryMemoEntry, kQueryMemoSlots> queryMemo{};
    mutable std::size_t queryMemoCount = 0;
    mutable std::size_t queryMemoNext = 0;
    mutable ExpCache expMemo;
    mutable std::uint64_t nodeHitCount = 0;
    mutable std::uint64_t nodeMissCount = 0;
    mutable std::uint64_t queryHitCount = 0;
    mutable std::uint64_t queryMissCount = 0;
};

} // namespace capy::power

#endif // CAPY_POWER_POWER_SYSTEM_HH
