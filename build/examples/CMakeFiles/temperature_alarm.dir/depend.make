# Empty dependencies file for temperature_alarm.
# This may be replaced when dependencies are built.
