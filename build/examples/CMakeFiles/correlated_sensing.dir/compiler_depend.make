# Empty compiler generated dependencies file for correlated_sensing.
# This may be replaced when dependencies are built.
