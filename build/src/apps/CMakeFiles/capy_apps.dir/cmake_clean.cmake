file(REMOVE_RECURSE
  "CMakeFiles/capy_apps.dir/boards.cc.o"
  "CMakeFiles/capy_apps.dir/boards.cc.o.d"
  "CMakeFiles/capy_apps.dir/capysat.cc.o"
  "CMakeFiles/capy_apps.dir/capysat.cc.o.d"
  "CMakeFiles/capy_apps.dir/csr.cc.o"
  "CMakeFiles/capy_apps.dir/csr.cc.o.d"
  "CMakeFiles/capy_apps.dir/experiment.cc.o"
  "CMakeFiles/capy_apps.dir/experiment.cc.o.d"
  "CMakeFiles/capy_apps.dir/grc.cc.o"
  "CMakeFiles/capy_apps.dir/grc.cc.o.d"
  "CMakeFiles/capy_apps.dir/ta.cc.o"
  "CMakeFiles/capy_apps.dir/ta.cc.o.d"
  "libcapy_apps.a"
  "libcapy_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capy_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
