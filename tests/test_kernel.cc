/**
 * @file
 * Tests for the Chain-style intermittent kernel: task chaining,
 * atomic restart semantics under injected power failures, channel
 * commit behaviour, gates, sleep pacing, and halting.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "dev/device.hh"
#include "power/parts.hh"
#include "power/power_system.hh"
#include "rt/channel.hh"
#include "rt/kernel.hh"
#include "rt/task.hh"
#include "sim/simulator.hh"

using namespace capy;
using namespace capy::dev;
using namespace capy::power;
using namespace capy::rt;

namespace
{

struct Rig
{
    sim::Simulator sim;
    std::unique_ptr<Device> device;
    App app;

    explicit Rig(double harvest_mw = 10.0,
                 CapacitorSpec cap = parts::x5r100uF().parallel(4),
                 Device::PowerMode mode =
                     Device::PowerMode::Intermittent)
    {
        PowerSystem::Spec spec;
        auto ps = std::make_unique<PowerSystem>(
            spec,
            std::make_unique<RegulatedSupply>(harvest_mw * 1e-3, 3.3));
        ps->addBank("base", cap);
        device = std::make_unique<Device>(sim, std::move(ps),
                                          msp430fr5969(), mode);
    }
};

} // namespace

TEST(Kernel, RunsChainOfTasks)
{
    Rig rig;
    std::vector<std::string> order;
    Task *t3 = rig.app.addTask("c", 1e-3, 0.0, [&](Kernel &) {
        order.push_back("c");
        return nullptr;
    });
    Task *t2 = rig.app.addTask("b", 1e-3, 0.0,
                               [&](Kernel &) -> const Task * {
                                   order.push_back("b");
                                   return t3;
                               });
    Task *t1 = rig.app.addTask("a", 1e-3, 0.0,
                               [&](Kernel &) -> const Task * {
                                   order.push_back("a");
                                   return t2;
                               });
    rig.app.setEntry(t1);
    Kernel k(*rig.device, rig.app);
    k.start();
    rig.sim.runUntil(20.0);
    EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_TRUE(k.halted());
    EXPECT_EQ(k.stats().taskCompletions, 3u);
    EXPECT_EQ(k.stats().transitions, 2u);
}

TEST(Kernel, LoopingAppKeepsRunning)
{
    Rig rig;
    int iterations = 0;
    Task *loop = rig.app.addTask("loop", 1e-3, 0.0,
                                 [&](Kernel &) -> const Task * {
                                     ++iterations;
                                     return nullptr;  // replaced below
                                 });
    // Rebind the body now that we can name the task.
    *loop = Task{"loop", 1e-3, 0.0, 0.0,
                 [&, loop](Kernel &) -> const Task * {
                     ++iterations;
                     return loop;
                 },
                 0.0};
    Kernel k(*rig.device, rig.app);
    k.start();
    rig.sim.runUntil(30.0);
    EXPECT_GT(iterations, 100);
    EXPECT_FALSE(k.halted());
}

TEST(Kernel, OversizedTaskRestartsWithoutEffects)
{
    // A task too big for the bank must never apply its body.
    Rig rig;
    int big_effects = 0;
    Task *big = rig.app.addTask("big", 10.0, 20e-3,
                                [&](Kernel &) -> const Task * {
                                    ++big_effects;
                                    return nullptr;
                                });
    rig.app.setEntry(big);
    Kernel k(*rig.device, rig.app);
    k.start();
    rig.sim.runUntil(60.0);
    EXPECT_EQ(big_effects, 0);
    EXPECT_GT(k.stats().taskRestarts, 0u);
    EXPECT_EQ(k.currentTask(), big) << "NV pointer must stay on the "
                                       "interrupted task";
}

TEST(Kernel, MultiTaskProgressAcrossPowerFailures)
{
    // Several tasks per charge cycle; the chain must make progress
    // across many power failures with each task executing atomically
    // and in order.
    Rig rig;
    std::vector<int> log;
    Task *t2 = nullptr;
    Task *t1 = rig.app.addTask("t1", 5e-3, 0.0,
                               [&](Kernel &) -> const Task * {
                                   log.push_back(1);
                                   return t2;
                               });
    t2 = rig.app.addTask("t2", 5e-3, 0.0,
                         [&](Kernel &) -> const Task * {
                             log.push_back(2);
                             return t1;
                         });
    Kernel k(*rig.device, rig.app);
    k.start();
    rig.sim.runUntil(120.0);
    ASSERT_GT(log.size(), 20u);
    for (size_t i = 1; i < log.size(); ++i)
        EXPECT_NE(log[i], log[i - 1]) << "strict alternation expected";
    EXPECT_GT(rig.device->stats().powerFailures, 0u)
        << "test should actually exercise intermittency";
}

TEST(Kernel, ChannelCommitsOnlyOnCompletion)
{
    Rig rig;
    NvMemory mem;
    Channel<int> counter(&mem, 0);
    // Task increments the channel; an oversized successor never
    // commits, so the counter reflects only completed tasks.
    Task *inc = nullptr;
    Task *big = rig.app.addTask("big", 100.0, 50e-3,
                                [&](Kernel &) -> const Task * {
                                    counter.set(-999);
                                    return nullptr;
                                });
    inc = rig.app.addTask("inc", 1e-3, 0.0,
                          [&](Kernel &) -> const Task * {
                              counter.set(counter.get() + 1);
                              return big;
                          });
    rig.app.setEntry(inc);
    Kernel k(*rig.device, rig.app);
    k.start();
    rig.sim.runUntil(60.0);
    EXPECT_EQ(counter.get(), 1) << "inc committed exactly once";
}

TEST(Kernel, GateInterceptsEveryAttempt)
{
    Rig rig;
    int gate_calls = 0;
    int runs = 0;
    Task *t = rig.app.addTask("t", 1e-3, 0.0,
                              [&](Kernel &) -> const Task * {
                                  ++runs;
                                  return runs < 3 ? t : nullptr;
                              });
    (void)t;
    Kernel k(*rig.device, rig.app);
    k.setPreTaskGate([&](const Task &, std::function<void()> proceed) {
        ++gate_calls;
        proceed();
    });
    k.start();
    rig.sim.runUntil(20.0);
    EXPECT_EQ(runs, 3);
    EXPECT_EQ(gate_calls, 3);
}

TEST(Kernel, GateMayParkDevice)
{
    Rig rig;
    int gate_calls = 0;
    bool ran = false;
    rig.app.addTask("t", 1e-3, 0.0, [&](Kernel &) -> const Task * {
        ran = true;
        return nullptr;
    });
    Kernel k(*rig.device, rig.app);
    k.setPreTaskGate([&](const Task &, std::function<void()> proceed) {
        ++gate_calls;
        if (gate_calls == 1) {
            rig.device->powerDown();  // park; gate re-runs after boot
            return;
        }
        proceed();
    });
    k.start();
    rig.sim.runUntil(30.0);
    EXPECT_TRUE(ran);
    EXPECT_EQ(gate_calls, 2);
}

TEST(Kernel, SleepPacingDelaysNextTask)
{
    Rig rig(10.0, parts::x5r100uF().parallel(4),
            Device::PowerMode::Continuous);
    std::vector<double> times;
    Task *t = nullptr;
    t = rig.app.addTask(
        "paced", 1e-3, 0.0,
        [&](Kernel &k) -> const Task * {
            times.push_back(k.now());
            return times.size() < 3 ? t : nullptr;
        },
        0.5 /* sleepAfter */);
    Kernel k(*rig.device, rig.app);
    k.start();
    rig.sim.runUntil(10.0);
    ASSERT_EQ(times.size(), 3u);
    EXPECT_NEAR(times[1] - times[0], 0.501, 1e-6);
    EXPECT_NEAR(times[2] - times[1], 0.501, 1e-6);
}

TEST(Kernel, ContinuousPowerRunsWithoutFailures)
{
    Rig rig(0.0, parts::x5r100uF().parallel(4),
            Device::PowerMode::Continuous);
    int n = 0;
    Task *t = nullptr;
    t = rig.app.addTask("t", 1e-3, 5e-3,
                        [&](Kernel &) -> const Task * {
                            return ++n < 1000 ? t : nullptr;
                        });
    Kernel k(*rig.device, rig.app);
    k.start();
    rig.sim.runUntil(60.0);
    EXPECT_EQ(n, 1000);
    EXPECT_EQ(k.stats().taskRestarts, 0u);
}

TEST(Kernel, AppFindByName)
{
    App app;
    app.addTask("alpha", 1e-3, 0.0,
                [](Kernel &) -> const Task * { return nullptr; });
    EXPECT_NE(app.find("alpha"), nullptr);
    EXPECT_EQ(app.find("beta"), nullptr);
    EXPECT_EQ(app.taskCount(), 1u);
}

TEST(RingChannel, PushWrapAndRead)
{
    RingChannel<int, 4> ring;
    for (int i = 0; i < 6; ++i)
        ring.push(i);
    EXPECT_TRUE(ring.full());
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.at(0), 2);
    EXPECT_EQ(ring.at(3), 5);
    ring.clear();
    EXPECT_EQ(ring.size(), 0u);
}

TEST(RingChannel, PartialFill)
{
    RingChannel<double, 8> ring;
    ring.push(1.5);
    ring.push(2.5);
    EXPECT_EQ(ring.size(), 2u);
    EXPECT_FALSE(ring.full());
    EXPECT_DOUBLE_EQ(ring.at(0), 1.5);
    EXPECT_DOUBLE_EQ(ring.at(1), 2.5);
}
