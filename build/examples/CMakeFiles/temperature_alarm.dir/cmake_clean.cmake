file(REMOVE_RECURSE
  "CMakeFiles/temperature_alarm.dir/temperature_alarm.cpp.o"
  "CMakeFiles/temperature_alarm.dir/temperature_alarm.cpp.o.d"
  "temperature_alarm"
  "temperature_alarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temperature_alarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
