#include "env/pendulum.hh"

#include "sim/logging.hh"

namespace capy::env
{

Pendulum::Pendulum(const EventSchedule &schedule, Spec spec)
    : events(schedule), pendulumSpec(spec)
{
    capy_assert(spec.swingDuration > 0.0, "swing duration <= 0");
    capy_assert(spec.decodeDeadline < spec.swingDuration,
                "decode deadline beyond the swing");
}

bool
Pendulum::objectPresent(sim::Time t) const
{
    return eventAt(t) >= 0;
}

double
Pendulum::fieldStrength(sim::Time t) const
{
    // Normalized field: strong while the magnet is overhead.
    return eventAt(t) >= 0 ? 1.0 : 0.05;
}

int
Pendulum::eventAt(sim::Time t) const
{
    return events.eventCovering(t, 0.0, pendulumSpec.swingDuration);
}

Pendulum::GestureResult
Pendulum::senseGesture(sim::Time start, double duration, sim::Rng &rng,
                       int *event_id) const
{
    int id = events.eventCovering(start, duration,
                                  pendulumSpec.swingDuration);
    if (event_id)
        *event_id = id;
    if (id < 0)
        return GestureResult::NoGesture;

    sim::Time swing_start = events.at(static_cast<std::size_t>(id)).time;
    double offset = start - swing_start;
    if (offset > pendulumSpec.decodeDeadline) {
        // Proximity fired too late in the swing: the sensor sees
        // motion but cannot tell the direction (§6.2).
        return GestureResult::Misclassified;
    }
    // Well-timed window; inherent sensor imperfection still applies.
    if (rng.chance(pendulumSpec.pDecodeFail))
        return GestureResult::NoGesture;
    if (rng.chance(pendulumSpec.pMisclassify))
        return GestureResult::Misclassified;
    return GestureResult::Decoded;
}

} // namespace capy::env
