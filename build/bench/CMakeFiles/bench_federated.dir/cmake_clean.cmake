file(REMOVE_RECURSE
  "CMakeFiles/bench_federated.dir/bench_federated.cc.o"
  "CMakeFiles/bench_federated.dir/bench_federated.cc.o.d"
  "bench_federated"
  "bench_federated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_federated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
