file(REMOVE_RECURSE
  "CMakeFiles/gesture_remote.dir/gesture_remote.cpp.o"
  "CMakeFiles/gesture_remote.dir/gesture_remote.cpp.o.d"
  "gesture_remote"
  "gesture_remote.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gesture_remote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
