# Empty dependencies file for test_capacitor.
# This may be replaced when dependencies are built.
