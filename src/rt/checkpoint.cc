#include "rt/checkpoint.hh"

#include <algorithm>
#include <cmath>

#include "power/solver.hh"
#include "sim/logging.hh"

namespace capy::rt
{

CheckpointKernel::CheckpointKernel(dev::Device &device, Spec spec_in,
                                   double total_work,
                                   double extra_power,
                                   std::function<void()> on_complete,
                                   dev::NvMemory *nv)
    : dev(device), spec(spec_in), totalWork(total_work),
      extraPower(extra_power), onComplete(std::move(on_complete)),
      nvProgress(nv, 0.0)
{
    capy_assert(total_work > 0.0, "no work to run");
    capy_assert(spec.voltageHeadroom > 0.0, "headroom must be > 0");
}

void
CheckpointKernel::start()
{
    dev.setHooks(dev::Device::Hooks{
        .onBoot = [this] { onBoot(); },
        .onPowerFail = [this] { onPowerFail(); },
    });
    dev.start();
}

void
CheckpointKernel::onBoot()
{
    if (done)
        return;
    restoreThenCompute();
}

void
CheckpointKernel::onPowerFail()
{
    // Any power failure destroys volatile state: every slice computed
    // since the last committed checkpoint is lost — including when
    // the failure strikes during the checkpoint write itself.
    inCompute = false;
    ckptStats.lostWork += sliceInFlight;
    sliceInFlight = 0.0;
}

void
CheckpointKernel::restoreThenCompute()
{
    if (nvProgress.get() > 0.0) {
        ++ckptStats.restores;
        ckptStats.overheadTime += spec.restoreTime;
        dev.runWorkload(dev.mcu().activePower, spec.restoreTime,
                        [this] { computeSlice(); });
        return;
    }
    computeSlice();
}

void
CheckpointKernel::computeSlice()
{
    if (done)
        return;
    double remaining = totalWork - nvProgress.get();
    if (remaining <= 0.0) {
        done = true;
        if (onComplete)
            onComplete();
        return;
    }

    // Run until either the work completes or the low-voltage
    // interrupt threshold is reached.
    auto &ps = dev.powerSystem();
    ps.advanceTo(dev.simulator().now());
    double compute_power = dev.mcu().activePower + extraPower;
    // Predict the LVI instant under the compute load.
    ps.setRailLoad(compute_power);
    double v_lvi = ps.brownoutVoltageNow() + spec.voltageHeadroom;
    sim::Time t_lvi = ps.storageVoltage() > v_lvi
                          ? ps.timeToVoltage(v_lvi)
                          : 0.0;

    if (t_lvi <= 1e-6) {
        // Already at the threshold: checkpoint (nothing new to save)
        // and hibernate until recharged.
        if (sliceInFlight > 0.0) {
            writeCheckpoint(sliceInFlight);
            return;
        }
        dev.powerDown();
        return;
    }

    double slice = std::min(remaining, t_lvi);
    inCompute = true;
    dev.runWorkload(compute_power, slice, [this, slice, remaining] {
        inCompute = false;
        sliceInFlight += slice;
        if (slice >= remaining) {
            // Work finished: commit immediately (final checkpoint).
            writeCheckpoint(sliceInFlight);
            return;
        }
        // LVI fired: save state while energy remains.
        writeCheckpoint(sliceInFlight);
    });
}

void
CheckpointKernel::writeCheckpoint(double slice_work)
{
    ckptStats.overheadTime += spec.checkpointTime;
    dev.runWorkload(
        dev.mcu().activePower + spec.checkpointPower,
        spec.checkpointTime, [this, slice_work] {
            ++ckptStats.checkpoints;
            nvProgress.set(nvProgress.get() + slice_work);
            sliceInFlight = 0.0;
            if (nvProgress.get() >= totalWork - 1e-12) {
                done = true;
                if (onComplete)
                    onComplete();
                return;
            }
            // Hibernate until the buffer refills.
            dev.powerDown();
        });
}

} // namespace capy::rt
