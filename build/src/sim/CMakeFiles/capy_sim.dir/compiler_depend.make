# Empty compiler generated dependencies file for capy_sim.
# This may be replaced when dependencies are built.
