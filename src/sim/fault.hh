/**
 * @file
 * Deterministic adversarial power-failure injection.
 *
 * The physics only browns a device out where the energy model says it
 * must; the runtime's crash-consistency claims ("survives power
 * failures at any instant", §4) need failures at *chosen* instants,
 * the way Alpaca-style intermittent systems are validated. A
 * FaultPlan names those instants — explicit times, every Nth executed
 * event, or a seeded random schedule — and a FaultInjector drives an
 * injection action (typically Device::injectPowerFailure) through the
 * Simulator so the existing onPowerFail machinery fires exactly as in
 * a physical brownout.
 *
 * Plans are pure data and injection is a pure function of the plan
 * and the simulation, so faulted sweeps stay byte-stable at any
 * CAPY_JOBS like every other sweep.
 */

#ifndef CAPY_SIM_FAULT_HH
#define CAPY_SIM_FAULT_HH

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "sim/simulator.hh"

namespace capy::sim
{

/**
 * A deterministic schedule of power-failure injection attempts.
 *
 * Grammar (combinable; all clauses attempt independently):
 *  - `times`: absolute simulation instants;
 *  - `everyNthEvent`/`eventOffset`: attempt after executed event
 *    number eventOffset + k*everyNthEvent (1-based, k >= 1);
 *  - `maxAttempts`: stop attempting after this many attempts (an
 *    attempt against an unpowered device is a no-op but still counts,
 *    so exhaustive sweeps cover every point exactly once).
 */
struct FaultPlan
{
    /** Absolute injection instants, seconds. */
    std::vector<Time> times;
    /** If > 0, attempt after every Nth executed event. */
    std::uint64_t everyNthEvent = 0;
    /** Executed-event count before the first every-Nth attempt. */
    std::uint64_t eventOffset = 0;
    /** Cap on total attempts (time- and event-triggered combined). */
    std::uint64_t maxAttempts =
        std::numeric_limits<std::uint64_t>::max();

    /** No injection clauses at all. */
    bool empty() const { return times.empty() && everyNthEvent == 0; }

    /** Failures at explicit absolute times. */
    static FaultPlan atTimes(std::vector<Time> when);

    /** One attempt immediately after the @p k th executed event
     *  (1-based). The unit of the exhaustive crash sweeps. */
    static FaultPlan atEvent(std::uint64_t k);

    /** An attempt after every @p n th executed event, starting after
     *  @p offset events. */
    static FaultPlan everyNth(std::uint64_t n, std::uint64_t offset = 0);

    /**
     * A seeded Poisson schedule: failures with mean inter-arrival
     * @p mean_interval over [start_after, horizon). Pure function of
     * the arguments (private generator), so sweep jobs can build
     * their own plan on the worker thread.
     */
    static FaultPlan poisson(std::uint64_t seed, double mean_interval,
                             Time horizon, Time start_after = 0.0);
};

/**
 * Executes a FaultPlan against one Simulator.
 *
 * The action is invoked at each attempt and reports whether a failure
 * actually fired (false when the target is already unpowered — a
 * supply glitch is invisible to a device that is off). The injector
 * owns the simulator's post-event hook for its lifetime; one injector
 * per simulator.
 */
class FaultInjector
{
  public:
    /** @return true if the attempt actually failed a powered device. */
    using Action = std::function<bool()>;

    FaultInjector(Simulator &simulator, FaultPlan plan, Action action);
    ~FaultInjector();

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** Injection attempts so far (time- and event-triggered). */
    std::uint64_t attempts() const { return numAttempts; }

    /** Attempts that actually failed a powered device. */
    std::uint64_t fired() const { return numFired; }

    /** Instants at which a failure actually fired. */
    const std::vector<Time> &firedTimes() const { return whenFired; }

  private:
    void attempt();
    void onEventExecuted();

    Simulator &sim;
    FaultPlan plan;
    Action action;
    std::uint64_t numAttempts = 0;
    std::uint64_t numFired = 0;
    std::vector<Time> whenFired;
};

} // namespace capy::sim

#endif // CAPY_SIM_FAULT_HH
