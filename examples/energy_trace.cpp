/**
 * @file
 * Trace-export demo: run the Fig. 2 scenario (15-sample series +
 * radio packet on a fixed bank) and export the storage voltage, the
 * operating/charging spans, and the per-task energy profile as CSV
 * files plus a gnuplot script.
 *
 * Usage: energy_trace [output_dir]
 */

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "apps/boards.hh"
#include "dev/device.hh"
#include "dev/peripheral.hh"
#include "dev/radio.hh"
#include "power/parts.hh"
#include "power/units.hh"
#include "rt/channel.hh"
#include "rt/kernel.hh"
#include "sim/export.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

using namespace capy;
using namespace capy::literals;

int
main(int argc, char **argv)
{
    setQuiet(true);
    std::string dir = argc > 1 ? argv[1] : ".";

    sim::Simulator simulator;
    power::PowerSystem::Spec spec;
    auto ps = std::make_unique<power::PowerSystem>(
        spec, std::make_unique<power::RegulatedSupply>(
                  apps::grcHarvestPower(), 3.3));
    ps->addBank("fixed",
                power::parallelCompose(
                    {power::parts::x5r100uF().parallel(4),
                     power::parts::tant330uF(),
                     power::parts::edlc7_5mF().parallel(9)}));
    sim::TimeSeries volts("storage_V");
    ps->attachVoltageTrace(&volts);
    dev::Device device(simulator, std::move(ps), dev::msp430fr5969(),
                       dev::Device::PowerMode::Intermittent);

    const auto tmp36 = dev::periph::tmp36();
    const auto ble = dev::bleRadio();
    dev::NvMemory fram;
    rt::Channel<int> count(&fram, 0);

    rt::App app;
    rt::Task *sense = nullptr;
    rt::Task *tx = nullptr;
    tx = app.addTask("radio_tx", txDuration(ble, 25), 0.0,
                     [&](rt::Kernel &) -> const rt::Task * {
                         count.set(0);
                         return sense;
                     });
    tx->absolutePower = ble.txPower;
    sense = app.addTask("sense", 10_ms, tmp36.activePower,
                        [&](rt::Kernel &) -> const rt::Task * {
                            count.set(count.get() + 1);
                            return count.get() >= 15 ? tx : sense;
                        });
    app.setEntry(sense);

    rt::Kernel kernel(device, app, &fram);
    kernel.start();
    simulator.runUntil(300.0);

    // --- exports ---
    std::string volts_csv = dir + "/fig2_voltage.csv";
    std::string spans_csv = dir + "/fig2_spans.csv";
    std::string plot = dir + "/fig2_voltage.gp";
    bool ok = sim::writeCsv(volts, volts_csv);
    ok &= sim::writeCsv(device.spans(), spans_csv);
    {
        std::ofstream out(plot);
        out << sim::gnuplotScript(volts_csv,
                                  "Fig. 2: fixed-capacity execution",
                                  "storage voltage (V)");
        ok &= bool(out);
    }
    if (!ok) {
        std::fprintf(stderr, "failed to write CSVs under %s\n",
                     dir.c_str());
        return 1;
    }

    std::printf("wrote %s (%zu points), %s (%zu spans), %s\n",
                volts_csv.c_str(), volts.size(), spans_csv.c_str(),
                device.spans().spans().size(), plot.c_str());
    std::printf("\nper-task energy profile (300 s):\n");
    for (const auto &[name, use] : kernel.energyByTask()) {
        std::printf("  %-10s %6llu runs, %8.3f mJ spent, %6.3f mJ "
                    "wasted on %llu failed attempts\n",
                    name.c_str(),
                    (unsigned long long)use.completions,
                    use.railEnergy * 1e3, use.wastedEnergy * 1e3,
                    (unsigned long long)use.failedAttempts);
    }
    std::printf("\nplot with: gnuplot -p %s\n", plot.c_str());
    return 0;
}
