# Empty compiler generated dependencies file for test_allocate.
# This may be replaced when dependencies are built.
