/**
 * @file
 * The simulation clock and main loop. A Simulator owns an EventQueue
 * and advances simulated time by executing events in order.
 */

#ifndef CAPY_SIM_SIMULATOR_HH
#define CAPY_SIM_SIMULATOR_HH

#include "sim/event.hh"

namespace capy::sim
{

/**
 * Event-driven simulation engine.
 *
 * Components schedule callbacks relative to the current time with
 * schedule(), or at absolute times with scheduleAt(). run() executes
 * events until the queue drains, a time limit is hit, or stop() is
 * called from inside a callback.
 */
class Simulator
{
  public:
    /** Current simulated time in seconds. */
    Time now() const { return currentTime; }

    /**
     * Schedule @p fn to run @p delay seconds from now.
     * @pre delay >= 0.
     */
    EventId schedule(Time delay, Callback fn);

    /**
     * Schedule @p fn at absolute time @p when.
     * @pre when >= now().
     */
    EventId scheduleAt(Time when, Callback fn);

    /** Cancel a pending event. @sa EventQueue::cancel */
    bool cancel(EventId id) { return queue.cancel(id); }

    /** @retval true if @p id refers to a still-pending event. */
    bool isPending(EventId id) const { return queue.isPending(id); }

    /** Run until the event queue drains or stop() is called. */
    void run();

    /**
     * Run events with timestamps <= @p until, then set the clock to
     * @p until. Events exactly at @p until do execute.
     */
    void runUntil(Time until);

    /** Request that run()/runUntil() return after the current event. */
    void stop() { stopRequested = true; }

    /** Total events executed over the simulator's lifetime. */
    std::uint64_t eventsExecuted() const { return queue.executed(); }

    /** Number of pending (not cancelled) events. */
    std::size_t pendingEvents() const { return queue.pending(); }

    /**
     * Install a hook run after every executed event (instrumentation:
     * event-count-triggered fault injection). One slot; pass an empty
     * Callback to clear. The hook may schedule events and stop(), and is
     * not invoked for events it causes to run within the same call.
     */
    void setPostEventHook(Callback hook) { postEvent = std::move(hook); }

  private:
    void afterEvent();

    EventQueue queue;
    Time currentTime = 0.0;
    bool stopRequested = false;
    Callback postEvent;
};

} // namespace capy::sim

#endif // CAPY_SIM_SIMULATOR_HH
