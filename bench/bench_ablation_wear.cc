/**
 * @file
 * Ablation (§5.2, wear levelling): "dense but fragile capacitors can
 * be dedicated to a bank and used only when another bank with less
 * dense but more robust capacitors is insufficient."
 *
 * On the TA board, Capybara cycles the small ceramic/tantalum bank
 * (effectively unlimited endurance) for every sampling burst and
 * cycles the fragile EDLC bank only per alarm event; a fixed design
 * cycles the EDLC on every recharge. We count full charge cycles and
 * project lifetime against the EDLC's rated endurance.
 */

#include <cstdio>

#include "apps/ta.hh"
#include "bench_util.hh"
#include "power/parts.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace capy;
using namespace capy::apps;
using namespace capy::bench;
using namespace capy::core;

int
main()
{
    setQuiet(true);
    banner("Section 5.2 ablation",
           "wear levelling across capacitor technologies");

    constexpr std::uint64_t kSeed = 555;
    auto sched = taSchedule(kSeed);
    double days = kTaHorizon / 86400.0;

    auto runs = runMetricsBatch(
        {[&sched] { return runTempAlarm(Policy::Fixed, sched, kSeed); },
         [&sched] {
             return runTempAlarm(Policy::CapyP, sched, kSeed);
         }});
    const RunMetrics &fixed = runs[0];
    const RunMetrics &capy = runs[1];

    // Fixed: the EDLC sits in the single "fixed" bank; Capybara: it
    // sits in the switched "big" bank.
    std::uint64_t fixed_edlc = bankCyclesFor(fixed, "fixed");
    std::uint64_t capy_edlc = bankCyclesFor(capy, "big");
    std::uint64_t capy_small = bankCyclesFor(capy, "small");

    double endurance = power::parts::edlc7_5mF().cycleEndurance;
    auto lifetime_years = [&](std::uint64_t cycles) {
        if (cycles == 0)
            return 1e9;
        double per_day = double(cycles) / days;
        return endurance / per_day / 365.0;
    };

    sim::Table t({"system", "bank", "full cycles (2 h)",
                  "cycles/day", "EDLC lifetime (years)"});
    t.addRow({"Fixed", "fixed (incl. EDLC)", sim::cell(fixed_edlc),
              sim::cell(double(fixed_edlc) / days, 4),
              sim::cell(lifetime_years(fixed_edlc), 3)});
    t.addRow({"Capy-P", "small (ceramic+tant)", sim::cell(capy_small),
              sim::cell(double(capy_small) / days, 4), "n/a (robust)"});
    t.addRow({"Capy-P", "big (incl. EDLC)", sim::cell(capy_edlc),
              sim::cell(double(capy_edlc) / days, 4),
              sim::cell(lifetime_years(capy_edlc), 3)});
    t.print();

    std::printf("\nEDLC rated endurance: %.0g full cycles\n",
                endurance);

    shapeCheck(capy_small > 10 * capy_edlc,
               "the robust small bank absorbs the frequent cycling");
    shapeCheck(double(fixed_edlc) > 1.5 * double(capy_edlc),
               "the fixed design cycles its fragile EDLC on every "
               "recharge; Capybara only per high-energy event");
    shapeCheck(lifetime_years(capy_edlc) >
                   1.5 * lifetime_years(fixed_edlc),
               "bank dedication extends the fragile capacitor's "
               "projected lifetime (§5.2 wear levelling)");
    return finish();
}
