file(REMOVE_RECURSE
  "libcapy_sim.a"
)
