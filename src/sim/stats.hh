/**
 * @file
 * Statistics collection: streaming summaries, histograms, and an
 * aligned-table formatter used by the benchmark harnesses to print
 * paper-style rows.
 */

#ifndef CAPY_SIM_STATS_HH
#define CAPY_SIM_STATS_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace capy::sim
{

/**
 * Streaming mean/variance/min/max accumulator (Welford's algorithm).
 */
class SummaryStats
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const SummaryStats &other);

    /** Clear all accumulated state. */
    void reset() { *this = SummaryStats(); }

    std::uint64_t count() const { return n; }
    double sum() const { return total; }
    double mean() const { return n ? runningMean : 0.0; }
    /** Population variance. */
    double variance() const { return n ? m2 / double(n) : 0.0; }
    double stddev() const;
    double min() const { return n ? minVal : 0.0; }
    double max() const { return n ? maxVal : 0.0; }

  private:
    std::uint64_t n = 0;
    double runningMean = 0.0;
    double m2 = 0.0;
    double total = 0.0;
    double minVal = std::numeric_limits<double>::infinity();
    double maxVal = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-bin histogram over [lo, hi) with underflow/overflow buckets.
 * Also retains samples so exact quantiles can be computed; the
 * evaluation datasets are small (thousands of samples). For
 * long-running sweeps, capSamples() bounds retention by switching to
 * uniform reservoir sampling, at the cost of quantile()/mean()
 * becoming (deterministic) estimates over the reservoir.
 */
class Histogram
{
  public:
    /**
     * @param lo Lower bound of the binned range.
     * @param hi Upper bound (exclusive).
     * @param bins Number of equal-width bins (>= 1).
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Record a sample. */
    void add(double x);

    /**
     * Bound sample retention to @p cap samples (>= 1). Up to the cap
     * every sample is kept and quantiles are exact; past it the
     * retained set is a uniform reservoir (algorithm R with a private,
     * fixed-seed generator, so results do not depend on thread count
     * or call site). Bin counts, count(), underflow() and overflow()
     * always reflect every sample added. Shrinks an over-full
     * retained set immediately when called late.
     */
    void capSamples(std::size_t cap);

    /** Retention bound; 0 = unbounded (the default). */
    std::size_t sampleCap() const { return cap; }

    /** Total samples added (not bounded by the cap). */
    std::uint64_t count() const { return totalAdds; }
    std::uint64_t binCount(std::size_t i) const { return counts.at(i); }
    std::uint64_t underflow() const { return below; }
    std::uint64_t overflow() const { return above; }
    std::size_t numBins() const { return counts.size(); }
    /** Inclusive lower edge of bin @p i. */
    double binLo(std::size_t i) const;
    /** Exclusive upper edge of bin @p i. */
    double binHi(std::size_t i) const;

    /**
     * Quantile @p q in [0, 1] over the retained samples — exact until
     * a capSamples() bound is exceeded, a reservoir estimate after.
     * The sorted view is computed once and cached; interleaved add()
     * calls invalidate it, so extracting a block of percentiles costs
     * one sort, not one per quantile.
     */
    double quantile(double q) const;

    /** Mean over the retained samples (exact until capped). */
    double mean() const;

    /** Retained samples in insertion order. */
    const std::vector<double> &data() const { return samples; }

  private:
    /** Retained-sample mutation: invalidate the cached sorted view. */
    void touchSamples() { sortedDirty = true; }
    /** Private deterministic generator for the reservoir. */
    std::uint64_t nextRand();

    double lower, upper, width;
    std::vector<std::uint64_t> counts;
    std::uint64_t below = 0, above = 0;
    std::vector<double> samples;
    std::size_t cap = 0;        ///< 0 = retain everything
    std::uint64_t totalAdds = 0;
    std::uint64_t rngState = 0x9e3779b97f4a7c15ULL;
    /** Lazily sorted copy of `samples` backing quantile(). */
    mutable std::vector<double> sortedCache;
    mutable bool sortedDirty = true;
};

/**
 * Aligned plain-text table for experiment output. Columns are sized to
 * the widest cell; numeric formatting is caller-controlled via cell
 * strings.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Render with column alignment and a header rule. */
    std::string str() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    std::vector<std::string> cols;
    std::vector<std::vector<std::string>> rows;
};

/** Format a double with %g-style compactness into a cell. */
std::string cell(double v, int precision = 4);

/** Format an integer cell. */
std::string cell(std::uint64_t v);
std::string cell(int v);

/** Render a fraction as a percent cell, e.g. 0.756 -> "75.6%". */
std::string percentCell(double fraction, int precision = 1);

} // namespace capy::sim

#endif // CAPY_SIM_STATS_HH
