file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_switch.dir/bench_ablation_switch.cc.o"
  "CMakeFiles/bench_ablation_switch.dir/bench_ablation_switch.cc.o.d"
  "bench_ablation_switch"
  "bench_ablation_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
