/**
 * @file
 * Reproduces Fig. 10: sensitivity of detection accuracy to the mean
 * event inter-arrival time. Sequences are drawn from Poisson
 * distributions with decreasing means; sparser events are easier for
 * every system, but a fixed-capacity system benefits less because it
 * must recharge its large bank whether or not an event occurred.
 */

#include <cstdio>
#include <vector>

#include "apps/grc.hh"
#include "apps/ta.hh"
#include "bench_util.hh"
#include "env/events.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace capy;
using namespace capy::apps;
using namespace capy::bench;
using namespace capy::core;

namespace
{

constexpr std::uint64_t kSeed = 77;

env::EventSchedule
schedule(double mean_interval, std::size_t count, std::uint64_t salt)
{
    sim::Rng rng(kSeed + salt, 0x42);
    return env::EventSchedule::poisson(rng, mean_interval,
                                       mean_interval * double(count),
                                       60.0);
}

} // namespace

int
main()
{
    setQuiet(true);
    banner("Figure 10",
           "sensitivity of accuracy to event inter-arrival time");

    // --- TempAlarm: means 100..400 s (paper's left panel). ---
    std::printf("TempAlarm (Pwr / Fixed / Capy-R / Capy-P)\n");
    sim::Table ta_table({"mean inter-arrival (s)", "events", "Pwr",
                         "Fixed", "Capy-R", "Capy-P"});
    std::vector<double> ta_means = {100, 150, 200, 250, 300, 400};
    const Policy ta_pols[4] = {Policy::Continuous, Policy::Fixed,
                               Policy::CapyR, Policy::CapyP};
    // Schedules are drawn serially (cheap, deterministic); the
    // mean x policy grid of runs fans out as one parallel batch.
    std::vector<env::EventSchedule> ta_scheds;
    for (double mean : ta_means)
        ta_scheds.push_back(schedule(mean, 30, std::uint64_t(mean)));
    std::vector<MetricsJob> ta_jobs;
    for (std::size_t mi = 0; mi < ta_means.size(); ++mi)
        for (Policy p : ta_pols)
            ta_jobs.push_back([&ta_scheds, &ta_means, mi, p] {
                return runTempAlarm(p, ta_scheds[mi], kSeed,
                                    ta_means[mi] * 30.0);
            });
    auto ta_runs = runMetricsBatch(ta_jobs);

    std::vector<std::vector<double>> ta_frac;
    for (std::size_t mi = 0; mi < ta_means.size(); ++mi) {
        std::vector<double> fr;
        for (std::size_t pi = 0; pi < 4; ++pi)
            fr.push_back(
                ta_runs[mi * 4 + pi].summary.fracCorrect);
        ta_frac.push_back(fr);
        ta_table.addRow({sim::cell(ta_means[mi], 4),
                         sim::cell(std::uint64_t(ta_scheds[mi].size())),
                         sim::percentCell(fr[0]), sim::percentCell(fr[1]),
                         sim::percentCell(fr[2]),
                         sim::percentCell(fr[3])});
    }
    ta_table.print();

    // --- GestureFast: means 10..30 s (paper's right panel). ---
    std::printf("\nGestureFast (Pwr / Fixed / Capy-P)\n");
    sim::Table g_table({"mean inter-arrival (s)", "events", "Pwr",
                        "Fixed", "Capy-P"});
    std::vector<double> g_means = {10, 15, 20, 25, 30};
    const Policy g_pols[3] = {Policy::Continuous, Policy::Fixed,
                              Policy::CapyP};
    std::vector<env::EventSchedule> g_scheds;
    for (double mean : g_means)
        g_scheds.push_back(
            schedule(mean, 60, std::uint64_t(mean) + 1000));
    std::vector<MetricsJob> g_jobs;
    for (std::size_t mi = 0; mi < g_means.size(); ++mi)
        for (Policy p : g_pols)
            g_jobs.push_back([&g_scheds, &g_means, mi, p] {
                return runGestureRemote(GrcVariant::Fast, p,
                                        g_scheds[mi], kSeed,
                                        g_means[mi] * 60.0);
            });
    auto g_runs = runMetricsBatch(g_jobs);

    std::vector<std::vector<double>> g_frac;
    for (std::size_t mi = 0; mi < g_means.size(); ++mi) {
        std::vector<double> fr;
        for (std::size_t pi = 0; pi < 3; ++pi)
            fr.push_back(g_runs[mi * 3 + pi].summary.fracCorrect);
        g_frac.push_back(fr);
        g_table.addRow({sim::cell(g_means[mi], 4),
                        sim::cell(std::uint64_t(g_scheds[mi].size())),
                        sim::percentCell(fr[0]), sim::percentCell(fr[1]),
                        sim::percentCell(fr[2])});
    }
    g_table.print();

    // Shape checks.
    auto avg = [](const std::vector<std::vector<double>> &m, int col,
                  bool top_half) {
        double s = 0.0;
        std::size_t n = m.size() / 2;
        for (std::size_t i = 0; i < n; ++i)
            s += m[top_half ? m.size() - 1 - i : i][std::size_t(col)];
        return s / double(n);
    };

    shapeCheck(avg(ta_frac, 3, true) >= avg(ta_frac, 3, false),
               "TA Capy-P: accuracy does not degrade as events spread "
               "out");
    shapeCheck(avg(ta_frac, 1, true) > avg(ta_frac, 1, false),
               "TA Fixed: sparser events are detected more often");
    // The core Fig. 10 claim: lower event frequency helps Fixed less
    // than Capybara — the Capybara-Fixed gap stays wide at every
    // mean.
    bool gap_everywhere = true;
    for (const auto &row : ta_frac)
        gap_everywhere &= row[3] >= row[1] + 0.15;
    shapeCheck(gap_everywhere,
               "TA: Capy-P maintains a wide accuracy gap over Fixed "
               "across all inter-arrival means");
    bool grc_gap = true;
    for (const auto &row : g_frac)
        grc_gap &= row[2] >= 1.5 * row[1];
    shapeCheck(grc_gap,
               "GRC: Capy-P maintains >=1.5x Fixed accuracy across "
               "all inter-arrival means");
    shapeCheck(avg(ta_frac, 0, true) >= 0.9,
               "continuous power stays near-perfect regardless of "
               "inter-arrival");
    return finish();
}
