/**
 * @file
 * Related-work comparison (§7): Chain-style atomic tasks (the model
 * Capybara's interface builds on) vs Hibernus-style dynamic
 * checkpointing, for a long computation across bank sizes.
 *
 * Checkpointing completes arbitrarily long work on any bank by paying
 * checkpoint/restore overhead at arbitrary energy states; atomic
 * tasks are all-or-nothing per charge cycle — which is exactly why
 * they compose with Capybara's per-task energy modes while dynamic
 * checkpoints do not.
 */

#include <cmath>
#include <cstdio>
#include <memory>

#include "apps/experiment.hh"
#include "bench_util.hh"
#include "dev/device.hh"
#include "power/parts.hh"
#include "rt/checkpoint.hh"
#include "rt/kernel.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"

using namespace capy;
using namespace capy::bench;
using namespace capy::power;

namespace
{

constexpr double kWork = 4.0;      // s of computation
constexpr double kHarvest = 10e-3;
constexpr double kHorizon = 3600.0;

struct Outcome
{
    bool completed = false;
    double finishTime = -1.0;
    std::uint64_t checkpoints = 0;
    std::uint64_t restarts = 0;
    double overhead = 0.0;
};

std::unique_ptr<dev::Device>
makeDevice(sim::Simulator &sim, const CapacitorSpec &bank)
{
    PowerSystem::Spec spec;
    auto ps = std::make_unique<PowerSystem>(
        spec, std::make_unique<RegulatedSupply>(kHarvest, 3.3));
    ps->addBank("b", bank);
    return std::make_unique<dev::Device>(
        sim, std::move(ps), dev::msp430fr5969(),
        dev::Device::PowerMode::Intermittent);
}

Outcome
runChain(const CapacitorSpec &bank)
{
    Outcome out;
    sim::Simulator simulator;
    auto device = makeDevice(simulator, bank);
    rt::App app;
    app.addTask("compute", kWork, 0.0,
                [&](rt::Kernel &k) -> const rt::Task * {
                    out.completed = true;
                    out.finishTime = k.now();
                    return nullptr;
                });
    rt::Kernel kernel(*device, app);
    kernel.start();
    simulator.runUntil(kHorizon);
    out.restarts = kernel.stats().taskRestarts;
    return out;
}

Outcome
runCheckpoint(const CapacitorSpec &bank)
{
    Outcome out;
    sim::Simulator simulator;
    auto device = makeDevice(simulator, bank);
    rt::CheckpointKernel kernel(
        *device, rt::CheckpointKernel::Spec{}, kWork, 0.0, [&] {
            out.completed = true;
            out.finishTime = simulator.now();
        });
    kernel.start();
    simulator.runUntil(kHorizon);
    out.checkpoints = kernel.stats().checkpoints;
    out.overhead = kernel.stats().overheadTime;
    return out;
}

} // namespace

int
main()
{
    setQuiet(true);
    banner("Section 7 comparison",
           "atomic tasks vs dynamic checkpointing");
    std::printf("workload: %.0f s of computation; harvest %.0f mW\n\n",
                kWork, kHarvest * 1e3);

    struct Case
    {
        const char *name;
        CapacitorSpec bank;
    };
    Case cases[] = {
        {"0.8 mF ceramic", parts::x5r100uF().parallel(8)},
        {"7.5 mF EDLC", parts::edlc7_5mF()},
        {"30 mF EDLC", parts::edlc7_5mF().parallel(4)},
    };

    sim::Table t({"bank", "model", "completed", "finish (s)",
                  "checkpoints", "task restarts", "overhead (s)"});
    // The bank x execution-model grid (3 x {chain, checkpoint}) fans
    // out as one parallel batch; rows are built from the ordered
    // results, so the table is byte-identical at any CAPY_JOBS.
    auto runs = capy::apps::sweepPool().map(6, [&cases](std::size_t i) {
        const CapacitorSpec &bank = cases[i / 2].bank;
        return i % 2 == 0 ? runChain(bank) : runCheckpoint(bank);
    });
    Outcome chain[3], ckpt[3];
    for (int i = 0; i < 3; ++i) {
        chain[i] = runs[std::size_t(i) * 2];
        ckpt[i] = runs[std::size_t(i) * 2 + 1];
        t.addRow({cases[i].name, "Chain task",
                  chain[i].completed ? "yes" : "NO",
                  chain[i].completed
                      ? sim::cell(chain[i].finishTime, 4)
                      : "-",
                  "-", sim::cell(chain[i].restarts), "-"});
        t.addRow({cases[i].name, "checkpointing",
                  ckpt[i].completed ? "yes" : "NO",
                  ckpt[i].completed ? sim::cell(ckpt[i].finishTime, 4)
                                    : "-",
                  sim::cell(ckpt[i].checkpoints), "-",
                  sim::cell(ckpt[i].overhead, 3)});
    }
    t.print();

    shapeCheck(!chain[0].completed && !chain[1].completed,
               "the atomic task exceeds the small banks and never "
               "completes (all-or-nothing)");
    shapeCheck(chain[0].restarts > 10,
               "the doomed atomic task burns charge cycles retrying");
    shapeCheck(ckpt[0].completed && ckpt[1].completed &&
                   ckpt[2].completed,
               "checkpointing completes the work on every bank size");
    shapeCheck(ckpt[0].checkpoints > ckpt[2].checkpoints,
               "smaller buffers checkpoint more often (more "
               "overhead)");
    shapeCheck(chain[2].completed,
               "with a big enough bank the atomic task also "
               "completes — the regime Capybara provisions for");
    return finish();
}
