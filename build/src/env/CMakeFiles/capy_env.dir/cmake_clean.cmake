file(REMOVE_RECURSE
  "CMakeFiles/capy_env.dir/events.cc.o"
  "CMakeFiles/capy_env.dir/events.cc.o.d"
  "CMakeFiles/capy_env.dir/light.cc.o"
  "CMakeFiles/capy_env.dir/light.cc.o.d"
  "CMakeFiles/capy_env.dir/pendulum.cc.o"
  "CMakeFiles/capy_env.dir/pendulum.cc.o.d"
  "CMakeFiles/capy_env.dir/scoring.cc.o"
  "CMakeFiles/capy_env.dir/scoring.cc.o.d"
  "CMakeFiles/capy_env.dir/thermal.cc.o"
  "CMakeFiles/capy_env.dir/thermal.cc.o.d"
  "libcapy_env.a"
  "libcapy_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capy_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
