#include "power/booster.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace capy::power
{

double
inputChargePower(const InputBoosterSpec &spec, double p_harvest,
                 double v_harvest, double v_storage)
{
    if (p_harvest <= 0.0)
        return 0.0;

    if (v_storage >= spec.coldStartVoltage) {
        // Converter running: boosted transfer minus its own draw.
        return std::max(0.0,
                        spec.efficiency * p_harvest -
                            spec.quiescentPower);
    }

    // Cold start. The trickle path always exists; the bypass diode
    // conducts only while the harvester voltage exceeds the storage
    // voltage by the diode drop.
    double trickle = spec.coldStartFraction * p_harvest;
    if (spec.bypassEnabled &&
        v_harvest - spec.bypassDiodeDrop > v_storage) {
        return std::max(trickle, spec.bypassEfficiency * p_harvest);
    }
    return trickle;
}

double
storageDrawPower(const OutputBoosterSpec &spec, double rail_load)
{
    capy_assert(rail_load >= 0.0, "negative rail load %g", rail_load);
    return rail_load / spec.efficiency + spec.quiescentPower;
}

namespace
{

double
droopFloor(double v_min, double p_in, double esr)
{
    // Smallest V with V - (p_in / V) * esr >= v_min:
    //   V^2 - v_min V - p_in esr = 0.
    return 0.5 * (v_min + std::sqrt(v_min * v_min + 4.0 * p_in * esr));
}

} // namespace

double
brownoutVoltage(const OutputBoosterSpec &spec, double rail_load,
                double esr)
{
    capy_assert(esr >= 0.0, "negative ESR %g", esr);
    return droopFloor(spec.minInputRun, storageDrawPower(spec, rail_load),
                      esr);
}

double
startVoltage(const OutputBoosterSpec &spec, double rail_load, double esr)
{
    capy_assert(esr >= 0.0, "negative ESR %g", esr);
    return droopFloor(spec.minInputStart,
                      storageDrawPower(spec, rail_load), esr);
}

double
limitedVoltage(const LimiterSpec &spec, double v_harvest)
{
    return std::min(v_harvest, spec.clampVoltage);
}

} // namespace capy::power
