/**
 * @file
 * Crash-consistency auditor: the adversarial counterpart to the
 * fault injector (sim/fault.hh). While the injector forces power
 * failures at chosen instants, the auditor watches the device from
 * outside the software under test and checks, at every rail
 * transition, that the non-volatile state obeys the intermittent
 * model's contracts:
 *
 *  - monotonic progress: committed checkpoint/task progress never
 *    regresses across an outage;
 *  - atomic transitions: a recovered NV task pointer always
 *    designates a real task, and the Chain accounting identity
 *    (completions == transitions + halted) holds;
 *  - journal integrity: a torn commit is detected by the two-slot
 *    protocol, never returned as a value;
 *  - latch retention: an unpowered bank switch holds its commanded
 *    state exactly until its analytic expiry and reverts to its
 *    default after;
 *  - time accounting: checkpoint overhead balances against completed
 *    checkpoint/restore counts.
 *
 * The auditor installs itself as the Device::Observer, so its probes
 * run after the software's own failure hook (post-tear state) and
 * before the software's boot hook (pre-repair state). Probes use
 * peek()-style accessors and never perturb the accounting they audit.
 */

#ifndef CAPY_RT_AUDIT_HH
#define CAPY_RT_AUDIT_HH

#include <functional>
#include <string>
#include <vector>

#include "dev/device.hh"

namespace capy::rt
{

class Kernel;
class CheckpointKernel;

/**
 * Watches one Device for crash-consistency violations. Construct,
 * attach the checks that apply to the software under test, run the
 * simulation, then inspect violations().
 */
class CrashAuditor
{
  public:
    /** One detected contract violation. */
    struct Violation
    {
        std::string rule;    ///< name of the violated check
        std::string detail;  ///< human-readable evidence
        sim::Time when = 0.0;
    };

    /** Takes the device's Observer slot for its lifetime. */
    explicit CrashAuditor(dev::Device &device);

    CrashAuditor(const CrashAuditor &) = delete;
    CrashAuditor &operator=(const CrashAuditor &) = delete;

    /// @name Check registration
    /// @{

    /**
     * A named invariant, evaluated at every rail transition and on
     * checkNow(). Returns an empty string when the invariant holds,
     * otherwise the violation evidence.
     */
    using Check = std::function<std::string()>;

    void addInvariant(std::string rule, Check check);

    /**
     * A named monotonic quantity: any later sample below the
     * high-water mark (minus @p tol) is a violation. Sampled at every
     * rail transition and on checkNow(). The canonical use is
     * committed progress, which an outage must never roll back.
     */
    void addMonotonic(std::string rule, std::function<double()> probe,
                      double tol = 1e-12);

    /** Attach the Chain-kernel contract checks. */
    void watchKernel(const Kernel &kernel);

    /** Attach the checkpoint-kernel contract checks. */
    void watchCheckpoint(const CheckpointKernel &kernel);

    /**
     * Attach latch-retention checks: across every outage, each bank
     * switch must hold its commanded state while the latch lasts and
     * revert to default once its recorded expiry passes.
     */
    void watchLatches();

    /// @}
    /// @name Results
    /// @{

    /** Evaluate all invariants and monotonic probes immediately. */
    void checkNow();

    const std::vector<Violation> &violations() const { return found; }
    bool clean() const { return found.empty(); }

    /** Individual check evaluations performed. */
    std::uint64_t checksRun() const { return numChecks; }
    /** Rail-down/rail-up transition pairs observed. */
    std::uint64_t outagesAudited() const { return numOutages; }

    /** Multi-line human-readable violation list ("" when clean). */
    std::string report() const;

    /**
     * Powered [rail-up, rail-down] intervals observed so far. An
     * interval still open (device powered) is closed at the current
     * simulation time. The crash-sweep driver targets these spans
     * with time-indexed injections — failure points outside them hit
     * an unpowered device and can't tear anything.
     */
    std::vector<std::pair<sim::Time, sim::Time>> activeSpans() const;

    /// @}

  private:
    struct MonotonicProbe
    {
        std::string rule;
        std::function<double()> probe;
        double tol;
        double highWater;
        bool seeded = false;
    };

    /** Latch state recorded at rail-down for one switched bank. */
    struct LatchRecord
    {
        int bankIdx = 0;
        bool closed = false;
        bool atDefault = false;
        sim::Time expiry = 0.0;  ///< absolute reversion time
    };

    void onRailUp();
    void onRailDown(dev::Device::RailDownReason reason);
    void runChecks();
    void sampleMonotonics();
    void recordLatches();
    void checkLatches();
    void violate(const std::string &rule, std::string detail);

    dev::Device &dev;
    std::vector<std::pair<std::string, Check>> invariants;
    std::vector<MonotonicProbe> monotonics;
    bool latchesWatched = false;
    std::vector<LatchRecord> latchesAtDown;
    bool downRecorded = false;
    sim::Time lastDownTime = 0.0;
    sim::Time lastUpTime = -1.0;
    std::vector<std::pair<sim::Time, sim::Time>> spans;
    std::vector<Violation> found;
    std::uint64_t numChecks = 0;
    std::uint64_t numOutages = 0;
};

} // namespace capy::rt

#endif // CAPY_RT_AUDIT_HH
