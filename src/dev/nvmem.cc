#include "dev/nvmem.hh"

namespace capy::dev
{

void
NvMemory::noteWrite(std::uint64_t cell_writes)
{
    ++numWrites;
    if (endurance != 0 && cell_writes > endurance && !wornFlag) {
        wornFlag = true;
        capy_warn("non-volatile device '%s' exceeded write endurance "
                  "(%llu writes to one cell, rated %llu)",
                  deviceName.c_str(),
                  static_cast<unsigned long long>(cell_writes),
                  static_cast<unsigned long long>(endurance));
    }
}

} // namespace capy::dev
