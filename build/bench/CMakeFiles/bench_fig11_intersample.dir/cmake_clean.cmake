file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_intersample.dir/bench_fig11_intersample.cc.o"
  "CMakeFiles/bench_fig11_intersample.dir/bench_fig11_intersample.cc.o.d"
  "bench_fig11_intersample"
  "bench_fig11_intersample.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_intersample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
