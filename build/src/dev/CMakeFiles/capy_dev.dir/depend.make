# Empty dependencies file for capy_dev.
# This may be replaced when dependencies are built.
