#include "apps/grc.hh"

#include "dev/peripheral.hh"
#include "env/pendulum.hh"
#include "power/units.hh"
#include "rt/channel.hh"
#include "sim/logging.hh"

namespace capy::apps
{

using namespace capy::literals;

const char *
grcVariantName(GrcVariant variant)
{
    switch (variant) {
      case GrcVariant::Fast:
        return "GestureFast";
      case GrcVariant::Compact:
        return "GestureCompact";
    }
    capy_panic("unknown GrcVariant %d", static_cast<int>(variant));
}

RunMetrics
runGestureRemote(GrcVariant variant, core::Policy policy,
                 const env::EventSchedule &schedule, std::uint64_t seed,
                 double horizon, const FaultSpec *faults)
{
    sim::Simulator simulator;
    AppBoard board_kind = variant == GrcVariant::Fast
                              ? AppBoard::GestureFast
                              : AppBoard::GestureCompact;
    Board board = makeBoard(simulator, board_kind, policy);
    env::Pendulum pendulum(schedule);
    env::Scoreboard sb(schedule);
    dev::Radio radio(dev::bleRadio());
    sim::Rng rng(seed, 0x2b);
    dev::NvMemory fram("fram");

    rt::Channel<int> gestureEvent(&fram, -1);
    rt::Channel<int> gestureCorrect(&fram, 0);

    rt::App app;
    const auto photo_spec = dev::periph::phototransistor();
    const auto apds = dev::periph::apds9960Gesture();
    const auto ble = dev::bleRadio();
    const double tx_dur = txDuration(ble, 8);
    const double gest_dur = apds.warmupTime + apds.minActiveTime;

    rt::Task *photo = nullptr;
    rt::Task *gesture = nullptr;   // Compact only
    rt::Task *radio_tx = nullptr;  // Compact only
    rt::Task *gesture_tx = nullptr;  // Fast only

    if (variant == GrcVariant::Compact) {
        radio_tx = app.addTask(
            "radio_tx", tx_dur, 0.0,
            [&](rt::Kernel &k) -> const rt::Task * {
                int ev = gestureEvent.get();
                if (radio.attemptDelivery(rng)) {
                    if (gestureCorrect.get())
                        sb.recordReport(ev, k.now());
                    else
                        sb.recordMisclassified(ev);
                }
                return photo;
            });
        // Host sleeps during the radio session.
        radio_tx->absolutePower = ble.txPower;
        gesture = app.addTask(
            "gesture", gest_dur, apds.activePower,
            [&](rt::Kernel &k) -> const rt::Task * {
                int ev = -1;
                auto r = pendulum.senseGesture(
                    k.now() - apds.minActiveTime, apds.minActiveTime,
                    rng, &ev);
                using GR = env::Pendulum::GestureResult;
                if (r == GR::NoGesture)
                    return photo;
                gestureEvent.set(ev);
                gestureCorrect.set(r == GR::Decoded ? 1 : 0);
                return radio_tx;
            });
    } else {
        // Joined task: the gesture window occupies the head of the
        // task; the transmission the tail. Rail power is the
        // energy-equivalent average.
        double joined_dur = gest_dur + tx_dur;
        // Gesture head runs the MCU + APDS; radio tail runs the
        // radio with the host asleep. Rail power is the
        // energy-equivalent average, applied as an absolute power.
        double mcu_active = dev::msp430fr5969().activePower;
        double joined_power =
            ((mcu_active + apds.activePower) * gest_dur +
             ble.txPower * tx_dur) /
            joined_dur;
        gesture_tx = app.addTask(
            "gesture_tx", joined_dur, 0.0,
            // joined_dur is block-scoped: capture it by value.
            [&, joined_dur](rt::Kernel &k) -> const rt::Task * {
                int ev = -1;
                auto r = pendulum.senseGesture(
                    k.now() - joined_dur + apds.warmupTime,
                    apds.minActiveTime, rng, &ev);
                using GR = env::Pendulum::GestureResult;
                if (r == GR::NoGesture)
                    return photo;
                if (radio.attemptDelivery(rng)) {
                    if (r == GR::Decoded)
                        sb.recordReport(ev, k.now());
                    else
                        sb.recordMisclassified(ev);
                }
                return photo;
            });
        gesture_tx->absolutePower = joined_power;
    }

    photo = app.addTask(
        "photo", 1_ms + photo_spec.warmupTime, photo_spec.activePower,
        [&](rt::Kernel &k) -> const rt::Task * {
            sim::Time t = k.now();
            sb.recordSample(t);
            int ev = pendulum.eventAt(t);
            if (ev >= 0) {
                sb.recordDetection(ev);
                return variant == GrcVariant::Fast
                           ? gesture_tx
                           : gesture;
            }
            return photo;
        });
    app.setEntry(photo);

    rt::Kernel kernel(*board.device, app, &fram);
    core::Runtime runtime(kernel, board.registry, policy, &fram);
    // §6.1.1: the proximity task pre-charges the burst bank; the
    // gesture (and transmit) tasks are bursts with a hard temporal
    // constraint — they must run before the motion completes.
    runtime.annotate(photo, core::Annotation::preburst(
                                board.bigMode, board.smallMode));
    if (variant == GrcVariant::Fast) {
        runtime.annotate(gesture_tx,
                         core::Annotation::burst(board.bigMode));
    } else {
        runtime.annotate(gesture,
                         core::Annotation::burst(board.bigMode));
        runtime.annotate(radio_tx,
                         core::Annotation::burst(board.bigMode));
    }
    runtime.install();

    std::optional<FaultHarness> harness;
    if (faults) {
        harness.emplace(*board.device, *faults, &fram);
        harness->watchKernel(kernel);
    }

    kernel.start();
    simulator.runUntil(horizon);

    RunMetrics out;
    collectMetrics(out, sb, *board.device, kernel, runtime, radio);
    if (harness)
        out.faults = harness->finish();
    return out;
}

} // namespace capy::apps
