/**
 * @file
 * Board catalog: the capacitor-bank provisioning of §6.1 for each
 * application under each power-system discipline, built into ready
 * Device + ModeRegistry bundles. One central catalog keeps every
 * experiment drawing the same datasheet-derived constants.
 *
 * Provisioning (copied from the paper):
 *  - GRC Fixed: 400 uF ceramic + 330 uF tantalum + 67.5 mF EDLC
 *  - GRC Capybara small mode: 400 uF ceramic + 330 uF tantalum
 *  - GRC-Fast big bank: 45 mF EDLC; GRC-Compact big bank: 67.5 mF
 *  - TA Fixed: 300 uF ceramic + 1100 uF tantalum + 7.5 mF EDLC
 *  - TA small mode: 300 uF ceramic + 100 uF tantalum
 *  - TA big bank: 1000 uF tantalum + 7.5 mF EDLC
 *  - CSR Fixed: the GRC Fixed bank; CSR big bank: 45 mF
 */

#ifndef CAPY_APPS_BOARDS_HH
#define CAPY_APPS_BOARDS_HH

#include <memory>

#include "core/energy_mode.hh"
#include "core/runtime.hh"
#include "dev/device.hh"
#include "sim/simulator.hh"

namespace capy::apps
{

/** A fully constructed board: device + mode registry. */
struct Board
{
    std::unique_ptr<dev::Device> device;
    /** Borrowed from the device's power system. */
    power::PowerSystem *ps = nullptr;
    core::ModeRegistry registry;
    /** Low-energy mode (small banks only). */
    core::ModeId smallMode = core::kNoMode;
    /** High-energy mode (big switched bank active). */
    core::ModeId bigMode = core::kNoMode;
    /** Index of the big switched bank; -1 on Fixed/Pwr boards. */
    int bigBank = -1;
};

/** Which application's provisioning to build. */
enum class AppBoard
{
    TempAlarm,
    GestureFast,
    GestureCompact,
    CorrSense,
};

const char *appBoardName(AppBoard board);

/**
 * Build the §6.1 board for @p app under @p policy.
 *
 * Harvesters follow the paper's rigs: TA boards harvest from two
 * solar panels under a 42%-PWM halogen; GRC/CSR boards use the
 * regulated <= 10 mW bench harvester. Continuous-policy boards use
 * the same storage but never brown out.
 *
 * @param switch_kind latch-switch default for the big bank.
 * @param precharge_penalty if >= 0, overrides the power system's
 *        pre-charge voltage penalty (§6.4 ablation).
 */
Board makeBoard(sim::Simulator &sim, AppBoard app, core::Policy policy,
                power::SwitchKind switch_kind =
                    power::SwitchKind::NormallyOpen,
                double precharge_penalty = -1.0);

/** Harvest power available to a TA board (panels x PWM), W. */
double taHarvestPower();

/** Harvest power of the GRC/CSR bench harvester, W. */
double grcHarvestPower();

} // namespace capy::apps

#endif // CAPY_APPS_BOARDS_HH
