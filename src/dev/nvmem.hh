/**
 * @file
 * Non-volatile memory model. Intermittent software keeps control and
 * channel state in FRAM so it survives power failures; this module
 * provides typed non-volatile cells with read/write accounting (FRAM
 * endurance is effectively unlimited, but EEPROM-backed components
 * such as the V_top digital potentiometer of §5.2 are not, so the
 * accounting also backs the mechanism-comparison ablation).
 *
 * Crash-consistency model: the memory device commits one word
 * (NvMemory::wordBytes) atomically; a value wider than one word is
 * written word-by-word, so a power failure striking inside the write
 * window leaves a *torn* value — a prefix of new words followed by
 * old words. Plain NvCell writes are logically atomic (the software
 * is assumed to publish them behind its own protocol, or they fit one
 * word); NvJournaledCell implements that protocol explicitly — a
 * two-slot journal with sequence numbers and a trailing CRC — and
 * exposes tearSet() so the fault-injection harness can model a
 * failure between the words of a commit and the auditor can verify
 * detection and recovery.
 */

#ifndef CAPY_DEV_NVMEM_HH
#define CAPY_DEV_NVMEM_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>

#include "sim/logging.hh"

namespace capy::dev
{

/** CRC-32 (IEEE, reflected) over @p len bytes; the journal slots'
 *  integrity check. */
std::uint32_t nvCrc32(const void *data, std::size_t len);

/** Aggregate access accounting for one non-volatile memory device. */
class NvMemory
{
  public:
    /**
     * @param device_name label for diagnostics.
     * @param write_endurance rated writes per cell; 0 = unlimited
     *        (FRAM-class).
     */
    explicit NvMemory(std::string device_name = "fram",
                      std::uint64_t write_endurance = 0)
        : deviceName(std::move(device_name)),
          endurance(write_endurance)
    {}

    void noteRead() { ++numReads; }
    void noteWrite(std::uint64_t cell_writes);

    std::uint64_t reads() const { return numReads; }
    std::uint64_t writes() const { return numWrites; }
    std::uint64_t enduranceLimit() const { return endurance; }
    bool wornOut() const { return wornFlag; }
    const std::string &name() const { return deviceName; }

    /// @name Crash-consistency model
    /// @{

    /** Bytes the device commits atomically (FRAM word size). */
    std::size_t wordBytes() const { return atomicWordBytes; }

    /** Torn (partially completed) commits modelled on this device. */
    std::uint64_t tornCommits() const { return numTornCommits; }
    /** Reads that detected a torn/invalid slot and fell back to the
     *  last consistent copy. */
    std::uint64_t tornRecoveries() const { return numTornRecoveries; }

    void noteTornCommit() { ++numTornCommits; }
    void noteTornRecovery() { ++numTornRecoveries; }

    /**
     * Deliberately break the journal recovery path (fault-harness
     * fixture): journaled reads return the newest slot even when its
     * integrity check fails, as a buggy runtime that skips CRC
     * verification would. Exists to prove the crash auditor catches a
     * broken recovery path; never set outside tests/crash sweeps.
     */
    void disableRecoveryForTest(bool broken) { recoveryBroken = broken; }
    bool recoveryDisabledForTest() const { return recoveryBroken; }

    /// @}

  private:
    std::string deviceName;
    std::uint64_t endurance;
    std::uint64_t numReads = 0;
    std::uint64_t numWrites = 0;
    bool wornFlag = false;
    /** MSP430-class FRAM commits 32-bit words atomically here; wider
     *  values are multi-word and tearable. */
    std::size_t atomicWordBytes = 4;
    std::uint64_t numTornCommits = 0;
    std::uint64_t numTornRecoveries = 0;
    bool recoveryBroken = false;
};

/**
 * A typed non-volatile cell. Contents survive power failures by
 * construction (the simulation never clears them); volatile state, by
 * contrast, must be modelled as ordinary variables that the software
 * layer re-initializes on boot.
 */
template <typename T>
class NvCell
{
  public:
    /** @param mem accounting device; may be nullptr (no accounting). */
    explicit NvCell(NvMemory *mem = nullptr, T initial = T{})
        : memory(mem), value(std::move(initial))
    {}

    const T &
    get() const
    {
        if (memory)
            memory->noteRead();
        return value;
    }

    /** Read without touching the access accounting (audit probes must
     *  not perturb the counters they audit alongside). */
    const T &peek() const { return value; }

    void
    set(const T &v)
    {
        ++cellWrites;
        if (memory)
            memory->noteWrite(cellWrites);
        value = v;
    }

    std::uint64_t writeCount() const { return cellWrites; }

  private:
    NvMemory *memory;
    T value;
    std::uint64_t cellWrites = 0;
};

/** Audit view of one journaled cell (see NvJournaledCell). */
struct NvJournalState
{
    bool valid[2] = {false, false};  ///< slot CRC verifies
    std::uint32_t seq[2] = {0, 0};   ///< slot sequence numbers
    int active = -1;        ///< recovered slot index; -1 = reset value
    bool torn = false;      ///< a slot currently holds a torn image
    std::uint64_t commits = 0;      ///< completed set() protocols
    std::uint64_t tornWrites = 0;   ///< tearSet() interruptions
};

/**
 * Crash-consistent non-volatile cell for trivially copyable values
 * wider than one memory word.
 *
 * Implements the classic two-slot journal: a commit writes the whole
 * record — payload, then sequence number, then CRC — into the slot
 * *not* currently active, and the reader picks the highest-sequence
 * slot whose CRC verifies. Because the CRC words are written last, a
 * power failure anywhere inside the multi-word write window leaves a
 * slot that fails verification, and the reader falls back to the
 * previous committed value; the cell never returns a torn value and a
 * commit is atomic exactly at its final word.
 *
 * tearSet() models the interrupted commit: it writes only the first
 * @p words memory words of the record the protocol would have
 * written. The fault harness drives it from the power-failure hook
 * with the interrupted write's elapsed fraction.
 */
template <typename T>
class NvJournaledCell
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "journaled cells hold raw memory images");

  public:
    explicit NvJournaledCell(NvMemory *mem = nullptr, T initial = T{})
        : memory(mem), resetValue(initial), slotA(mem), slotB(mem)
    {}

    /** Words in one slot record (the tearSet() range is [0, this]). */
    std::size_t
    slotWords() const
    {
        return (sizeof(Record) + wordBytes() - 1) / wordBytes();
    }

    /** Recovered value: newest consistent slot, or the reset value
     *  when nothing ever committed. */
    T
    get() const
    {
        if (memory) {
            memory->noteRead();
            // A read that skips past a newer-but-torn slot is the
            // recovery the crash audits want accounted.
            if (!memory->recoveryDisabledForTest()) {
                int active = activeSlot();
                if (active >= 0) {
                    int other = 1 - active;
                    const Record &rec = slot(other).peek();
                    if (slot(other).writeCount() > 0 &&
                        !verifies(rec) &&
                        rec.seq >= slot(active).peek().seq)
                        memory->noteTornRecovery();
                }
            }
        }
        return recover();
    }

    /** get() without touching any accounting (audit probes). */
    T peek() const { return recover(); }

    /**
     * Protocol-correct recovery, ignoring the broken-recovery test
     * fixture: the value a correct reader recovers. Audit probes
     * compare this against peek() — any divergence means the software
     * read path returned a value the journal protocol would not.
     */
    T
    auditRecover() const
    {
        int active = activeSlot();
        return active < 0 ? resetValue : slot(active).peek().value;
    }

    /** Atomically commit @p v through the journal protocol. */
    void
    set(const T &v)
    {
        Record rec = compose(v);
        slot(targetSlot()).set(rec);
        ++numCommits;
    }

    /**
     * Model a commit of @p v interrupted after @p words memory words
     * (0 <= words <= slotWords()). words == slotWords() degenerates
     * to a complete commit; anything less leaves a torn slot image
     * that get() must detect and recover from.
     */
    void
    tearSet(const T &v, std::size_t words)
    {
        std::size_t total = slotWords();
        capy_assert(words <= total, "torn write of %zu/%zu words",
                    words, total);
        if (words == total) {
            set(v);
            return;
        }
        Record full = compose(v);
        NvCell<Record> &target = slot(targetSlot());
        Record image = target.peek();
        std::memcpy(&image, &full, words * wordBytes());
        target.set(image);
        ++numTornWrites;
        if (memory)
            memory->noteTornCommit();
    }

    /** Audit snapshot; does not perturb accounting. */
    NvJournalState
    auditState() const
    {
        NvJournalState st;
        for (int i = 0; i < 2; ++i) {
            const Record &rec = slot(i).peek();
            st.valid[i] = verifies(rec);
            st.seq[i] = rec.seq;
        }
        st.active = activeSlot();
        st.torn = (numCommits + numTornWrites > 0) &&
                  (!st.valid[0] || !st.valid[1]) &&
                  slot(st.valid[0] ? 1 : 0).writeCount() > 0;
        st.commits = numCommits;
        st.tornWrites = numTornWrites;
        return st;
    }

    std::uint64_t commits() const { return numCommits; }
    std::uint64_t tornWrites() const { return numTornWrites; }

  private:
    struct Record
    {
        T value{};
        std::uint32_t seq = 0;
        std::uint32_t crc = 0;
    };

    std::size_t
    wordBytes() const
    {
        return memory ? memory->wordBytes() : 4;
    }

    static std::uint32_t
    crcOf(const Record &rec)
    {
        // CRC covers payload and sequence number; 0 is reserved for
        // "never written" so a fresh slot can't accidentally verify.
        std::uint32_t c =
            nvCrc32(&rec, offsetof(Record, crc));
        return c == 0 ? 1 : c;
    }

    bool
    verifies(const Record &rec) const
    {
        return rec.crc != 0 && rec.crc == crcOf(rec);
    }

    Record
    compose(const T &v) const
    {
        Record rec;
        rec.value = v;
        rec.seq = nextSeq();
        rec.crc = crcOf(rec);
        return rec;
    }

    std::uint32_t
    nextSeq() const
    {
        std::uint32_t hi = 0;
        for (int i = 0; i < 2; ++i)
            if (verifies(slot(i).peek()))
                hi = std::max(hi, slot(i).peek().seq);
        return hi + 1;
    }

    /** Slot a recovering reader selects; -1 when neither verifies. */
    int
    activeSlot() const
    {
        int best = -1;
        std::uint32_t best_seq = 0;
        for (int i = 0; i < 2; ++i) {
            const Record &rec = slot(i).peek();
            if (!verifies(rec))
                continue;
            if (best < 0 || rec.seq > best_seq) {
                best = i;
                best_seq = rec.seq;
            }
        }
        return best;
    }

    T
    recover() const
    {
        if (memory && memory->recoveryDisabledForTest()) {
            // Broken-recovery fixture: trust whichever slot carries
            // the newest sequence number, CRC unchecked — a torn
            // commit whose CRC never landed gets believed.
            if (slot(0).writeCount() + slot(1).writeCount() == 0)
                return resetValue;
            const Record &a = slot(0).peek();
            const Record &b = slot(1).peek();
            return (a.seq >= b.seq ? a : b).value;
        }
        return auditRecover();
    }

    /** The slot the next commit overwrites: never the active one. */
    int
    targetSlot() const
    {
        int active = activeSlot();
        if (active < 0)
            return 0;
        return 1 - active;
    }

    NvCell<Record> &
    slot(int i)
    {
        return i == 0 ? slotA : slotB;
    }

    const NvCell<Record> &
    slot(int i) const
    {
        return i == 0 ? slotA : slotB;
    }

    NvMemory *memory;
    T resetValue;
    NvCell<Record> slotA;
    NvCell<Record> slotB;
    std::uint64_t numCommits = 0;
    std::uint64_t numTornWrites = 0;
};

} // namespace capy::dev

#endif // CAPY_DEV_NVMEM_HH
