#include "env/thermal.hh"

#include <cmath>

#include "sim/logging.hh"

namespace capy::env
{

ThermalRig::ThermalRig(const EventSchedule &schedule, Spec spec)
    : events(schedule), rigSpec(spec)
{
    capy_assert(spec.bandLo < spec.baseTemp &&
                    spec.baseTemp < spec.bandHi,
                "base temperature must sit inside the band");
    capy_assert(spec.peakTemp > spec.bandHi, "excursion must leave "
                                             "the band");
    capy_assert(spec.rampTime > 0.0 && spec.holdTime >= 0.0,
                "bad excursion timing");
    capy_assert(spec.baseTemp + spec.wanderAmp < spec.bandHi &&
                    spec.baseTemp - spec.wanderAmp > spec.bandLo,
                "wander must stay inside the band");
}

double
ThermalRig::excursionShape(double dt) const
{
    double rise = rigSpec.peakTemp - rigSpec.baseTemp;
    if (dt < 0.0)
        return 0.0;
    if (dt < rigSpec.rampTime)
        return rise * dt / rigSpec.rampTime;
    if (dt < rigSpec.rampTime + rigSpec.holdTime)
        return rise;
    double fall = dt - rigSpec.rampTime - rigSpec.holdTime;
    if (fall < rigSpec.rampTime)
        return rise * (1.0 - fall / rigSpec.rampTime);
    return 0.0;
}

double
ThermalRig::excursionDuration() const
{
    return 2.0 * rigSpec.rampTime + rigSpec.holdTime;
}

double
ThermalRig::outOfRangeDuration() const
{
    // Out of band while excursionShape > bandHi - baseTemp.
    double rise = rigSpec.peakTemp - rigSpec.baseTemp;
    double threshold = rigSpec.bandHi - rigSpec.baseTemp;
    double ramp_fraction = threshold / rise;
    double in_ramp = rigSpec.rampTime * (1.0 - ramp_fraction);
    return 2.0 * in_ramp + rigSpec.holdTime;
}

double
ThermalRig::temperature(sim::Time t) const
{
    double temp =
        rigSpec.baseTemp +
        rigSpec.wanderAmp *
            std::sin(2.0 * M_PI * t / rigSpec.wanderPeriod);
    int id = events.eventCovering(t, 0.0, excursionDuration());
    if (id >= 0) {
        double dt = t - events.at(static_cast<std::size_t>(id)).time;
        // The control loop suspends the wander during an excursion.
        temp = rigSpec.baseTemp + excursionShape(dt);
    }
    return temp;
}

bool
ThermalRig::outOfRange(sim::Time t) const
{
    double temp = temperature(t);
    return temp > rigSpec.bandHi || temp < rigSpec.bandLo;
}

int
ThermalRig::alarmEventAt(sim::Time t) const
{
    if (!outOfRange(t))
        return -1;
    return events.eventCovering(t, 0.0, excursionDuration());
}

} // namespace capy::env
