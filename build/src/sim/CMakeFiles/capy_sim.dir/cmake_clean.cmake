file(REMOVE_RECURSE
  "CMakeFiles/capy_sim.dir/event.cc.o"
  "CMakeFiles/capy_sim.dir/event.cc.o.d"
  "CMakeFiles/capy_sim.dir/export.cc.o"
  "CMakeFiles/capy_sim.dir/export.cc.o.d"
  "CMakeFiles/capy_sim.dir/logging.cc.o"
  "CMakeFiles/capy_sim.dir/logging.cc.o.d"
  "CMakeFiles/capy_sim.dir/random.cc.o"
  "CMakeFiles/capy_sim.dir/random.cc.o.d"
  "CMakeFiles/capy_sim.dir/simulator.cc.o"
  "CMakeFiles/capy_sim.dir/simulator.cc.o.d"
  "CMakeFiles/capy_sim.dir/stats.cc.o"
  "CMakeFiles/capy_sim.dir/stats.cc.o.d"
  "CMakeFiles/capy_sim.dir/trace.cc.o"
  "CMakeFiles/capy_sim.dir/trace.cc.o.d"
  "libcapy_sim.a"
  "libcapy_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capy_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
