# Empty dependencies file for bench_capysat.
# This may be replaced when dependencies are built.
