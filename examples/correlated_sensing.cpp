/**
 * @file
 * The Correlated Sensing and Report application (§6.1.3): on a
 * magnetic-field event, immediately collect 32 distance samples,
 * light an LED, and transmit — an event chain of three bursts served
 * from one pre-charged bank.
 *
 * Usage: correlated_sensing [seed]
 */

#include <cstdio>
#include <cstdlib>

#include "apps/csr.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace capy;
using namespace capy::apps;
using namespace capy::core;

int
main(int argc, char **argv)
{
    setQuiet(true);
    std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                  : 2018;
    auto sched = grcSchedule(seed);
    std::printf("CSR: %zu magnet swings over %.0f minutes (seed "
                "%llu)\n\n",
                sched.size(), kGrcHorizon / 60.0,
                (unsigned long long)seed);

    sim::Table t({"system", "correct", "misclassified", "missed",
                  "latency mean (s)", "magnetometer samples",
                  "bursts"});
    for (Policy p : {Policy::Continuous, Policy::Fixed, Policy::CapyR,
                     Policy::CapyP}) {
        RunMetrics m = runCorrSense(p, sched, seed);
        t.addRow({policyName(p),
                  sim::percentCell(m.summary.fracCorrect),
                  sim::cell(m.summary.misclassified),
                  sim::cell(m.summary.missed),
                  m.summary.latency.count()
                      ? sim::cell(m.summary.latency.mean(), 4)
                      : "-",
                  sim::cell(m.samples),
                  sim::cell(m.runtime.burstActivations)});
    }
    t.print();

    std::printf(
        "\nA 'misclassified' CSR report carries stale distance data: "
        "the chain ran\ntoo late, after the magnet had already left "
        "(which is what happens to\nCapy-R: it recharges between "
        "detection and the distance scan).\n");
    return 0;
}
