file(REMOVE_RECURSE
  "CMakeFiles/test_power_system.dir/test_power_system.cc.o"
  "CMakeFiles/test_power_system.dir/test_power_system.cc.o.d"
  "test_power_system"
  "test_power_system.pdb"
  "test_power_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
