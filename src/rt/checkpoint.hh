/**
 * @file
 * Checkpoint-based intermittent execution, in the style of
 * Hibernus/QuickRecall (§7 "System support for intermittent
 * computing"): a long sequential computation runs until a low-voltage
 * threshold fires, checkpoints its volatile state to non-volatile
 * memory, and hibernates; on the next boot it restores and continues.
 *
 * Included as the comparative substrate the paper discusses: dynamic
 * checkpointing makes progress on arbitrarily long computations with
 * any bank size (paying checkpoint overhead), but checkpoints occur
 * at arbitrary energy states, which is why the paper finds it "less
 * amenable" to Capybara's task-level energy-mode annotations than
 * Chain-style tasks.
 */

#ifndef CAPY_RT_CHECKPOINT_HH
#define CAPY_RT_CHECKPOINT_HH

#include <functional>

#include "dev/device.hh"
#include "dev/nvmem.hh"

namespace capy::rt
{

/**
 * Runs one long computation to completion across power failures by
 * checkpointing at a low-voltage threshold.
 */
class CheckpointKernel
{
  public:
    /** Checkpointing mechanism parameters. */
    struct Spec
    {
        /** Time to write a checkpoint to NVM, s. */
        double checkpointTime = 5e-3;
        /** Extra rail power while checkpointing, W. */
        double checkpointPower = 2e-3;
        /** Time to restore a checkpoint on boot, s. */
        double restoreTime = 3e-3;
        /**
         * Voltage headroom above the brown-out floor at which the
         * low-voltage interrupt fires. Must cover the checkpoint's
         * own energy, or the checkpoint itself browns out.
         */
        double voltageHeadroom = 0.25;
    };

    struct Stats
    {
        /** Checkpoint writes that committed. */
        std::uint64_t checkpoints = 0;
        /** Restores that completed. */
        std::uint64_t restores = 0;
        /** Checkpoint writes interrupted mid-commit (torn). */
        std::uint64_t tornCheckpoints = 0;
        /** Compute time lost to power failures mid-slice, s. */
        double lostWork = 0.0;
        /**
         * Wall (simulated) time overhead in *completed* checkpoints
         * and restores, s. Identity: overheadTime ==
         * checkpoints * checkpointTime + restores * restoreTime.
         */
        double overheadTime = 0.0;
        /** Checkpoint/restore time spent but aborted by failures, s. */
        double overheadLost = 0.0;
    };

    /** What the kernel was doing when a failure struck. */
    enum class Phase
    {
        None,        ///< idle / hibernating / booting
        Restore,     ///< reloading the checkpoint image
        Compute,     ///< running a work slice
        Checkpoint,  ///< writing the checkpoint image to NVM
    };

    /**
     * @param device the device to run on (kernel installs hooks).
     * @param spec checkpoint mechanism parameters.
     * @param total_work seconds of computation to perform.
     * @param extra_power rail power beyond MCU active during compute.
     * @param on_complete invoked once all work has committed.
     * @param nv accounting device for the progress cell.
     */
    CheckpointKernel(dev::Device &device, Spec spec, double total_work,
                     double extra_power,
                     std::function<void()> on_complete,
                     dev::NvMemory *nv = nullptr);

    /** Install hooks and begin (device starts charging). */
    void start();

    /** Committed progress, s of work (journal-recovered). */
    double progress() const { return nvProgress.get(); }

    bool finished() const { return done; }
    const Stats &stats() const { return ckptStats; }

    /** Work target, s. */
    double workTarget() const { return totalWork; }

    /** Mechanism parameters (for overhead-identity audits). */
    const Spec &kernelSpec() const { return spec; }

    /** Volatile work computed but not yet committed, s. */
    double uncommittedWork() const { return sliceInFlight; }

    /** Current phase (for audits; valid inside failure hooks). */
    Phase phase() const { return currentPhase; }

    /** The crash-consistent progress journal (audit access). */
    const dev::NvJournaledCell<double> &progressCell() const
    {
        return nvProgress;
    }

  private:
    void onBoot();
    void onPowerFail();
    void restoreThenCompute();
    void computeSlice();
    void writeCheckpoint(double slice_work);

    dev::Device &dev;
    Spec spec;
    double totalWork;
    double extraPower;
    std::function<void()> onComplete;
    dev::NvJournaledCell<double> nvProgress;
    double sliceInFlight = 0.0;
    Phase currentPhase = Phase::None;
    /** Progress value the in-flight checkpoint write will commit. */
    double pendingCommit = 0.0;
    bool done = false;
    Stats ckptStats;
};

} // namespace capy::rt

#endif // CAPY_RT_CHECKPOINT_HH
