#include "power/solver.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace capy::power
{

namespace
{

/** Relative tolerance for "already at target" checks. */
constexpr double kRelTol = 1e-12;

bool
lossless(const Phase &ph)
{
    return std::isinf(ph.leakRes);
}

} // namespace

double
steadyStateEnergy(const Phase &ph)
{
    if (lossless(ph))
        return ph.power > 0.0 ? kNever : 0.0;
    return std::max(0.0, ph.power * ph.leakRes * ph.capacitance * 0.5);
}

double
ExpCache::uncachedExp(double dt, double tau)
{
    return std::exp(-dt / tau);
}

double
advanceEnergy(double e0, const Phase &ph, double dt, ExpCache *memo)
{
    capy_assert(ph.capacitance > 0.0, "phase capacitance %g <= 0",
                ph.capacitance);
    capy_assert(dt >= 0.0, "negative dt %g", dt);
    capy_assert(e0 >= 0.0, "negative initial energy %g", e0);
    if (dt == 0.0)
        return e0;

    if (lossless(ph)) {
        // dE/dt = P: linear trajectory, clamped at zero.
        return std::max(0.0, e0 + ph.power * dt);
    }

    double tau = ph.leakRes * ph.capacitance * 0.5;
    double einf = ph.power * tau;  // may be negative when P < 0
    double decay = memo ? memo->expNegRatio(dt, tau)
                        : std::exp(-dt / tau);
    double e = einf + (e0 - einf) * decay;
    return std::max(0.0, e);
}

double
timeToEnergy(double e0, double target, const Phase &ph)
{
    capy_assert(ph.capacitance > 0.0, "phase capacitance %g <= 0",
                ph.capacitance);
    capy_assert(e0 >= 0.0 && target >= 0.0,
                "negative energy (e0=%g, target=%g)", e0, target);

    double scale = std::max({e0, target, 1e-30});
    if (std::abs(target - e0) <= kRelTol * scale)
        return 0.0;

    if (lossless(ph)) {
        if (ph.power == 0.0)
            return kNever;
        double t = (target - e0) / ph.power;
        return t > 0.0 ? t : kNever;
    }

    double tau = ph.leakRes * ph.capacitance * 0.5;
    double einf = ph.power * tau;
    // E(t) moves monotonically from e0 toward einf. The target is
    // reachable iff it lies strictly between e0 and einf (einf itself
    // is approached asymptotically), or equals a clamp at zero.
    double num = target - einf;
    double den = e0 - einf;
    if (den == 0.0)
        return kNever;  // already at steady state, never moves
    double ratio = num / den;
    if (ratio <= 0.0)
        return kNever;  // target on the far side of the asymptote
    if (ratio >= 1.0)
        return kNever;  // target behind the start, moving away
    return -tau * std::log(ratio);
}

} // namespace capy::power
