/**
 * @file
 * Non-volatile memory model. Intermittent software keeps control and
 * channel state in FRAM so it survives power failures; this module
 * provides typed non-volatile cells with read/write accounting (FRAM
 * endurance is effectively unlimited, but EEPROM-backed components
 * such as the V_top digital potentiometer of §5.2 are not, so the
 * accounting also backs the mechanism-comparison ablation).
 */

#ifndef CAPY_DEV_NVMEM_HH
#define CAPY_DEV_NVMEM_HH

#include <cstdint>
#include <string>

#include "sim/logging.hh"

namespace capy::dev
{

/** Aggregate access accounting for one non-volatile memory device. */
class NvMemory
{
  public:
    /**
     * @param device_name label for diagnostics.
     * @param write_endurance rated writes per cell; 0 = unlimited
     *        (FRAM-class).
     */
    explicit NvMemory(std::string device_name = "fram",
                      std::uint64_t write_endurance = 0)
        : deviceName(std::move(device_name)),
          endurance(write_endurance)
    {}

    void noteRead() { ++numReads; }
    void noteWrite(std::uint64_t cell_writes);

    std::uint64_t reads() const { return numReads; }
    std::uint64_t writes() const { return numWrites; }
    std::uint64_t enduranceLimit() const { return endurance; }
    bool wornOut() const { return wornFlag; }
    const std::string &name() const { return deviceName; }

  private:
    std::string deviceName;
    std::uint64_t endurance;
    std::uint64_t numReads = 0;
    std::uint64_t numWrites = 0;
    bool wornFlag = false;
};

/**
 * A typed non-volatile cell. Contents survive power failures by
 * construction (the simulation never clears them); volatile state, by
 * contrast, must be modelled as ordinary variables that the software
 * layer re-initializes on boot.
 */
template <typename T>
class NvCell
{
  public:
    /** @param mem accounting device; may be nullptr (no accounting). */
    explicit NvCell(NvMemory *mem = nullptr, T initial = T{})
        : memory(mem), value(std::move(initial))
    {}

    const T &
    get() const
    {
        if (memory)
            memory->noteRead();
        return value;
    }

    void
    set(const T &v)
    {
        ++cellWrites;
        if (memory)
            memory->noteWrite(cellWrites);
        value = v;
    }

    std::uint64_t writeCount() const { return cellWrites; }

  private:
    NvMemory *memory;
    T value;
    std::uint64_t cellWrites = 0;
};

} // namespace capy::dev

#endif // CAPY_DEV_NVMEM_HH
