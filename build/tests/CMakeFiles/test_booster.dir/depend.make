# Empty dependencies file for test_booster.
# This may be replaced when dependencies are built.
