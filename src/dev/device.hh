/**
 * @file
 * The energy-harvesting device: an MCU plus peripherals powered by a
 * reconfigurable PowerSystem, executing under the intermittent model
 * (§2): completely off while charging, boot when the buffer is full,
 * run until the buffer is empty.
 *
 * Device is the bridge between the event-driven simulator and the
 * continuous power model: it asks the power system for charge-complete
 * and brown-out crossing times and schedules simulator events exactly
 * there.
 */

#ifndef CAPY_DEV_DEVICE_HH
#define CAPY_DEV_DEVICE_HH

#include <functional>
#include <memory>

#include "dev/mcu.hh"
#include "power/power_system.hh"
#include "sim/simulator.hh"
#include "sim/trace.hh"

namespace capy::dev
{

/**
 * Intermittently-powered (or, for the baseline, continuously-powered)
 * device.
 */
class Device
{
  public:
    /** Supply discipline. */
    enum class PowerMode
    {
        Intermittent,  ///< harvested energy only; off while charging
        Continuous,    ///< bench supply: never browns out
    };

    /** Callbacks into the software layer. */
    struct Hooks
    {
        /** Device completed a (re)boot; software may run. */
        std::function<void()> onBoot;
        /** Power failed mid-operation; volatile state is lost. */
        std::function<void()> onPowerFail;
    };

    /** How an injected power failure treats the storage buffer. */
    enum class FailureKind
    {
        /**
         * Supply collapse: the storage node is dumped to the brown-out
         * floor, so recovery requires a full recharge phase. The
         * physical-brownout equivalent and the default for crash
         * sweeps.
         */
        Collapse,
        /**
         * Transient glitch: the MCU resets (volatile state lost, same
         * software-visible failure) but the buffer keeps its charge,
         * so the device typically reboots immediately. Exercises
         * back-to-back failure recovery.
         */
        Glitch,
    };

    /** Why the rail went down (Observer::onRailDown). */
    enum class RailDownReason
    {
        PowerFailure,  ///< brown-out or injected failure
        Park,          ///< voluntary powerDown() to recharge
    };

    /**
     * Audit instrumentation. Unlike Hooks (the software under test),
     * an Observer watches from outside: onRailDown fires *after* the
     * software's onPowerFail hook, so it sees the exact non-volatile
     * state that must survive the outage, and onRailUp fires on boot
     * completion *before* the software's onBoot hook, so it sees the
     * recovered state before recovery code can repair it.
     */
    struct Observer
    {
        std::function<void()> onRailUp;
        std::function<void(RailDownReason)> onRailDown;
    };

    /** Lifetime counters. */
    struct Stats
    {
        std::uint64_t boots = 0;
        std::uint64_t powerFailures = 0;
        /** Power failures that occurred during the boot sequence. */
        std::uint64_t bootFailures = 0;
        /** Subset of powerFailures forced by injectPowerFailure(). */
        std::uint64_t injectedFailures = 0;
        std::uint64_t workloadsCompleted = 0;
        std::uint64_t workloadsAborted = 0;
        double timeOn = 0.0;
        double timeCharging = 0.0;
    };

    Device(sim::Simulator &simulator,
           std::unique_ptr<power::PowerSystem> power_system,
           McuSpec mcu_spec, PowerMode power_mode);

    Device(const Device &) = delete;
    Device &operator=(const Device &) = delete;

    /** Install software hooks; must happen before start(). */
    void setHooks(Hooks hooks);

    /** Install audit instrumentation (may be set at any time). */
    void setObserver(Observer obs) { observer = std::move(obs); }

    /** Begin operation (start charging, or boot if continuous). */
    void start();

    /** Whether software is currently running. */
    bool isOn() const { return state == State::On; }

    /** Whether the device is off and accumulating charge. */
    bool isCharging() const { return state == State::Charging; }

    sim::Simulator &simulator() { return sim; }
    const sim::Simulator &simulator() const { return sim; }
    power::PowerSystem &powerSystem() { return *ps; }
    const power::PowerSystem &powerSystem() const { return *ps; }
    const McuSpec &mcu() const { return mcuSpec; }
    PowerMode powerMode() const { return mode; }

    /**
     * Execute an atomic workload drawing @p rail_power watts for
     * @p duration seconds. If the buffer browns out first the
     * workload is aborted: @p on_complete is dropped and the
     * onPowerFail hook fires instead.
     * @pre isOn().
     */
    void runWorkload(double rail_power, double duration,
                     std::function<void()> on_complete);

    /**
     * Voluntarily power down to recharge (the pause the runtime takes
     * after a reconfiguration, §4.1). The device boots again when the
     * buffer is full and the onBoot hook fires.
     * @pre isOn().
     */
    void powerDown();

    /**
     * Force a power failure right now (fault injection). The failure
     * goes through exactly the machinery a physical brown-out would:
     * any pending workload or boot completion is aborted, the rail
     * drops, the software's onPowerFail hook fires with volatile
     * state lost, and the device re-enters charging.
     *
     * @return true if a failure actually fired; false when the device
     *         is unpowered (charging/idle/dead — a supply fault is
     *         invisible) or on a continuous bench supply.
     */
    bool injectPowerFailure(FailureKind kind = FailureKind::Collapse);

    const Stats &stats() const { return devStats; }

    /** Power and elapsed time of the most recently aborted workload
     *  (valid inside/after an onPowerFail hook). */
    struct AbortedWorkload
    {
        double railPower = 0.0;
        double elapsed = 0.0;
    };
    const AbortedWorkload &lastAbortedWorkload() const
    {
        return lastAborted;
    }

    /** Operating ("on") vs charging ("charging") interval trace. */
    const sim::SpanTrace &spans() const { return activity; }

  private:
    enum class State
    {
        Idle,      ///< before start()
        Charging,  ///< off, accumulating energy
        Booting,   ///< rail up, boot sequence running
        On,        ///< software executing
        Dead,      ///< provably unable to ever boot
    };

    void enterCharging();
    void scheduleChargeWake();
    void onChargeWake();
    void beginBoot();
    void onBootDone();
    void failPower(bool during_boot);
    void transitionSpan(const char *label);
    void closeSpan();

    sim::Simulator &sim;
    std::unique_ptr<power::PowerSystem> ps;
    McuSpec mcuSpec;
    PowerMode mode;
    Hooks hooks;
    Observer observer;
    State state = State::Idle;
    sim::EventId pendingEvent = sim::kInvalidEvent;
    /** The pending event is a scheduled failPower(): its abort was
     *  already accounted when the physics predicted it. */
    bool pendingIsFail = false;
    /** A workload is in flight (runWorkload scheduled, not resolved). */
    bool workloadActive = false;
    Stats devStats;
    sim::SpanTrace activity;
    bool warnedStuck = false;
    double workloadPower = 0.0;
    sim::Time workloadStart = 0.0;
    AbortedWorkload lastAborted;
};

} // namespace capy::dev

#endif // CAPY_DEV_DEVICE_HH
