# Empty dependencies file for test_vtop_runtime.
# This may be replaced when dependencies are built.
