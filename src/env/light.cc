#include "env/light.hh"

#include <cmath>

#include "sim/logging.hh"

namespace capy::env
{

PwmHalogen::PwmHalogen(double duty_fraction) : duty(duty_fraction)
{
    capy_assert(duty_fraction >= 0.0 && duty_fraction <= 1.0,
                "duty %g out of [0,1]", duty_fraction);
}

power::SolarArray::Illumination
PwmHalogen::illumination() const
{
    double d = duty;
    return [d](sim::Time) { return d; };
}

OrbitLight::OrbitLight(Spec spec) : orbitSpec(spec)
{
    capy_assert(spec.eclipseDuration < spec.orbitPeriod,
                "eclipse longer than the orbit");
}

bool
OrbitLight::sunlit(sim::Time t) const
{
    double phase = std::fmod(t, orbitSpec.orbitPeriod);
    // Eclipse occupies the tail of each orbit.
    return phase < orbitSpec.orbitPeriod - orbitSpec.eclipseDuration;
}

power::SolarArray::Illumination
OrbitLight::illumination() const
{
    // Capture by value: the light model is immutable.
    OrbitLight copy = *this;
    return [copy](sim::Time t) { return copy.sunlit(t) ? 1.0 : 0.0; };
}

sim::Time
OrbitLight::changePeriod() const
{
    // The illumination changes at sunrise/sunset boundaries; a grid
    // at the gcd-ish granularity of the two arc lengths is adequate.
    double lit = orbitSpec.orbitPeriod - orbitSpec.eclipseDuration;
    return std::min(lit, orbitSpec.eclipseDuration) / 4.0;
}

} // namespace capy::env
