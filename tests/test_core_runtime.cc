/**
 * @file
 * Tests for the Capybara core: mode registry, annotation semantics
 * under each policy, the preburst state machine, burst activation and
 * retry, provisioning, and the V_top alternative mechanism.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/energy_mode.hh"
#include "core/provision.hh"
#include "core/runtime.hh"
#include "core/threshold_alt.hh"
#include "dev/device.hh"
#include "power/parts.hh"
#include "sim/simulator.hh"

using namespace capy;
using namespace capy::core;
using namespace capy::dev;
using namespace capy::power;
using namespace capy::rt;

namespace
{

/**
 * Standard two-bank board: hard-wired small bank (ceramic+tantalum)
 * plus a switched large EDLC bank, mirroring the paper's TA board.
 */
struct Board
{
    sim::Simulator sim;
    std::unique_ptr<Device> device;
    PowerSystem *ps = nullptr;
    int bigBank = -1;
    App app;
    ModeRegistry registry;
    ModeId smallMode, bigMode;

    explicit Board(double harvest_mw = 10.0,
                   SwitchKind kind = SwitchKind::NormallyOpen)
    {
        PowerSystem::Spec spec;
        auto psys = std::make_unique<PowerSystem>(
            spec,
            std::make_unique<RegulatedSupply>(harvest_mw * 1e-3, 3.3));
        psys->addBank("small", parallelCompose({parts::x5r100uF()
                                                    .parallel(3),
                                                parts::tant100uF()}));
        SwitchSpec sw;
        sw.kind = kind;
        bigBank = psys->addSwitchedBank("big", parts::edlc7_5mF(), sw);
        ps = psys.get();
        device = std::make_unique<Device>(
            sim, std::move(psys), msp430fr5969(),
            Device::PowerMode::Intermittent);
        smallMode = registry.define("small", {});
        bigMode = registry.define("big", {bigBank});
    }
};

} // namespace

TEST(ModeRegistry, DefineAndLookup)
{
    ModeRegistry reg;
    ModeId a = reg.define("sample", {});
    ModeId b = reg.define("radio", {1, 2});
    EXPECT_EQ(reg.count(), 2u);
    EXPECT_EQ(reg.name(a), "sample");
    EXPECT_EQ(reg.banks(b), (std::vector<int>{1, 2}));
    EXPECT_EQ(reg.find("radio"), b);
    EXPECT_EQ(reg.find("missing"), kNoMode);
}

TEST(Annotation, Constructors)
{
    Annotation c = Annotation::config(2);
    EXPECT_EQ(c.kind, AnnKind::Config);
    EXPECT_EQ(c.mode, 2);
    Annotation b = Annotation::burst(1);
    EXPECT_EQ(b.kind, AnnKind::Burst);
    Annotation p = Annotation::preburst(3, 4);
    EXPECT_EQ(p.kind, AnnKind::Preburst);
    EXPECT_EQ(p.burstMode, 3);
    EXPECT_EQ(p.mode, 4);
    EXPECT_STREQ(annKindName(AnnKind::Preburst), "preburst");
}

TEST(Policy, Names)
{
    EXPECT_STREQ(policyName(Policy::Continuous), "Pwr");
    EXPECT_STREQ(policyName(Policy::Fixed), "Fixed");
    EXPECT_STREQ(policyName(Policy::CapyR), "Capy-R");
    EXPECT_STREQ(policyName(Policy::CapyP), "Capy-P");
}

TEST(Runtime, ConfigActivatesModeBeforeTask)
{
    Board board;
    bool big_active_during_task = false;
    Task *t = board.app.addTask("tx", 5e-3, 0.0,
                                [&](Kernel &) -> const Task * {
                                    big_active_during_task =
                                        board.ps->bankActive(
                                            board.bigBank);
                                    return nullptr;
                                });
    Kernel kernel(*board.device, board.app);
    Runtime rt(kernel, board.registry, Policy::CapyP);
    rt.annotate(t, Annotation::config(board.bigMode));
    rt.install();
    kernel.start();
    board.sim.runUntil(600.0);
    EXPECT_TRUE(kernel.halted());
    EXPECT_TRUE(big_active_during_task);
    EXPECT_GE(rt.stats().reconfigurations, 1u);
    EXPECT_GE(rt.stats().rechargePauses, 1u)
        << "big bank was empty; a recharge pause is mandatory";
}

TEST(Runtime, ConfigSkipsPauseWhenAlreadyFull)
{
    Board board;
    int runs = 0;
    Task *t2 = board.app.addTask("again", 1e-3, 0.0,
                                 [&](Kernel &) -> const Task * {
                                     ++runs;
                                     return nullptr;
                                 });
    Task *t1 = board.app.addTask("first", 1e-3, 0.0,
                                 [&](Kernel &) -> const Task * {
                                     ++runs;
                                     return t2;
                                 });
    board.app.setEntry(t1);
    Kernel kernel(*board.device, board.app);
    Runtime rt(kernel, board.registry, Policy::CapyP);
    // Both tasks in the small mode: the second must not pause (the
    // tiny tasks barely dent the buffer, which refills instantly
    // under 10 mW harvest while... it does not: harvest during
    // operation is small. What matters is the buffer is not *empty*.)
    rt.annotate(t1, Annotation::config(board.smallMode));
    rt.annotate(t2, Annotation::config(board.smallMode));
    rt.install();
    kernel.start();
    board.sim.runUntil(600.0);
    EXPECT_EQ(runs, 2);
    EXPECT_TRUE(kernel.halted());
}

TEST(Runtime, FixedPolicyIgnoresAnnotations)
{
    Board board;
    Task *t = board.app.addTask("tx", 1e-3, 0.0,
                                [&](Kernel &) -> const Task * {
                                    return nullptr;
                                });
    Kernel kernel(*board.device, board.app);
    Runtime rt(kernel, board.registry, Policy::Fixed);
    rt.annotate(t, Annotation::config(board.bigMode));
    rt.install();
    kernel.start();
    board.sim.runUntil(600.0);
    EXPECT_TRUE(kernel.halted());
    EXPECT_EQ(rt.stats().reconfigurations, 0u);
    EXPECT_FALSE(board.ps->bankActive(board.bigBank));
}

TEST(Runtime, PreburstChargesBurstBanksAheadOfTime)
{
    Board board;
    double big_v_at_proc = -1.0;
    bool big_active_at_proc = true;
    Task *proc = board.app.addTask(
        "proc", 2e-3, 0.0, [&](Kernel &) -> const Task * {
            big_v_at_proc = board.ps->bank(board.bigBank).voltage();
            big_active_at_proc =
                board.ps->bankActive(board.bigBank);
            return nullptr;
        });
    Kernel kernel(*board.device, board.app);
    Runtime rt(kernel, board.registry, Policy::CapyP);
    rt.annotate(proc,
                Annotation::preburst(board.bigMode, board.smallMode));
    rt.install();
    kernel.start();
    board.sim.runUntil(2000.0);
    ASSERT_TRUE(kernel.halted());
    // The burst bank was charged to the penalized ceiling, then
    // deactivated before proc ran.
    double ceiling = board.ps->systemSpec().maxStorageVoltage -
                     board.ps->systemSpec().prechargePenaltyVoltage;
    EXPECT_FALSE(big_active_at_proc);
    EXPECT_NEAR(big_v_at_proc, ceiling, 0.15);
    EXPECT_GE(rt.stats().prechargePhases, 1u);
}

TEST(Runtime, BurstRunsImmediatelyOnPrechargedBanks)
{
    Board board;
    Task *tx = nullptr;
    double proc_done_at = -1.0;
    double tx_started_at = -1.0;
    tx = board.app.addTask("tx", 30e-3, 12e-3,
                           [&](Kernel &k) -> const Task * {
                               tx_started_at = k.now() - 30e-3;
                               return nullptr;
                           });
    Task *proc = board.app.addTask(
        "proc", 2e-3, 0.0, [&](Kernel &k) -> const Task * {
            proc_done_at = k.now();
            return tx;
        });
    board.app.setEntry(proc);
    Kernel kernel(*board.device, board.app);
    Runtime rt(kernel, board.registry, Policy::CapyP);
    rt.annotate(proc,
                Annotation::preburst(board.bigMode, board.smallMode));
    rt.annotate(tx, Annotation::burst(board.bigMode));
    rt.install();
    kernel.start();
    board.sim.runUntil(2000.0);
    ASSERT_TRUE(kernel.halted());
    ASSERT_GE(rt.stats().burstActivations, 1u);
    // The burst started within microseconds of proc committing: no
    // recharge pause on the critical path.
    EXPECT_LT(tx_started_at - proc_done_at, 1e-3);
}

TEST(Runtime, CapyRDegradesBurstToConfig)
{
    Board board;
    Task *tx = board.app.addTask("tx", 30e-3, 12e-3,
                                 [&](Kernel &) -> const Task * {
                                     return nullptr;
                                 });
    Task *proc = board.app.addTask("proc", 2e-3, 0.0,
                                   [&](Kernel &) -> const Task * {
                                       return tx;
                                   });
    board.app.setEntry(proc);
    Kernel kernel(*board.device, board.app);
    Runtime rt(kernel, board.registry, Policy::CapyR);
    rt.annotate(proc,
                Annotation::preburst(board.bigMode, board.smallMode));
    rt.annotate(tx, Annotation::burst(board.bigMode));
    rt.install();
    kernel.start();
    board.sim.runUntil(2000.0);
    ASSERT_TRUE(kernel.halted());
    EXPECT_EQ(rt.stats().burstActivations, 0u);
    EXPECT_EQ(rt.stats().prechargePhases, 0u);
    EXPECT_GE(rt.stats().rechargePauses, 1u)
        << "Capy-R must recharge the big bank on the critical path";
}

TEST(Runtime, PreburstSkipsWhenBanksStillCharged)
{
    Board board;
    int iterations = 0;
    Task *proc = nullptr;
    proc = board.app.addTask("proc", 2e-3, 0.0,
                             [&](Kernel &) -> const Task * {
                                 return ++iterations < 3 ? proc
                                                         : nullptr;
                             });
    Kernel kernel(*board.device, board.app);
    Runtime rt(kernel, board.registry, Policy::CapyP);
    rt.annotate(proc,
                Annotation::preburst(board.bigMode, board.smallMode));
    rt.install();
    kernel.start();
    board.sim.runUntil(3000.0);
    ASSERT_TRUE(kernel.halted());
    // First iteration charges the burst bank; later iterations find
    // it still charged (only leakage since) and skip the pause.
    EXPECT_GE(rt.stats().prechargePhases, 1u);
    EXPECT_GE(rt.stats().prechargeSkips, 1u);
}

TEST(Runtime, BurstRetryRechargesAfterFailure)
{
    // Make the burst workload larger than the pre-charged energy so
    // the first attempt browns out, then verify the runtime falls
    // back to charging fully before the retry.
    Board board;
    int tx_runs = 0;
    Task *tx = board.app.addTask(
        // Long, hungry burst: ~20 s at ~28 mW >> 7.5 mF pre-charge.
        "tx", 20.0, 20e-3, [&](Kernel &) -> const Task * {
            ++tx_runs;
            return nullptr;
        });
    Task *proc = board.app.addTask("proc", 2e-3, 0.0,
                                   [&](Kernel &) -> const Task * {
                                       return tx;
                                   });
    board.app.setEntry(proc);
    Kernel kernel(*board.device, board.app);
    Runtime rt(kernel, board.registry, Policy::CapyP);
    rt.annotate(proc,
                Annotation::preburst(board.bigMode, board.smallMode));
    rt.annotate(tx, Annotation::burst(board.bigMode));
    rt.install();
    kernel.start();
    board.sim.runUntil(3000.0);
    EXPECT_GE(rt.stats().burstActivations, 1u);
    EXPECT_GE(rt.stats().burstRecharges, 1u)
        << "failed burst must recharge on retry";
    EXPECT_EQ(tx_runs, 0) << "20 s at 28 mW exceeds even a full bank; "
                             "the task can never complete";
}

TEST(Runtime, ReconfigurationSurvivesLatchLossWithNormallyOpen)
{
    // Charge time of the big EDLC bank at low harvest power exceeds
    // the latch retention (~180 s), so the switch reverts mid-charge.
    // The runtime must still eventually execute the big-mode task.
    Board board(0.15, SwitchKind::NormallyOpen);  // 0.15 mW: ~250 s
    int runs = 0;
    Task *t = board.app.addTask("tx", 5e-3, 0.0,
                                [&](Kernel &) -> const Task * {
                                    ++runs;
                                    return nullptr;
                                });
    Kernel kernel(*board.device, board.app);
    Runtime rt(kernel, board.registry, Policy::CapyP);
    rt.annotate(t, Annotation::config(board.bigMode));
    rt.install();
    kernel.start();
    board.sim.runUntil(4000.0);
    EXPECT_EQ(runs, 1);
    // The switch reverted at least once during the long charges.
    EXPECT_GE(board.ps->bankSwitch(board.bigBank)->reversions(), 1u);
}

TEST(Provision, MeasureTaskEnergy)
{
    Task t{"t", 0.035, 12e-3, 0.0, nullptr, 0.0};
    McuSpec mcu = msp430fr5969();
    TaskEnergy e = measureTaskEnergy(t, mcu);
    EXPECT_NEAR(e.railPower, mcu.activePower + 12e-3, 1e-12);
    EXPECT_NEAR(e.duration, 0.035 + mcu.bootTime, 1e-12);
    EXPECT_GT(e.railEnergy(), 0.0);
}

TEST(Provision, RequiredCapacitanceScalesWithEnergy)
{
    PowerSystem::Spec spec;
    TaskEnergy small{10e-3, 0.01};
    TaskEnergy large{10e-3, 0.1};
    double c1 = requiredCapacitance(small, spec, parts::x5r100uF());
    double c2 = requiredCapacitance(large, spec, parts::x5r100uF());
    EXPECT_GT(c1, 0.0);
    EXPECT_NEAR(c2 / c1, 10.0, 0.5);
}

TEST(Provision, DeratingInflatesCapacitance)
{
    PowerSystem::Spec spec;
    TaskEnergy demand{10e-3, 0.05};
    double c1 =
        requiredCapacitance(demand, spec, parts::x5r100uF(), 1.0);
    double c2 =
        requiredCapacitance(demand, spec, parts::x5r100uF(), 1.5);
    EXPECT_NEAR(c2 / c1, 1.5, 1e-3);
}

TEST(Provision, TrialFindsWorkingSize)
{
    PowerSystem::Spec spec;
    Task t{"sample", 8e-3, 1e-3, 0.0, nullptr, 0.0};
    ProvisionResult r = provisionByTrial(t, msp430fr5969(), spec,
                                         parts::x5r100uF(), 10e-3, 64);
    ASSERT_TRUE(r.feasible);
    EXPECT_GE(r.unitCount, 1);
    EXPECT_LE(r.unitCount, 64);
    // The analytic bound should land within a small factor.
    TaskEnergy e = measureTaskEnergy(t, msp430fr5969());
    double analytic =
        requiredCapacitance(e, spec, parts::x5r100uF(), 1.0);
    EXPECT_LT(std::abs(analytic - r.capacitance),
              std::max(analytic, r.capacitance));
}

TEST(Provision, TrialReportsInfeasible)
{
    PowerSystem::Spec spec;
    Task t{"huge", 100.0, 50e-3, 0.0, nullptr, 0.0};
    ProvisionResult r = provisionByTrial(t, msp430fr5969(), spec,
                                         parts::x5r100uF(), 10e-3, 4);
    EXPECT_FALSE(r.feasible);
}

TEST(ThresholdAlt, MechanismCostsMatchPaper)
{
    MechanismSpec sw = switchedBankMechanism();
    MechanismSpec vt = vtopThresholdMechanism();
    MechanismSpec vb = vbottomThresholdMechanism();
    // §5.2: threshold circuit occupies twice the area, 1.5x leakage.
    EXPECT_NEAR(vt.areaPerModule / sw.areaPerModule, 2.0, 1e-9);
    EXPECT_NEAR(vt.leakageCurrent / sw.leakageCurrent, 1.5, 1e-9);
    EXPECT_GT(vt.writeEndurance, 0u);
    EXPECT_EQ(sw.writeEndurance, 0u);
    EXPECT_TRUE(sw.smallDefaultBank);
    EXPECT_FALSE(vb.smallDefaultBank);
}

TEST(ThresholdAlt, ControllerWritesEepromPerChange)
{
    PowerSystem::Spec spec;
    PowerSystem ps(spec,
                   std::make_unique<RegulatedSupply>(10e-3, 3.3));
    ps.addBank("fixed", parts::edlc7_5mF());
    NvMemory eeprom("potentiometer", 5);
    VtopController ctl(ps, &eeprom);
    ctl.setThreshold(2.0);
    ctl.setThreshold(2.0);  // unchanged: no write
    ctl.setThreshold(2.8);
    EXPECT_EQ(ctl.eepromWrites(), 2u);
    EXPECT_DOUBLE_EQ(ps.topVoltage(), 2.8);
}
