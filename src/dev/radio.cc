#include "dev/radio.hh"

#include "power/units.hh"
#include "sim/logging.hh"

namespace capy::dev
{

using namespace capy::literals;

RadioSpec
bleRadio()
{
    return RadioSpec{
        .name = "BLE-CC2650",
        .txPower = 20_mW,
        .startupDuration = 0.87_s,
        .baseDuration = 15_ms,
        .perByteDuration = 0.8_ms,
        .lossRate = 0.02,
    };
}

RadioSpec
kicksatRadio()
{
    return RadioSpec{
        .name = "kicksat-downlink",
        .txPower = 75_mW,
        .startupDuration = 100_ms,
        .baseDuration = 250_ms,
        .perByteDuration = 0.0,  // fixed 1-byte frames
        .lossRate = 0.05,
    };
}

double
airTime(const RadioSpec &spec, std::size_t payload_bytes)
{
    return spec.baseDuration +
           spec.perByteDuration * double(payload_bytes);
}

double
txDuration(const RadioSpec &spec, std::size_t payload_bytes)
{
    return spec.startupDuration + airTime(spec, payload_bytes);
}

bool
Radio::attemptDelivery(sim::Rng &rng)
{
    ++numSent;
    if (rng.chance(radioSpec.lossRate)) {
        ++numLost;
        return false;
    }
    return true;
}

} // namespace capy::dev
