# Empty dependencies file for bench_ablation_bypass.
# This may be replaced when dependencies are built.
