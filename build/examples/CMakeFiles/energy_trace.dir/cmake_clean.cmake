file(REMOVE_RECURSE
  "CMakeFiles/energy_trace.dir/energy_trace.cpp.o"
  "CMakeFiles/energy_trace.dir/energy_trace.cpp.o.d"
  "energy_trace"
  "energy_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
