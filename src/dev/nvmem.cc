#include "dev/nvmem.hh"

#include <array>

namespace capy::dev
{

namespace
{

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit)
            c = (c & 1u) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
        table[i] = c;
    }
    return table;
}

} // namespace

std::uint32_t
nvCrc32(const void *data, std::size_t len)
{
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint32_t crc = 0xffffffffu;
    for (std::size_t i = 0; i < len; ++i)
        crc = table[(crc ^ bytes[i]) & 0xffu] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

void
NvMemory::noteWrite(std::uint64_t cell_writes)
{
    ++numWrites;
    if (endurance != 0 && cell_writes > endurance && !wornFlag) {
        wornFlag = true;
        capy_warn("non-volatile device '%s' exceeded write endurance "
                  "(%llu writes to one cell, rated %llu)",
                  deviceName.c_str(),
                  static_cast<unsigned long long>(cell_writes),
                  static_cast<unsigned long long>(endurance));
    }
}

} // namespace capy::dev
