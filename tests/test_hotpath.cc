/**
 * @file
 * Property tests for the single-core hot-path caches: the harvester
 * query cursor, the PowerSystem active-node snapshot / predictive-
 * query memo, and the solver exp memo. Every cache is pure
 * memoization, so each test compares cached answers against a freshly
 * recomputed oracle and requires *exact* equality — a single ulp of
 * drift would break the byte-identical sweep guarantee.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "power/harvester.hh"
#include "power/parts.hh"
#include "power/power_system.hh"
#include "power/solver.hh"
#include "sim/random.hh"

using namespace capy;
using namespace capy::power;

namespace
{

constexpr std::uint64_t kSeed = 0xca51;

std::vector<TraceHarvester::Sample>
randomTrace(sim::Rng &rng, std::size_t n)
{
    std::vector<TraceHarvester::Sample> t;
    t.reserve(n);
    double time = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        t.push_back({time, rng.uniform(0.0, 10e-3)});
        time += rng.uniform(0.1, 30.0);
    }
    return t;
}

/** Step-interpolation oracle, independent of TraceHarvester. */
double
oraclePower(const std::vector<TraceHarvester::Sample> &t, double span,
            bool looping, double at)
{
    double local = at;
    if (looping)
        local = std::fmod(at, span);
    else if (at >= span)
        return 0.0;
    double p = t.front().power;
    for (const auto &s : t) {
        if (s.time <= local)
            p = s.power;
        else
            break;
    }
    return p;
}

PowerSystem::Spec
defaultSpec()
{
    PowerSystem::Spec s;
    s.maxStorageVoltage = 3.0;
    return s;
}

std::unique_ptr<PowerSystem>
makeTraceSystem(sim::Rng &rng)
{
    auto ps = std::make_unique<PowerSystem>(
        defaultSpec(),
        std::make_unique<TraceHarvester>(randomTrace(rng, 24), 3.3));
    ps->addBank("small", parts::x5r100uF().parallel(4));
    ps->addSwitchedBank("big", parts::edlc7_5mF(), SwitchSpec{});
    ps->bankForTest(0).setVoltage(1.5);
    ps->bankForTest(1).setVoltage(1.5);
    return ps;
}

/**
 * Compare every const query against the same query after a full cache
 * drop. Exact equality: the caches must be unobservable.
 */
void
expectQueriesMatchFresh(const PowerSystem &ps)
{
    double targets[4] = {0.5, 1.8, ps.topVoltage(),
                         ps.brownoutVoltageNow()};

    double v_c = ps.storageVoltage();
    double e_c = ps.activeEnergy();
    double c_c = ps.activeCapacitance();
    double r_c = ps.activeEsr();
    bool full_c = ps.isFull();
    sim::Time tf_c = ps.timeToFull();
    sim::Time tb_c = ps.timeToBrownout();
    sim::Time tv_c[4];
    for (int i = 0; i < 4; ++i)
        tv_c[i] = ps.timeToVoltage(targets[i]);

    ps.invalidateCachesForTest();

    EXPECT_EQ(v_c, ps.storageVoltage());
    EXPECT_EQ(e_c, ps.activeEnergy());
    EXPECT_EQ(c_c, ps.activeCapacitance());
    EXPECT_EQ(r_c, ps.activeEsr());
    EXPECT_EQ(full_c, ps.isFull());
    EXPECT_EQ(tf_c, ps.timeToFull());
    EXPECT_EQ(tb_c, ps.timeToBrownout());
    for (int i = 0; i < 4; ++i) {
        ps.invalidateCachesForTest();
        EXPECT_EQ(tv_c[i], ps.timeToVoltage(targets[i]))
            << "target " << targets[i];
    }
}

} // namespace

TEST(HotPath, CursorMatchesOracleOnMonotoneQueries)
{
    sim::Rng rng(kSeed, 1);
    for (int round = 0; round < 4; ++round) {
        bool looping = (round % 2) == 0;
        auto samples = randomTrace(rng, 40);
        TraceHarvester h(samples, 3.3, looping);
        double t = 0.0;
        for (int i = 0; i < 2000; ++i) {
            t += rng.uniform(0.0, 5.0);
            EXPECT_EQ(h.power(t), oraclePower(samples, h.traceSpan(),
                                              looping, t))
                << "t=" << t << " looping=" << looping;
            sim::Time nc = h.nextChange(t);
            if (std::isfinite(nc)) {
                EXPECT_GT(nc, t);
                // The sample index is constant up to the boundary.
                double just_before = std::nextafter(nc, t);
                if (just_before > t) {
                    EXPECT_EQ(h.power(just_before),
                              oraclePower(samples, h.traceSpan(),
                                          looping, just_before));
                }
            }
        }
        // Monotone queries should be served by the cursor, not the
        // binary search.
        EXPECT_GT(h.cursorHits(), h.cursorMisses());
    }
}

TEST(HotPath, CursorMatchesOracleOnRandomJumps)
{
    sim::Rng rng(kSeed, 2);
    for (int round = 0; round < 4; ++round) {
        bool looping = (round % 2) == 0;
        auto samples = randomTrace(rng, 40);
        TraceHarvester h(samples, 3.3, looping);
        double hi = h.traceSpan() * 3.0;
        for (int i = 0; i < 2000; ++i) {
            // Non-monotone: arbitrary forward and backward jumps.
            double t = rng.uniform(0.0, hi);
            EXPECT_EQ(h.power(t), oraclePower(samples, h.traceSpan(),
                                              looping, t))
                << "t=" << t << " looping=" << looping;
        }
    }
}

TEST(HotPath, CursorSurvivesLoopWrap)
{
    sim::Rng rng(kSeed, 3);
    auto samples = randomTrace(rng, 16);
    TraceHarvester h(samples, 3.3, true);
    double span = h.traceSpan();
    // March straight through several loop iterations.
    for (double t = 0.0; t < span * 5.0; t += span / 64.0) {
        EXPECT_EQ(h.power(t), oraclePower(samples, span, true, t))
            << "t=" << t;
    }
}

TEST(HotPath, ExpMemoIsExact)
{
    sim::Rng rng(kSeed, 4);
    ExpCache memo;
    std::vector<std::pair<double, double>> pairs;
    for (int i = 0; i < 32; ++i)
        pairs.emplace_back(rng.uniform(1e-6, 1e4),
                           rng.uniform(1e-3, 1e5));
    // Exactness under eviction pressure: 32 pairs thrash 4 slots.
    for (int round = 0; round < 16; ++round) {
        for (auto [dt, tau] : pairs)
            EXPECT_EQ(memo.expNegRatio(dt, tau), std::exp(-dt / tau));
    }
    // The memo's target access pattern is immediate repetition of one
    // pair (a predictive query re-walked by the advance that follows).
    for (auto [dt, tau] : pairs) {
        std::uint64_t h = memo.hits();
        (void)memo.expNegRatio(dt, tau);
        EXPECT_EQ(memo.expNegRatio(dt, tau), std::exp(-dt / tau));
        EXPECT_GE(memo.hits(), h + 1);
    }
}

TEST(HotPath, CachedQueriesMatchFreshOracleAfterEveryControlCall)
{
    sim::Rng rng(kSeed, 5);
    auto ps = makeTraceSystem(rng);
    expectQueriesMatchFresh(*ps);

    sim::Time now = 0.0;
    for (int step = 0; step < 120; ++step) {
        switch (rng.uniformInt(0, 6)) {
        case 0:
        case 1:
        case 2: {
            now += rng.uniform(0.0, 20.0);
            ps->advanceTo(now);
            break;
        }
        case 3:
            ps->setRailLoad(ps->railEnabled()
                                ? rng.uniform(0.0, 5e-3)
                                : 0.0);
            break;
        case 4:
            ps->setRailEnabled(!ps->railEnabled());
            break;
        case 5:
            if (rng.chance(0.5))
                ps->setChargeCeiling(rng.uniform(1.9, 2.9));
            else
                ps->clearChargeCeiling();
            break;
        case 6:
            if (ps->railEnabled())
                ps->commandSwitch(1, rng.chance(0.5));
            break;
        }
        expectQueriesMatchFresh(*ps);
    }
}

TEST(HotPath, RepeatQueriesHitTheMemo)
{
    sim::Rng rng(kSeed, 6);
    auto ps = makeTraceSystem(rng);
    ps->advanceTo(1.0);
    auto before = ps->cacheStats();
    sim::Time tf = ps->timeToFull();
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(tf, ps->timeToFull());
    auto after = ps->cacheStats();
    EXPECT_GE(after.queryHits, before.queryHits + 50);
    EXPECT_EQ(after.queryMisses, before.queryMisses + 1);
    // advanceTo to the current instant must not invalidate: the
    // device layer calls it before every control read.
    ps->advanceTo(ps->time());
    EXPECT_EQ(tf, ps->timeToFull());
    EXPECT_EQ(ps->cacheStats().queryMisses, after.queryMisses);
}

TEST(HotPath, AdvanceUsesCachedSnapshotBetweenQueries)
{
    sim::Rng rng(kSeed, 7);
    auto ps = makeTraceSystem(rng);
    for (int i = 0; i < 100; ++i) {
        ps->advanceTo(double(i) * 0.5);
        (void)ps->storageVoltage();
        (void)ps->isFull();
    }
    auto stats = ps->cacheStats();
    EXPECT_GT(stats.nodeHits, stats.nodeMisses)
        << "query-heavy usage should mostly hit the node cache";
}
