/**
 * @file
 * Integration tests for the composed PowerSystem: charge/discharge
 * trajectories, predictive queries, switch reconfiguration, latch
 * expiry, pre-charge ceilings, and energy accounting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "power/parts.hh"
#include "power/power_system.hh"
#include "power/solver.hh"
#include "power/units.hh"

using namespace capy;
using namespace capy::power;

namespace
{

PowerSystem::Spec
defaultSpec()
{
    PowerSystem::Spec s;
    s.maxStorageVoltage = 3.0;
    return s;
}

std::unique_ptr<PowerSystem>
makeSystem(double harvest_mw = 10.0)
{
    auto ps = std::make_unique<PowerSystem>(
        defaultSpec(),
        std::make_unique<RegulatedSupply>(harvest_mw * 1e-3, 3.3));
    return ps;
}

} // namespace

TEST(PowerSystem, ChargesToFullAndPins)
{
    auto ps = makeSystem();
    ps->addBank("small", parts::x5r100uF().parallel(4));
    sim::Time t_full = ps->timeToFull();
    ASSERT_TRUE(std::isfinite(t_full));
    EXPECT_GT(t_full, 0.0);
    ps->advanceTo(t_full * 1.01);
    EXPECT_TRUE(ps->isFull());
    EXPECT_NEAR(ps->storageVoltage(), 3.0, 1e-4);
    // Pinned: voltage stays at the top.
    ps->advanceTo(t_full * 1.01 + 100.0);
    EXPECT_NEAR(ps->storageVoltage(), 3.0, 1e-4);
}

TEST(PowerSystem, TimeToFullMatchesActualTrajectory)
{
    auto ps = makeSystem();
    ps->addBank("b", parts::tant330uF());
    sim::Time predicted = ps->timeToFull();
    ASSERT_TRUE(std::isfinite(predicted));
    ps->advanceTo(predicted * 0.99);
    EXPECT_FALSE(ps->isFull());
    ps->advanceTo(predicted + 1e-6);
    EXPECT_TRUE(ps->isFull());
}

TEST(PowerSystem, BypassAcceleratesColdStart)
{
    auto with = makeSystem();
    with->addBank("b", parts::edlc7_5mF());
    auto spec = defaultSpec();
    spec.input.bypassEnabled = false;
    auto without = std::make_unique<PowerSystem>(
        spec, std::make_unique<RegulatedSupply>(10e-3, 3.3));
    without->addBank("b", parts::edlc7_5mF());

    sim::Time t_with = with->timeToFull();
    sim::Time t_without = without->timeToFull();
    ASSERT_TRUE(std::isfinite(t_with));
    ASSERT_TRUE(std::isfinite(t_without));
    // The paper observed at least an order of magnitude improvement.
    EXPECT_GE(t_without / t_with, 5.0);
}

TEST(PowerSystem, DischargeUnderLoadBrownsOut)
{
    auto ps = makeSystem(0.0);  // no harvest
    ps->addBank("b", parts::x5r100uF().parallel(4));
    ps->bankForTest(0).setVoltage(3.0);
    ps->setRailEnabled(true);
    ps->setRailLoad(8e-3);
    sim::Time t_bo = ps->timeToBrownout();
    ASSERT_TRUE(std::isfinite(t_bo));
    EXPECT_GT(t_bo, 0.0);
    ps->advanceTo(t_bo);
    EXPECT_NEAR(ps->storageVoltage(), ps->brownoutVoltageNow(), 1e-3);
}

TEST(PowerSystem, LargerBankRunsLonger)
{
    auto small = makeSystem(0.0);
    small->addBank("b", parts::x5r100uF().parallel(4));
    small->bankForTest(0).setVoltage(3.0);
    small->setRailEnabled(true);
    small->setRailLoad(8e-3);

    auto large = makeSystem(0.0);
    large->addBank("b", parts::edlc7_5mF());
    large->bankForTest(0).setVoltage(3.0);
    large->setRailEnabled(true);
    large->setRailLoad(8e-3);

    EXPECT_GT(large->timeToBrownout(), 5.0 * small->timeToBrownout());
}

TEST(PowerSystem, LargerBankChargesSlower)
{
    auto small = makeSystem();
    small->addBank("b", parts::x5r100uF().parallel(4));
    auto large = makeSystem();
    large->addBank("b", parts::edlc7_5mF());
    EXPECT_GT(large->timeToFull(), 5.0 * small->timeToFull());
}

TEST(PowerSystem, SwitchedBankJoinsAndRedistributes)
{
    auto ps = makeSystem();
    int base = ps->addBank("base", parts::x5r100uF().parallel(4));
    SwitchSpec sw;  // normally open
    int big = ps->addSwitchedBank("big", parts::edlc7_5mF(), sw);
    EXPECT_TRUE(ps->bankActive(base));
    EXPECT_FALSE(ps->bankActive(big));

    ps->bankForTest(base).setVoltage(3.0);
    ps->setRailEnabled(true);
    double c_before = ps->activeCapacitance();
    ps->commandSwitch(big, true);
    EXPECT_TRUE(ps->bankActive(big));
    EXPECT_GT(ps->activeCapacitance(), c_before * 10);
    // Empty big bank pulled the node voltage down (charge conserved).
    EXPECT_LT(ps->storageVoltage(), 0.5);
}

TEST(PowerSystem, OpeningSwitchPreservesBankCharge)
{
    auto ps = makeSystem();
    ps->addBank("base", parts::x5r100uF().parallel(4));
    SwitchSpec sw;
    int big = ps->addSwitchedBank("big", parts::edlc7_5mF(), sw);
    ps->setRailEnabled(true);
    ps->commandSwitch(big, true);
    ps->advanceTo(ps->timeToFull());
    EXPECT_TRUE(ps->isFull());
    double v_big = ps->bank(big).voltage();
    ps->commandSwitch(big, false);
    EXPECT_FALSE(ps->bankActive(big));
    EXPECT_NEAR(ps->bank(big).voltage(), v_big, 1e-9);
    // The disconnected bank decays only slowly via leakage.
    ps->setRailEnabled(false);
    ps->advanceTo(ps->time() + 10.0);
    EXPECT_NEAR(ps->bank(big).voltage(), v_big, 0.05);
}

TEST(PowerSystem, NormallyOpenLatchExpiryDisconnects)
{
    auto ps = makeSystem(0.0);
    ps->addBank("base", parts::x5r100uF().parallel(4));
    SwitchSpec sw;  // NO
    int big = ps->addSwitchedBank("big", parts::edlc7_5mF(), sw);
    ps->bankForTest(0).setVoltage(3.0);
    ps->setRailEnabled(true);
    ps->commandSwitch(big, true);
    ps->setRailEnabled(false);  // power lost; latch starts decaying

    sim::Time expiry = ps->nextLatchExpiry();
    ASSERT_TRUE(std::isfinite(expiry));
    ps->advanceTo(expiry - 1.0);
    EXPECT_TRUE(ps->bankActive(big));
    ps->advanceTo(expiry + 1.0);
    EXPECT_FALSE(ps->bankActive(big)) << "NO switch must revert open";
}

TEST(PowerSystem, NormallyClosedLatchExpiryReconnects)
{
    auto ps = makeSystem(0.0);
    ps->addBank("base", parts::x5r100uF().parallel(4));
    SwitchSpec sw;
    sw.kind = SwitchKind::NormallyClosed;
    int big = ps->addSwitchedBank("big", parts::edlc7_5mF(), sw);
    ps->bankForTest(0).setVoltage(3.0);
    ps->setRailEnabled(true);
    ps->commandSwitch(big, false);
    EXPECT_FALSE(ps->bankActive(big));
    ps->setRailEnabled(false);

    sim::Time expiry = ps->nextLatchExpiry();
    ASSERT_TRUE(std::isfinite(expiry));
    ps->advanceTo(expiry + 1.0);
    EXPECT_TRUE(ps->bankActive(big)) << "NC switch must revert closed";
}

TEST(PowerSystem, LatchHeldWhilePowered)
{
    auto ps = makeSystem();
    ps->addBank("base", parts::x5r100uF().parallel(4));
    int big = ps->addSwitchedBank("big", parts::edlc7_5mF(),
                                  SwitchSpec{});
    ps->setRailEnabled(true);
    ps->commandSwitch(big, true);
    EXPECT_TRUE(std::isinf(ps->nextLatchExpiry()));
    ps->advanceTo(10000.0);
    EXPECT_TRUE(ps->bankActive(big));
}

TEST(PowerSystem, ChargeCeilingCapsPrecharge)
{
    auto ps = makeSystem();
    ps->addBank("b", parts::tant330uF());
    ps->setChargeCeiling(3.0 - 0.3);
    ps->advanceTo(ps->timeToFull() + 1.0);
    EXPECT_NEAR(ps->storageVoltage(), 2.7, 1e-3);
    ps->clearChargeCeiling();
    EXPECT_FALSE(ps->isFull());
    sim::Time more = ps->timeToFull();
    ASSERT_TRUE(std::isfinite(more));
    ps->advanceTo(ps->time() + more + 1.0);
    EXPECT_NEAR(ps->storageVoltage(), 3.0, 1e-3);
}

TEST(PowerSystem, EnergyAccountingBalances)
{
    auto ps = makeSystem();
    ps->addBank("b", parts::edlc7_5mF());
    ps->advanceTo(50.0);
    ps->setRailEnabled(true);
    ps->setRailLoad(5e-3);
    ps->advanceTo(80.0);
    const auto &st = ps->stats();
    double stored = ps->activeEnergy();
    // harvested = stored + drained + leaked (all >= 0)
    EXPECT_GT(st.harvestedIn, 0.0);
    EXPECT_GT(st.drainedOut, 0.0);
    EXPECT_GE(st.leaked, -1e-9);
    EXPECT_NEAR(st.harvestedIn, stored + st.drainedOut + st.leaked,
                st.harvestedIn * 1e-6 + 1e-9);
}

TEST(PowerSystem, VoltageTraceMonotoneTimes)
{
    auto ps = makeSystem();
    ps->addBank("b", parts::x5r100uF().parallel(4));
    sim::TimeSeries trace("v");
    ps->attachVoltageTrace(&trace);
    ps->advanceTo(5.0);
    ps->setRailEnabled(true);
    ps->setRailLoad(8e-3);
    ps->advanceTo(10.0);
    ASSERT_GT(trace.size(), 0u);
    for (size_t i = 1; i < trace.points().size(); ++i)
        EXPECT_GE(trace.points()[i].t, trace.points()[i - 1].t);
}

TEST(PowerSystem, RatedVoltageLimitsTop)
{
    PowerSystem::Spec spec = defaultSpec();
    spec.maxStorageVoltage = 5.0;  // above the EDLC 3.3 V rating
    PowerSystem ps(spec, std::make_unique<RegulatedSupply>(10e-3, 6.0));
    ps.addBank("edlc", parts::cph3225a());
    EXPECT_DOUBLE_EQ(ps.topVoltage(), 3.3);
}

TEST(PowerSystem, NoActiveBanksMeansNoCharge)
{
    auto ps = makeSystem();
    int b = ps->addSwitchedBank("only", parts::edlc7_5mF(),
                                SwitchSpec{});
    EXPECT_FALSE(ps->bankActive(b));
    EXPECT_DOUBLE_EQ(ps->activeCapacitance(), 0.0);
    EXPECT_TRUE(std::isinf(ps->timeToFull()));
    ps->advanceTo(100.0);
    EXPECT_DOUBLE_EQ(ps->bank(b).energy(), 0.0);
}

TEST(PowerSystem, WeakHarvestNeverFills)
{
    // Trickle below leakage: the node can never reach the target.
    auto spec = defaultSpec();
    spec.input.bypassEnabled = false;
    spec.systemQuiescentPower = 50e-6;
    auto ps = std::make_unique<PowerSystem>(
        spec, std::make_unique<RegulatedSupply>(100e-6, 3.3));
    ps->addBank("b", parts::edlc7_5mF());
    EXPECT_TRUE(std::isinf(ps->timeToFull()));
}

TEST(PowerSystem, HigherHarvestChargesFaster)
{
    auto slow = makeSystem(2.0);
    slow->addBank("b", parts::edlc7_5mF());
    auto fast = makeSystem(20.0);
    fast->addBank("b", parts::edlc7_5mF());
    EXPECT_LT(fast->timeToFull(), slow->timeToFull());
    EXPECT_GT(slow->timeToFull() / fast->timeToFull(), 5.0);
}

TEST(PowerSystem, ChargeCompletionsCounted)
{
    auto ps = makeSystem();
    ps->addBank("b", parts::x5r100uF().parallel(4));
    ps->advanceTo(ps->timeToFull() + 1.0);
    EXPECT_EQ(ps->stats().chargeCompletions, 1u);
    // Drain below full, then recharge: second completion.
    ps->setRailEnabled(true);
    ps->setRailLoad(8e-3);
    ps->advanceTo(ps->time() + ps->timeToBrownout());
    ps->setRailLoad(0.0);
    ps->setRailEnabled(false);
    sim::Time t_re = ps->timeToFull();
    ASSERT_TRUE(std::isfinite(t_re));
    ps->advanceTo(ps->time() + t_re + 1.0);
    EXPECT_EQ(ps->stats().chargeCompletions, 2u);
}

TEST(PowerSystem, AreaAndVolumeAccounting)
{
    auto ps = makeSystem();
    ps->addBank("a", parts::x5r100uF().parallel(4));
    ps->addSwitchedBank("b", parts::edlc7_5mF(), SwitchSpec{});
    ps->addSwitchedBank("c", parts::cph3225a(), SwitchSpec{});
    EXPECT_DOUBLE_EQ(ps->totalSwitchArea(), 160.0);
    EXPECT_NEAR(ps->totalCapacitorVolume(), 80.0 + 30.0 + 7.2, 1e-9);
}

TEST(PowerSystem, TimeToVoltageZeroWhenAtTarget)
{
    auto ps = makeSystem();
    ps->addBank("b", parts::x5r100uF().parallel(4));
    ps->bankForTest(0).setVoltage(2.0);
    EXPECT_DOUBLE_EQ(ps->timeToVoltage(2.0), 0.0);
}

TEST(PowerSystem, TimeToVoltageUnreachableAboveTop)
{
    auto ps = makeSystem();
    ps->addBank("b", parts::x5r100uF().parallel(4));
    EXPECT_TRUE(std::isinf(ps->timeToVoltage(3.5)));
}
