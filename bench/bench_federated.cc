/**
 * @file
 * Related-work comparison (§7): UFoP-style federated energy storage
 * vs Capybara's software-reconfigurable banks.
 *
 * Federation also avoids charging a worst-case buffer before useful
 * work, but it allocates energy to *hardware peripherals* at design
 * time. Two consequences reproduced here:
 *
 *  1. Stranded energy: when the harvester dies, energy sitting in the
 *     radio's dedicated capacitor cannot extend sensing. Capybara's
 *     runtime simply activates the big bank for the sensing mode and
 *     keeps sampling several times longer on the same total storage.
 *  2. Cascade starvation ("tragedy of the coulombs"): a sustained
 *     load on a high-priority node can starve every node behind it.
 */

#include <cstdio>
#include <memory>

#include "apps/experiment.hh"
#include "bench_util.hh"
#include "core/runtime.hh"
#include "dev/device.hh"
#include "power/federated.hh"
#include "power/parts.hh"
#include "rt/kernel.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"

using namespace capy;
using namespace capy::bench;
using namespace capy::power;

namespace
{

/** Sensing cost per sample: 10 ms at board power + sensor. */
constexpr double kSamplePower = 22.2e-3;
constexpr double kSampleTime = 10e-3;

/**
 * Blackout endurance, federated: fully charged nodes, harvester dead;
 * sample from the MCU node until it browns out. The radio node's
 * energy is inaccessible by construction.
 */
struct BlackoutResult
{
    std::uint64_t samples = 0;
    double strandedEnergy = 0.0;
    double totalEnergy = 0.0;
};

BlackoutResult
federatedBlackout()
{
    BlackoutResult out;
    FederatedStorage::Spec spec;
    FederatedStorage fs(spec,
                        std::make_unique<RegulatedSupply>(0.0, 3.3));
    int mcu = fs.addNode("mcu", parts::x5r100uF().parallel(4));
    int radio = fs.addNode("radio",
                           parallelCompose({parts::tant1000uF(),
                                            parts::edlc7_5mF()}));
    fs.nodeForTest(mcu).setVoltage(3.0);
    fs.nodeForTest(radio).setVoltage(3.0);
    out.totalEnergy = fs.totalStoredEnergy();

    // Sample loop: pay one sample from the MCU node, stop at its
    // brown-out floor.
    sim::Time t = fs.time();
    for (;;) {
        fs.setNodeLoad(mcu, kSamplePower);
        if (fs.nodeVoltage(mcu) <= fs.nodeBrownoutVoltage(mcu) + 0.01)
            break;
        sim::Time burst = fs.timeToAnyBrownout();
        double span = std::min(burst, kSampleTime);
        fs.advanceTo(t + span);
        t = fs.time();
        if (span < kSampleTime)
            break;  // browned out mid-sample
        ++out.samples;
        fs.setNodeLoad(mcu, 0.0);
    }
    out.strandedEnergy = fs.node(radio).energy();
    return out;
}

/**
 * Blackout endurance, Capybara: same total storage, but the runtime
 * reconfigures the sensing mode to include the big bank once energy
 * is scarce — all stored energy serves the software's current need.
 */
BlackoutResult
capybaraBlackout()
{
    BlackoutResult out;
    sim::Simulator simulator;
    PowerSystem::Spec spec;
    auto ps = std::make_unique<PowerSystem>(
        spec, std::make_unique<RegulatedSupply>(0.0, 3.3));
    int small = ps->addBank("small", parts::x5r100uF().parallel(4));
    int big = ps->addSwitchedBank(
        "big",
        parallelCompose({parts::tant1000uF(), parts::edlc7_5mF()}),
        SwitchSpec{});
    (void)small;
    ps->bankForTest(0).setVoltage(3.0);
    ps->bankForTest(1).setVoltage(3.0);
    PowerSystem *psr = ps.get();
    dev::Device device(simulator, std::move(ps), dev::msp430fr5969(),
                       dev::Device::PowerMode::Intermittent);
    out.totalEnergy = psr->bank(0).energy() + psr->bank(1).energy();

    core::ModeRegistry modes;
    core::ModeId scavenge = modes.define("scavenge", {big});

    rt::App app;
    rt::Task *sample = nullptr;
    sample = app.addTask("sample", kSampleTime,
                         kSamplePower - dev::msp430fr5969().activePower,
                         [&](rt::Kernel &) -> const rt::Task * {
                             ++out.samples;
                             return sample;
                         });
    rt::Kernel kernel(device, app);
    core::Runtime runtime(kernel, modes, core::Policy::CapyP);
    // Energy-scarcity mode: sense with every bank connected.
    runtime.annotate(sample, core::Annotation::config(scavenge));
    runtime.install();
    kernel.start();
    simulator.runUntil(600.0);

    out.strandedEnergy = psr->activeEnergy();
    return out;
}

} // namespace

int
main()
{
    setQuiet(true);
    banner("Section 7 comparison",
           "federated (UFoP-style) vs reconfigurable storage");

    // --- Part 1: blackout endurance / stranded energy ---
    // The two blackout simulations are independent; run them as a
    // batch on the shared sweep pool (index-ordered results keep the
    // table byte-identical at any CAPY_JOBS).
    auto blackouts = capy::apps::sweepPool().map(2, [](std::size_t i) {
        return i == 0 ? federatedBlackout() : capybaraBlackout();
    });
    const BlackoutResult &fed = blackouts[0];
    const BlackoutResult &capy = blackouts[1];

    std::printf("blackout endurance (same total storage, harvester "
                "dead):\n");
    sim::Table t({"system", "samples before death",
                  "stranded energy (mJ)", "of total"});
    t.addRow({"federated (UFoP-style)", sim::cell(fed.samples),
              sim::cell(fed.strandedEnergy * 1e3, 4),
              sim::percentCell(fed.strandedEnergy / fed.totalEnergy)});
    t.addRow({"Capybara (reconfig to all banks)",
              sim::cell(capy.samples),
              sim::cell(capy.strandedEnergy * 1e3, 4),
              sim::percentCell(capy.strandedEnergy /
                               capy.totalEnergy)});
    t.print();

    // --- Part 2: cascade starvation ---
    std::printf("\ncascade starvation (sustained 5 mW load on the "
                "priority node, 1 mW harvest):\n");
    FederatedStorage::Spec fspec;
    FederatedStorage fs(fspec,
                        std::make_unique<RegulatedSupply>(1e-3, 3.3));
    int mcu = fs.addNode("mcu", parts::x5r100uF().parallel(4));
    int radio = fs.addNode("radio", parts::edlc7_5mF());
    fs.setNodeLoad(mcu, 5e-3);
    fs.advanceTo(600.0);
    std::printf("  after 600 s: mcu %.2f V, radio %.2f V\n",
                fs.nodeVoltage(mcu), fs.nodeVoltage(radio));

    shapeCheck(capy.samples > 3 * fed.samples,
               "reconfigurable storage extends sensing through a "
               "blackout by spending the radio bank's energy");
    shapeCheck(fed.strandedEnergy / fed.totalEnergy > 0.8,
               "federation strands the (large) radio capacitor's "
               "energy — it is wired to a peripheral, not a task");
    shapeCheck(capy.strandedEnergy / capy.totalEnergy < 0.2,
               "Capybara leaves only the unextractable residue");
    shapeCheck(fs.nodeVoltage(radio) < 0.3,
               "a loaded high-priority node starves the nodes behind "
               "it in the cascade");
    return finish();
}
