#include "sim/event.hh"

#include <utility>

#include "sim/logging.hh"

namespace capy::sim
{

EventId
EventQueue::schedule(Time when, std::function<void()> fn)
{
    capy_assert(fn != nullptr, "scheduled a null callback");
    EventId id = nextId++;
    heap.push(Record{when, nextSeq++, id, std::move(fn)});
    pendingIds.insert(id);
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    auto it = pendingIds.find(id);
    if (it == pendingIds.end())
        return false;
    pendingIds.erase(it);
    cancelled.insert(id);
    return true;
}

void
EventQueue::skipCancelled() const
{
    while (!heap.empty()) {
        const Record &top = heap.top();
        auto it = cancelled.find(top.id);
        if (it == cancelled.end())
            return;
        cancelled.erase(it);
        heap.pop();
    }
}

bool
EventQueue::empty() const
{
    skipCancelled();
    return heap.empty();
}

Time
EventQueue::nextTime() const
{
    skipCancelled();
    capy_assert(!heap.empty(), "nextTime() on an empty event queue");
    return heap.top().when;
}

Time
EventQueue::runNext()
{
    skipCancelled();
    capy_assert(!heap.empty(), "runNext() on an empty event queue");
    // Move the record out before popping so the callback may schedule
    // further events (which can reallocate the heap) safely.
    Record rec = std::move(const_cast<Record &>(heap.top()));
    heap.pop();
    pendingIds.erase(rec.id);
    ++numExecuted;
    rec.fn();
    return rec.when;
}

} // namespace capy::sim
