/**
 * @file
 * Reproduces Fig. 3: the design space for energy buffer capacity.
 *
 * For each capacitance we measure the longest span of ALU operations
 * the device can execute before a power failure (atomicity, Mops) and
 * the recharge time (reactivity). Configurations left of a task's
 * requirement are infeasible; configurations far right are
 * overprovisioned and not reactive.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hh"
#include "dev/device.hh"
#include "power/parts.hh"
#include "power/power_system.hh"
#include "power/solver.hh"
#include "sim/logging.hh"
#include "sim/runner.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"

using namespace capy;
using namespace capy::bench;

namespace
{

struct Point
{
    double capacitance;
    double mops;       ///< atomicity
    double chargeTime;  ///< recharge time from empty, s
};

/** Measure atomicity by letting the booted device compute until it
 *  browns out. */
Point
measure(double capacitance)
{
    Point p{capacitance, 0.0, 0.0};
    sim::Simulator simulator;
    power::PowerSystem::Spec spec;
    auto ps = std::make_unique<power::PowerSystem>(
        spec, std::make_unique<power::RegulatedSupply>(10e-3, 3.3));
    ps->addBank("b", power::parts::synthesize(power::CapTech::Ceramic,
                                              capacitance));
    dev::Device device(simulator, std::move(ps), dev::msp430fr5969(),
                       dev::Device::PowerMode::Intermittent);

    double boot_at = -1.0;
    double fail_at = -1.0;
    device.setHooks(
        {.onBoot =
             [&] {
                 if (boot_at >= 0.0)
                     return;  // only the first span counts
                 boot_at = simulator.now();
                 device.runWorkload(device.mcu().activePower, 1e9,
                                    [] {});
             },
         .onPowerFail =
             [&] {
                 if (fail_at < 0.0)
                     fail_at = simulator.now();
                 simulator.stop();
             }});
    device.start();
    simulator.runUntil(36000.0);
    if (boot_at < 0.0 || fail_at < 0.0)
        return p;
    p.chargeTime = boot_at;
    p.mops = (fail_at - boot_at) * device.mcu().opRate / 1e6;
    return p;
}

} // namespace

int
main()
{
    setQuiet(true);
    banner("Figure 3", "design space for energy buffer capacity");
    std::printf(
        "atomicity: longest ALU-op span before power failure\n"
        "MCU: MSP430FR5969 model (%.3g nJ/op effective)\n\n",
        dev::msp430fr5969().energyPerOp() * 1e9);

    std::vector<double> caps = {100e-6, 220e-6, 470e-6, 1e-3, 2.2e-3,
                                4.7e-3, 6.8e-3, 10e-3};
    sim::BatchRunner pool;
    std::vector<Point> points =
        pool.mapItems(caps, [](double c) { return measure(c); });

    double max_mops = points.back().mops;
    sim::Table t({"C (uF)", "atomicity (Mops)", "recharge (s)", ""});
    for (const auto &p : points) {
        t.addRow({sim::cell(p.capacitance * 1e6),
                  sim::cell(p.mops, 4), sim::cell(p.chargeTime, 3),
                  bar(p.mops, max_mops, 32)});
    }
    t.print();

    // A hypothetical task needing 1 Mops of atomicity (the paper's
    // dashed line): find the feasibility frontier.
    std::printf("\nhypothetical task requirement: 1 Mops\n");
    for (const auto &p : points) {
        std::printf("  C=%7.0f uF: %s\n", p.capacitance * 1e6,
                    p.mops < 1.0
                        ? "INFEASIBLE (insufficient energy storage)"
                        : p.chargeTime > 3.0 * points.front().chargeTime
                              ? "feasible but NOT REACTIVE "
                                "(overprovisioned)"
                              : "feasible");
    }

    bool monotone = true;
    for (std::size_t i = 1; i < points.size(); ++i)
        monotone &= points[i].mops > points[i - 1].mops;
    shapeCheck(monotone, "atomicity grows with capacitance");
    bool charge_monotone = true;
    for (std::size_t i = 1; i < points.size(); ++i)
        charge_monotone &= points[i].chargeTime > points[i - 1].chargeTime;
    shapeCheck(charge_monotone,
               "recharge time grows with capacitance (reactivity "
               "falls)");
    shapeCheck(points.back().mops >= 2.0 && points.back().mops <= 8.0,
               "atomicity at 10 mF lands in the paper's few-Mops range");
    shapeCheck(points.front().mops < 0.1,
               "atomicity at 100 uF is negligible, as in the paper");
    // Roughly linear: Mops per farad within 2x across the top decade.
    double d1 = points.back().mops / points.back().capacitance;
    double d2 = points[3].mops / points[3].capacitance;
    shapeCheck(d1 / d2 > 0.5 && d1 / d2 < 2.0,
               "atomicity is roughly proportional to capacitance");
    return finish();
}
