/**
 * @file
 * The thermal rig of §6.1.2: a heatsink with a heating element and a
 * Peltier cooler under a bang-bang control loop that keeps the
 * temperature inside a fixed band, and pushes it out of the band at
 * each scheduled event to create an alarm excursion.
 */

#ifndef CAPY_ENV_THERMAL_HH
#define CAPY_ENV_THERMAL_HH

#include "env/events.hh"

namespace capy::env
{

/**
 * Heatsink temperature as a deterministic function of time: a mild
 * in-band wander, interrupted by trapezoidal out-of-band excursions
 * at each scheduled event.
 */
class ThermalRig
{
  public:
    struct Spec
    {
        double baseTemp = 35.0;   ///< steady in-band temperature, C
        double bandLo = 30.0;     ///< alarm band lower edge, C
        double bandHi = 40.0;     ///< alarm band upper edge, C
        double peakTemp = 46.0;   ///< excursion peak, C
        double rampTime = 5.0;    ///< base->peak ramp, s
        double holdTime = 15.0;   ///< time at peak, s
        double wanderAmp = 1.5;   ///< in-band wander amplitude, C
        double wanderPeriod = 47.0;  ///< in-band wander period, s
    };

    ThermalRig(const EventSchedule &schedule, Spec spec);
    explicit ThermalRig(const EventSchedule &schedule)
        : ThermalRig(schedule, Spec{})
    {}

    const EventSchedule &schedule() const { return events; }
    const Spec &spec() const { return rigSpec; }

    /** Heatsink temperature at @p t, C. */
    double temperature(sim::Time t) const;

    /** Whether the temperature is outside the alarm band at @p t. */
    bool outOfRange(sim::Time t) const;

    /** Id of the excursion that makes @p t out-of-range; -1 if the
     *  temperature is in band at @p t. */
    int alarmEventAt(sim::Time t) const;

    /** Total duration of one excursion (ramp + hold + ramp), s. */
    double excursionDuration() const;

    /** Duration for which one excursion stays out of band, s. */
    double outOfRangeDuration() const;

  private:
    /** Excursion contribution (degrees above base) at offset @p dt
     *  into an excursion; 0 outside it. */
    double excursionShape(double dt) const;

    const EventSchedule &events;
    Spec rigSpec;
};

} // namespace capy::env

#endif // CAPY_ENV_THERMAL_HH
