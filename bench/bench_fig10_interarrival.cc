/**
 * @file
 * Reproduces Fig. 10: sensitivity of detection accuracy to the mean
 * event inter-arrival time. Sequences are drawn from Poisson
 * distributions with decreasing means; sparser events are easier for
 * every system, but a fixed-capacity system benefits less because it
 * must recharge its large bank whether or not an event occurred.
 */

#include <cstdio>
#include <vector>

#include "apps/grc.hh"
#include "apps/ta.hh"
#include "bench_util.hh"
#include "env/events.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace capy;
using namespace capy::apps;
using namespace capy::bench;
using namespace capy::core;

namespace
{

constexpr std::uint64_t kSeed = 77;

env::EventSchedule
schedule(double mean_interval, std::size_t count, std::uint64_t salt)
{
    sim::Rng rng(kSeed + salt, 0x42);
    return env::EventSchedule::poisson(rng, mean_interval,
                                       mean_interval * double(count),
                                       60.0);
}

} // namespace

int
main()
{
    setQuiet(true);
    banner("Figure 10",
           "sensitivity of accuracy to event inter-arrival time");

    // --- TempAlarm: means 100..400 s (paper's left panel). ---
    std::printf("TempAlarm (Pwr / Fixed / Capy-R / Capy-P)\n");
    sim::Table ta_table({"mean inter-arrival (s)", "events", "Pwr",
                         "Fixed", "Capy-R", "Capy-P"});
    std::vector<double> ta_means = {100, 150, 200, 250, 300, 400};
    std::vector<std::vector<double>> ta_frac;
    for (double mean : ta_means) {
        auto sched = schedule(mean, 30, std::uint64_t(mean));
        double horizon = mean * 30.0;
        std::vector<double> fr;
        for (Policy p : {Policy::Continuous, Policy::Fixed,
                         Policy::CapyR, Policy::CapyP}) {
            fr.push_back(runTempAlarm(p, sched, kSeed, horizon)
                             .summary.fracCorrect);
        }
        ta_frac.push_back(fr);
        ta_table.addRow({sim::cell(mean, 4),
                         sim::cell(std::uint64_t(sched.size())),
                         sim::percentCell(fr[0]), sim::percentCell(fr[1]),
                         sim::percentCell(fr[2]),
                         sim::percentCell(fr[3])});
    }
    ta_table.print();

    // --- GestureFast: means 10..30 s (paper's right panel). ---
    std::printf("\nGestureFast (Pwr / Fixed / Capy-P)\n");
    sim::Table g_table({"mean inter-arrival (s)", "events", "Pwr",
                        "Fixed", "Capy-P"});
    std::vector<double> g_means = {10, 15, 20, 25, 30};
    std::vector<std::vector<double>> g_frac;
    for (double mean : g_means) {
        auto sched = schedule(mean, 60, std::uint64_t(mean) + 1000);
        double horizon = mean * 60.0;
        std::vector<double> fr;
        for (Policy p : {Policy::Continuous, Policy::Fixed,
                         Policy::CapyP}) {
            fr.push_back(runGestureRemote(GrcVariant::Fast, p, sched,
                                          kSeed, horizon)
                             .summary.fracCorrect);
        }
        g_frac.push_back(fr);
        g_table.addRow({sim::cell(mean, 4),
                        sim::cell(std::uint64_t(sched.size())),
                        sim::percentCell(fr[0]), sim::percentCell(fr[1]),
                        sim::percentCell(fr[2])});
    }
    g_table.print();

    // Shape checks.
    auto avg = [](const std::vector<std::vector<double>> &m, int col,
                  bool top_half) {
        double s = 0.0;
        std::size_t n = m.size() / 2;
        for (std::size_t i = 0; i < n; ++i)
            s += m[top_half ? m.size() - 1 - i : i][std::size_t(col)];
        return s / double(n);
    };

    shapeCheck(avg(ta_frac, 3, true) >= avg(ta_frac, 3, false),
               "TA Capy-P: accuracy does not degrade as events spread "
               "out");
    shapeCheck(avg(ta_frac, 1, true) > avg(ta_frac, 1, false),
               "TA Fixed: sparser events are detected more often");
    // The core Fig. 10 claim: lower event frequency helps Fixed less
    // than Capybara — the Capybara-Fixed gap stays wide at every
    // mean.
    bool gap_everywhere = true;
    for (const auto &row : ta_frac)
        gap_everywhere &= row[3] >= row[1] + 0.15;
    shapeCheck(gap_everywhere,
               "TA: Capy-P maintains a wide accuracy gap over Fixed "
               "across all inter-arrival means");
    bool grc_gap = true;
    for (const auto &row : g_frac)
        grc_gap &= row[2] >= 1.5 * row[1];
    shapeCheck(grc_gap,
               "GRC: Capy-P maintains >=1.5x Fixed accuracy across "
               "all inter-arrival means");
    shapeCheck(avg(ta_frac, 0, true) >= 0.9,
               "continuous power stays near-perfect regardless of "
               "inter-arrival");
    return finish();
}
