# Empty compiler generated dependencies file for provision_tool.
# This may be replaced when dependencies are built.
