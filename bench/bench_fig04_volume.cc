/**
 * @file
 * Reproduces Fig. 4: provisioning a given atomicity requirement by
 * capacitor volume and technology.
 *
 * Stacks of ceramic X5R parts are compared against stacks of the
 * ultra-compact CPH3225A supercapacitor. The supercap's volumetric
 * density dwarfs ceramic, but its ~160-ohm per-part ESR limits the
 * extractable energy (and at one part even the ability to boot under
 * load) — which is why it is only usable at all behind the output
 * booster, and why its atomicity grows sublinearly at small counts.
 */

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "apps/experiment.hh"
#include "bench_util.hh"
#include "dev/device.hh"
#include "power/parts.hh"
#include "power/power_system.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"

using namespace capy;
using namespace capy::bench;

namespace
{

struct Point
{
    double volume;  ///< mm^3
    double mops;
    bool bootable;
};

Point
measure(const power::CapacitorSpec &bank)
{
    Point p{bank.volume, 0.0, false};
    sim::Simulator simulator;
    power::PowerSystem::Spec spec;
    auto ps = std::make_unique<power::PowerSystem>(
        spec, std::make_unique<power::RegulatedSupply>(10e-3, 3.3));
    ps->addBank("b", bank);
    dev::Device device(simulator, std::move(ps), dev::msp430fr5969(),
                       dev::Device::PowerMode::Intermittent);

    double boot_at = -1.0;
    double fail_at = -1.0;
    device.setHooks(
        {.onBoot =
             [&] {
                 if (boot_at >= 0.0)
                     return;
                 boot_at = simulator.now();
                 device.runWorkload(device.mcu().activePower, 1e9,
                                    [] {});
             },
         .onPowerFail =
             [&] {
                 if (fail_at < 0.0)
                     fail_at = simulator.now();
                 simulator.stop();
             }});
    device.start();
    simulator.runUntil(36000.0);
    if (boot_at < 0.0 || fail_at < 0.0)
        return p;
    p.bootable = true;
    p.mops = (fail_at - boot_at) * device.mcu().opRate / 1e6;
    return p;
}

} // namespace

int
main()
{
    setQuiet(true);
    banner("Figure 4",
           "provisioning atomicity by capacitor volume and type");

    auto ceramic = power::parts::x5r100uF();
    auto supercap = power::parts::cph3225a();

    std::printf("parts: %s (%.1f uF, %.0f mm^3, %.3g ohm) vs "
                "%s (%.1f mF, %.1f mm^3, %.0f ohm)\n\n",
                ceramic.part.c_str(), ceramic.capacitance * 1e6,
                ceramic.volume, ceramic.esr, supercap.part.c_str(),
                supercap.capacitance * 1e3, supercap.volume,
                supercap.esr);

    sim::Table t({"tech", "parts", "volume (mm^3)", "C (mF)",
                  "ESR (ohm)", "atomicity (Mops)", "note"});
    // The tech x stack-size grid of boot-to-brownout simulations fans
    // out as one parallel batch; rows are emitted from the ordered
    // results, so the table is byte-identical at any CAPY_JOBS.
    const std::vector<int> cer_counts = {1, 2, 4, 8, 16, 32};
    const std::vector<int> sup_counts = {1, 2, 3, 4, 5};
    std::vector<power::CapacitorSpec> banks;
    for (int n : cer_counts)
        banks.push_back(ceramic.parallel(std::size_t(n)));
    for (int n : sup_counts)
        banks.push_back(supercap.parallel(std::size_t(n)));
    auto points = apps::sweepPool().mapItems(banks, measure);

    std::vector<Point> cer, sup;
    for (std::size_t i = 0; i < cer_counts.size(); ++i) {
        const Point &p = points[i];
        cer.push_back(p);
        t.addRow({"ceramic", sim::cell(cer_counts[i]),
                  sim::cell(p.volume, 4),
                  sim::cell(banks[i].capacitance * 1e3, 3),
                  sim::cell(banks[i].esr, 3), sim::cell(p.mops, 4),
                  p.bootable ? "" : "unbootable"});
    }
    for (std::size_t i = 0; i < sup_counts.size(); ++i) {
        std::size_t k = cer_counts.size() + i;
        const Point &p = points[k];
        sup.push_back(p);
        t.addRow({"EDLC", sim::cell(sup_counts[i]),
                  sim::cell(p.volume, 4),
                  sim::cell(banks[k].capacitance * 1e3, 3),
                  sim::cell(banks[k].esr, 3), sim::cell(p.mops, 4),
                  p.bootable ? "" : "unbootable (ESR droop)"});
    }
    t.print();

    // Observation 1: for comparable volume, the supercap stores far
    // more atomicity than ceramic (low ceramic density).
    // 4x CPH (28.8 mm^3) vs 32x ceramic (640 mm^3): supercap still
    // wins at <1/20 the volume.
    shapeCheck(sup[3].mops > cer.back().mops,
               "a smaller volume of supercapacitors provides more "
               "atomicity than a larger volume of ceramics");
    // Observation 2: diminishing returns per volume for the EDLC as
    // ESR stops dominating: Mops per mm^3 at small stacks exceeds the
    // gain expected from pure capacity scaling only once the droop
    // floor fades; check sublinearity at the top end.
    double per_vol_small = sup[1].mops / sup[1].volume;
    double per_vol_large = sup.back().mops / sup.back().volume;
    shapeCheck(std::abs(per_vol_large / per_vol_small - 1.0) < 0.6,
               "EDLC atomicity per volume approaches a constant "
               "(capacity-limited) once parallelism tames the ESR");
    // Observation 3 (from §2.2.2): very high per-part ESR strands
    // energy: the single-part EDLC extracts a smaller fraction of its
    // stored energy than the 5-part stack.
    double frac1 = sup[0].mops / (sup[0].volume);
    double frac5 = sup[4].mops / (sup[4].volume);
    shapeCheck(frac1 < frac5,
               "the single high-ESR supercap extracts less per volume "
               "than a parallel stack (droop floor)");
    return finish();
}
