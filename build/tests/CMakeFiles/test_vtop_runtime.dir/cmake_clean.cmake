file(REMOVE_RECURSE
  "CMakeFiles/test_vtop_runtime.dir/test_vtop_runtime.cc.o"
  "CMakeFiles/test_vtop_runtime.dir/test_vtop_runtime.cc.o.d"
  "test_vtop_runtime"
  "test_vtop_runtime.pdb"
  "test_vtop_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vtop_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
