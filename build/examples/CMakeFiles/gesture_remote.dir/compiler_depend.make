# Empty compiler generated dependencies file for gesture_remote.
# This may be replaced when dependencies are built.
