/**
 * @file
 * Time-series and interval tracing. Used to reproduce the paper's
 * voltage-vs-time plots (Fig. 2) and the operating/charging span
 * breakdowns.
 */

#ifndef CAPY_SIM_TRACE_HH
#define CAPY_SIM_TRACE_HH

#include <string>
#include <vector>

#include "sim/event.hh"

namespace capy::sim
{

/** One (time, value) sample. */
struct TracePoint
{
    Time t;
    double value;
};

/**
 * A named scalar-valued time series with monotonically non-decreasing
 * timestamps. Retention is unbounded by default; long-running
 * recorders can bound it with capPoints(), which decimates the
 * interior of the series (the first and most recent samples are
 * always kept exactly).
 */
class TimeSeries
{
  public:
    explicit TimeSeries(std::string series_name)
        : seriesName(std::move(series_name))
    {}

    /** Append a sample; @p t must not precede the previous sample. */
    void record(Time t, double value);

    /**
     * Bound retention to @p max_points (>= 4; 0 restores unbounded).
     * When an append exceeds the bound, every other interior sample
     * is dropped, so memory stays O(cap) while at() degrades to
     * interpolation over a ~2x coarser grid. Decimation is a pure
     * function of the record() sequence — no clocks, no randomness —
     * so capped series stay deterministic across thread counts.
     */
    void capPoints(std::size_t max_points);

    /** Retention bound; 0 = unbounded (the default). */
    std::size_t pointCap() const { return maxPoints; }

    const std::string &name() const { return seriesName; }
    const std::vector<TracePoint> &points() const { return data; }
    bool empty() const { return data.empty(); }
    std::size_t size() const { return data.size(); }

    /** Last recorded value; series must be non-empty. */
    double lastValue() const;

    /**
     * Linear interpolation of the series at time @p t (clamped to the
     * recorded range). Series must be non-empty.
     */
    double at(Time t) const;

    /** Render as two-column CSV ("time,value" with a header). */
    std::string csv() const;

  private:
    /** Halve the interior when the cap is exceeded. */
    void decimateIfNeeded();

    std::string seriesName;
    std::vector<TracePoint> data;
    std::size_t maxPoints = 0;  ///< 0 = unbounded
};

/** A labelled half-open time interval [start, end). */
struct Span
{
    Time start;
    Time end;
    std::string label;

    Time duration() const { return end - start; }
};

/**
 * Recorder for labelled activity intervals (e.g. "charging",
 * "operating"). Spans are opened and later closed; nesting is not
 * allowed — a span must be closed before the next opens.
 */
class SpanTrace
{
  public:
    /** Open a span at @p t with @p label. @pre no span is open. */
    void open(Time t, std::string label);

    /** Close the open span at @p t. @pre a span is open. */
    void close(Time t);

    /** Whether a span is currently open. */
    bool isOpen() const { return openActive; }

    /** Label of the currently open span. @pre isOpen(). */
    const std::string &openLabel() const;

    /** Start time of the currently open span. @pre isOpen(). */
    Time openStart() const;

    const std::vector<Span> &spans() const { return completed; }

    /** Total duration across spans whose label equals @p label. */
    Time totalFor(const std::string &label) const;

    /** Number of spans whose label equals @p label. */
    std::size_t countFor(const std::string &label) const;

  private:
    std::vector<Span> completed;
    bool openActive = false;
    Time openStart_ = 0.0;
    std::string openLabelText;
};

} // namespace capy::sim

#endif // CAPY_SIM_TRACE_HH
