# Empty compiler generated dependencies file for bench_federated.
# This may be replaced when dependencies are built.
