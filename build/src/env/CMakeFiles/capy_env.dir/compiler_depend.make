# Empty compiler generated dependencies file for capy_env.
# This may be replaced when dependencies are built.
