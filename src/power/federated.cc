#include "power/federated.hh"

#include <algorithm>
#include <cmath>

#include "power/solver.hh"
#include "sim/logging.hh"

namespace capy::power
{

namespace
{

constexpr double kVTol = 1e-6;
/** Fullness tolerance: crossing-time landings sit within FP error of
 *  the target; treat anything within 0.1 mV as full. */
constexpr double kVFullTol = 1e-4;
constexpr double kTimeTol = 1e-12;

} // namespace

FederatedStorage::FederatedStorage(Spec spec_in,
                                   std::unique_ptr<Harvester> h)
    : spec(spec_in), harvester(std::move(h))
{
    capy_assert(harvester != nullptr, "federated storage needs a "
                                      "harvester");
}

int
FederatedStorage::addNode(const std::string &name,
                          const CapacitorSpec &cap)
{
    nodes.push_back(NodeState{CapacitorBank(name, cap), 0.0});
    return static_cast<int>(nodes.size()) - 1;
}

const CapacitorBank &
FederatedStorage::node(int idx) const
{
    capy_assert(idx >= 0 && idx < numNodes(), "node index %d", idx);
    return nodes[static_cast<std::size_t>(idx)].bank;
}

CapacitorBank &
FederatedStorage::nodeForTest(int idx)
{
    capy_assert(idx >= 0 && idx < numNodes(), "node index %d", idx);
    return nodes[static_cast<std::size_t>(idx)].bank;
}

void
FederatedStorage::setNodeLoad(int idx, double watts)
{
    capy_assert(idx >= 0 && idx < numNodes(), "node index %d", idx);
    capy_assert(watts >= 0.0, "negative load");
    advanceTo(lastTime);
    nodes[static_cast<std::size_t>(idx)].load = watts;
}

double
FederatedStorage::nodeVoltage(int idx) const
{
    return node(idx).voltage();
}

bool
FederatedStorage::nodeFull(int idx) const
{
    double top = std::min(spec.maxStorageVoltage,
                          node(idx).spec().ratedVoltage);
    return node(idx).voltage() >= top - kVFullTol;
}

bool
FederatedStorage::allFull() const
{
    for (int i = 0; i < numNodes(); ++i)
        if (!nodeFull(i))
            return false;
    return true;
}

int
FederatedStorage::chargingNode() const
{
    for (int i = 0; i < numNodes(); ++i)
        if (!nodeFull(i))
            return i;
    return -1;
}

double
FederatedStorage::nodeBrownoutVoltage(int idx) const
{
    const NodeState &ns = nodes[static_cast<std::size_t>(idx)];
    return brownoutVoltage(spec.output, ns.load, ns.bank.esr());
}

double
FederatedStorage::totalStoredEnergy() const
{
    double e = 0.0;
    for (const auto &ns : nodes)
        e += ns.bank.energy();
    return e;
}

double
FederatedStorage::nodePower(std::size_t idx, double v, sim::Time t,
                            bool charging_here) const
{
    const NodeState &ns = nodes[idx];
    double pd = ns.load > 0.0 ? storageDrawPower(spec.output, ns.load)
                              : 0.0;
    pd += spec.nodeQuiescentPower;
    double pc = 0.0;
    if (charging_here) {
        pc = inputChargePower(spec.input, harvester->power(t),
                              harvester->voltage(t), v);
    }
    return pc - pd;
}

double
FederatedStorage::stepOnce(sim::Time t, double dt)
{
    // Conditions are constant except for the charging node's voltage
    // phases; bound the step by the charging node's boundaries.
    int ci = chargingNode();
    double step = dt;

    if (ci >= 0) {
        const NodeState &cn = nodes[static_cast<std::size_t>(ci)];
        double v = cn.bank.voltage();
        double vtop = std::min(spec.maxStorageVoltage,
                               cn.bank.spec().ratedVoltage);
        double p = nodePower(std::size_t(ci), v, t, true);
        Phase ph{p, cn.bank.capacitance(),
                 cn.bank.spec().leakageResistance()};
        // Boundaries: full target plus the input-converter voltage
        // regions (cold start, bypass cutoff).
        double vh = harvester->voltage(t);
        double boundaries[3] = {vtop, spec.input.coldStartVoltage,
                                vh - spec.input.bypassDiodeDrop};
        for (double b : boundaries) {
            if (b <= v + kVTol || b > vtop)
                continue;
            double tb = timeToEnergy(cn.bank.energy(),
                                     cn.bank.energyAtVoltage(b), ph);
            if (std::isfinite(tb) && tb > kTimeTol)
                step = std::min(step, tb);
        }
    }

    // Advance every node by `step`.
    bool harvesting = harvester->power(t) > 0.0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        NodeState &ns = nodes[i];
        double v = ns.bank.voltage();
        double vtop = std::min(spec.maxStorageVoltage,
                               ns.bank.spec().ratedVoltage);
        double e_full = ns.bank.energyAtVoltage(vtop);
        if (harvesting && ns.load <= 0.0 && int(i) != ci &&
            v >= vtop - kVFullTol) {
            // Maintenance top-up: the cascade comparator reconnects
            // momentarily whenever a full node dips, covering its
            // leakage. Hold it at the top.
            ns.bank.setEnergy(e_full);
            continue;
        }
        double p = nodePower(i, v, t, int(i) == ci);
        Phase ph{p, ns.bank.capacitance(),
                 ns.bank.spec().leakageResistance()};
        double e = advanceEnergy(ns.bank.energy(), ph, step);
        if (e > e_full)
            e = e_full;  // keeper diode / regulator pins at the top
        ns.bank.setEnergy(e);
    }
    return step;
}

void
FederatedStorage::advanceTo(sim::Time t)
{
    capy_assert(t >= lastTime, "advanceTo(%g) behind clock %g", t,
                lastTime);
    int guard = 0;
    while (t - lastTime > kTimeTol) {
        capy_assert(++guard < 100000, "federated advance stalled");
        double dt = t - lastTime;
        sim::Time hb = harvester->nextChange(lastTime);
        if (std::isfinite(hb) && hb - lastTime < dt)
            dt = std::max(kTimeTol, hb - lastTime);
        double consumed = stepOnce(lastTime, dt);
        lastTime += consumed;
    }
    lastTime = t;
}

sim::Time
FederatedStorage::timeToNodeFull(int idx) const
{
    capy_assert(idx >= 0 && idx < numNodes(), "node index %d", idx);
    // Peek on a scratch copy.
    FederatedStorage *self = const_cast<FederatedStorage *>(this);
    std::vector<NodeState> saved = nodes;
    sim::Time saved_time = lastTime;

    sim::Time total = 0.0;
    bool reached = false;
    for (int iter = 0; iter < 100000; ++iter) {
        if (self->nodeFull(idx)) {
            reached = true;
            break;
        }
        double dt = 10.0;
        sim::Time hb = harvester->nextChange(self->lastTime);
        if (std::isfinite(hb) && hb - self->lastTime < dt)
            dt = std::max(kTimeTol, hb - self->lastTime);
        double consumed = self->stepOnce(self->lastTime, dt);
        self->lastTime += consumed;
        total += consumed;
        if (total > 1e7)
            break;
    }
    self->nodes = std::move(saved);
    self->lastTime = saved_time;
    return reached ? total : kNever;
}

sim::Time
FederatedStorage::timeToAnyBrownout() const
{
    // Analytic for each loaded node under current conditions, taking
    // the cascade's charging assignment as fixed (conservative).
    int ci = chargingNode();
    sim::Time earliest = kNever;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const NodeState &ns = nodes[i];
        if (ns.load <= 0.0)
            continue;
        double v_bo = nodeBrownoutVoltage(int(i));
        double v = ns.bank.voltage();
        if (v <= v_bo + kVTol)
            return 0.0;
        double p = nodePower(i, v, lastTime, int(i) == ci);
        Phase ph{p, ns.bank.capacitance(),
                 ns.bank.spec().leakageResistance()};
        double tb = timeToEnergy(ns.bank.energy(),
                                 ns.bank.energyAtVoltage(v_bo), ph);
        earliest = std::min(earliest, tb);
    }
    return earliest;
}

} // namespace capy::power
