/**
 * @file
 * Tests for the automatic bank allocator (the paper's §8 future work):
 * volume-minimizing part selection, base-bank ordering, feasibility
 * detection, and simulation-based verification of produced plans.
 */

#include <gtest/gtest.h>

#include "core/allocate.hh"
#include "dev/mcu.hh"
#include "dev/radio.hh"
#include "power/parts.hh"
#include "sim/logging.hh"

using namespace capy;
using namespace capy::core;
using namespace capy::power;

namespace
{

std::vector<CapacitorSpec>
fullCatalog()
{
    return parts::all();
}

ModeRequirement
sampleMode()
{
    // ~10 ms sensing at board power.
    return ModeRequirement{
        .name = "sample",
        .demand = TaskEnergy{23e-3, 15e-3},
        .reactive = true,
    };
}

ModeRequirement
radioMode()
{
    // A BLE session at 20 mW.
    return ModeRequirement{
        .name = "radio",
        .demand = TaskEnergy{20e-3, 0.91},
        .reactive = false,
    };
}

} // namespace

TEST(Allocate, TwoModePlanIsFeasibleAndOrdered)
{
    PowerSystem::Spec spec;
    auto plan = allocateBanks({radioMode(), sampleMode()}, spec,
                              fullCatalog(), 8e-3);
    ASSERT_TRUE(plan.feasible);
    ASSERT_EQ(plan.banks.size(), 2u);
    // The sample mode (least demanding) is the hard-wired base, no
    // matter the input order.
    EXPECT_FALSE(plan.banks[0].hardwired) << "radio is switched";
    EXPECT_TRUE(plan.banks[1].hardwired) << "sample is the base";
    EXPECT_GT(plan.banks[0].unitCount, 0);
    EXPECT_GT(plan.banks[1].unitCount, 0);
    EXPECT_GT(plan.totalVolume, 0.0);
    EXPECT_DOUBLE_EQ(plan.totalSwitchArea, SwitchSpec{}.area);
}

TEST(Allocate, BaseCoversItsMode)
{
    PowerSystem::Spec spec;
    auto plan = allocateBanks({sampleMode(), radioMode()}, spec,
                              fullCatalog(), 8e-3);
    ASSERT_TRUE(plan.feasible);
    // The base bank's active capacitance suffices for the sample
    // task: ~0.35 mJ needs well under a millifarad.
    EXPECT_LT(plan.activeCapacitance(0),
              plan.activeCapacitance(1));
}

TEST(Allocate, RadioModeGetsLargerCapacity)
{
    PowerSystem::Spec spec;
    auto plan = allocateBanks({sampleMode(), radioMode()}, spec,
                              fullCatalog(), 8e-3);
    ASSERT_TRUE(plan.feasible);
    // ~18 mJ of rail demand requires millifarads.
    EXPECT_GT(plan.activeCapacitance(1), 2e-3);
}

TEST(Allocate, PrefersDenseEdlcForBigModes)
{
    PowerSystem::Spec spec;
    auto plan = allocateBanks({sampleMode(), radioMode()}, spec,
                              fullCatalog(), 8e-3);
    ASSERT_TRUE(plan.feasible);
    EXPECT_EQ(plan.banks[1].unit.tech, CapTech::Edlc)
        << "volume-minimizing choice for tens of mJ is an EDLC";
}

TEST(Allocate, CeramicOnlyCatalogStillWorksButBulkier)
{
    PowerSystem::Spec spec;
    std::vector<CapacitorSpec> ceramic{parts::x5r100uF()};
    auto full = allocateBanks({sampleMode(), radioMode()}, spec,
                              fullCatalog(), 8e-3);
    auto cer = allocateBanks({sampleMode(), radioMode()}, spec,
                             ceramic, 8e-3);
    ASSERT_TRUE(full.feasible);
    ASSERT_TRUE(cer.feasible);
    EXPECT_GT(cer.totalVolume, 3.0 * full.totalVolume)
        << "ceramic-only storage pays a large volume penalty (Fig. 4)";
}

TEST(Allocate, InfeasibleDemandReported)
{
    PowerSystem::Spec spec;
    ModeRequirement monster{
        .name = "monster",
        .demand = TaskEnergy{50e-3, 3600.0},  // 180 J: hopeless
        .reactive = false,
    };
    auto plan = allocateBanks({monster}, spec,
                              {parts::x5r100uF()}, 8e-3);
    EXPECT_FALSE(plan.feasible);
    EXPECT_TRUE(plan.banks.empty());
}

TEST(Allocate, DeratingGrowsTheBanks)
{
    PowerSystem::Spec spec;
    auto lean = allocateBanks({sampleMode(), radioMode()}, spec,
                              fullCatalog(), 8e-3, 1.0);
    auto fat = allocateBanks({sampleMode(), radioMode()}, spec,
                             fullCatalog(), 8e-3, 2.0);
    ASSERT_TRUE(lean.feasible && fat.feasible);
    EXPECT_GE(fat.activeCapacitance(1), lean.activeCapacitance(1));
}

TEST(Allocate, ChargeTimesOrderedByCapacity)
{
    PowerSystem::Spec spec;
    auto plan = allocateBanks({sampleMode(), radioMode()}, spec,
                              fullCatalog(), 8e-3);
    ASSERT_TRUE(plan.feasible);
    EXPECT_LT(plan.banks[0].chargeTime, plan.banks[1].chargeTime)
        << "the reactive base mode recharges faster than the radio "
           "mode";
}

TEST(Allocate, VerificationPassesForProducedPlan)
{
    setQuiet(true);
    PowerSystem::Spec spec;
    std::vector<ModeRequirement> modes{sampleMode(), radioMode()};
    auto plan = allocateBanks(modes, spec, fullCatalog(), 8e-3);
    ASSERT_TRUE(plan.feasible);
    EXPECT_TRUE(verifyAllocation(plan, modes, spec, 8e-3));
    setQuiet(false);
}

TEST(Allocate, VerificationCatchesUndersizedPlan)
{
    setQuiet(true);
    PowerSystem::Spec spec;
    std::vector<ModeRequirement> modes{sampleMode(), radioMode()};
    auto plan = allocateBanks(modes, spec, fullCatalog(), 8e-3);
    ASSERT_TRUE(plan.feasible);
    // Sabotage: shrink every bank to a single 100 uF tantalum — far
    // too little for the ~18 mJ radio session.
    for (auto &b : plan.banks) {
        b.unit = parts::tant100uF();
        b.unitCount = 1;
        b.composition = parts::tant100uF();
    }
    EXPECT_FALSE(verifyAllocation(plan, modes, spec, 8e-3));
    setQuiet(false);
}

TEST(Allocate, ThreeModeChainAllocates)
{
    PowerSystem::Spec spec;
    ModeRequirement mid{
        .name = "gesture",
        .demand = TaskEnergy{25e-3, 0.27},
        .reactive = true,
    };
    std::vector<ModeRequirement> modes{radioMode(), mid, sampleMode()};
    auto plan = allocateBanks(modes, spec, fullCatalog(), 8e-3);
    ASSERT_TRUE(plan.feasible);
    ASSERT_EQ(plan.banks.size(), 3u);
    int hardwired = 0;
    for (const auto &b : plan.banks)
        hardwired += b.hardwired;
    EXPECT_EQ(hardwired, 1);
    // Demands ordered: sample < gesture < radio active capacitance.
    EXPECT_LT(plan.activeCapacitance(2), plan.activeCapacitance(1));
    EXPECT_LE(plan.activeCapacitance(1), plan.activeCapacitance(0));
}

TEST(Allocate, ModeCoveredByBaseNeedsNoBank)
{
    PowerSystem::Spec spec;
    // Two nearly identical tiny modes: the second should ride on the
    // base bank with no dedicated capacitors.
    ModeRequirement a = sampleMode();
    ModeRequirement b = sampleMode();
    b.name = "sample2";
    b.demand.duration *= 0.5;
    auto plan = allocateBanks({a, b}, spec, fullCatalog(), 8e-3);
    ASSERT_TRUE(plan.feasible);
    const BankPlan &second =
        plan.banks[0].hardwired ? plan.banks[1] : plan.banks[0];
    EXPECT_EQ(second.unitCount, 0)
        << "a mode covered by the base gets no dedicated bank";
    EXPECT_DOUBLE_EQ(plan.totalSwitchArea, 0.0);
}
