#include "core/allocate.hh"

#include <algorithm>
#include <cmath>
#include <memory>

#include "dev/device.hh"
#include "dev/mcu.hh"
#include "power/booster.hh"
#include "power/solver.hh"
#include "rt/kernel.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

namespace capy::core
{

namespace
{

/**
 * Extractable rail energy of a composite bank between the charge
 * target and the ESR-dependent brown-out floor.
 */
double
usableRailEnergy(const power::CapacitorSpec &bank,
                 const power::PowerSystem::Spec &spec, double rail_power)
{
    double vtop = std::min(spec.maxStorageVoltage, bank.ratedVoltage);
    double v_bo =
        power::brownoutVoltage(spec.output, rail_power, bank.esr);
    if (v_bo >= vtop)
        return 0.0;
    double stored = 0.5 * bank.capacitance * (vtop * vtop - v_bo * v_bo);
    // Rail-side: subtract converter loss and quiescent share.
    double p_in = power::storageDrawPower(spec.output, rail_power);
    return stored * rail_power / p_in;
}

/** Boot feasibility: can the composite start the output booster
 *  under the MCU's boot load? */
bool
bootable(const power::CapacitorSpec &bank,
         const power::PowerSystem::Spec &spec)
{
    double vtop = std::min(spec.maxStorageVoltage, bank.ratedVoltage);
    double v_start = power::startVoltage(
        spec.output, dev::msp430fr5969().activePower, bank.esr);
    return v_start < vtop;
}

/**
 * Smallest parallel count of @p unit such that @p base + the stack
 * covers @p demand. Returns 0 when the unit alone can never work.
 */
int
unitsFor(const power::CapacitorSpec &unit,
         const power::CapacitorSpec *base, const TaskEnergy &demand,
         const power::PowerSystem::Spec &spec, double derating,
         int max_units = 256)
{
    for (int n = 0; n <= max_units; ++n) {
        if (n == 0 && base == nullptr)
            continue;
        std::vector<power::CapacitorSpec> parts;
        if (base)
            parts.push_back(*base);
        if (n > 0)
            parts.push_back(unit.parallel(std::size_t(n)));
        auto comp = power::parallelCompose(parts);
        if (!bootable(comp, spec))
            continue;
        double usable = usableRailEnergy(comp, spec, demand.railPower);
        if (usable >= derating * demand.railEnergy())
            return n;
    }
    return -1;
}

/** Analytic charge-time estimate for a composite from empty. */
double
chargeEstimate(const power::CapacitorSpec &bank,
               const power::PowerSystem::Spec &spec,
               double harvest_power)
{
    double vtop = std::min(spec.maxStorageVoltage, bank.ratedVoltage);
    double energy = 0.5 * bank.capacitance * vtop * vtop;
    double p = spec.input.efficiency * harvest_power;
    return p > 0.0 ? energy / p : power::kNever;
}

} // namespace

double
AllocationPlan::activeCapacitance(std::size_t i) const
{
    capy_assert(i < banks.size(), "mode index %zu", i);
    const BankPlan *base = nullptr;
    for (const auto &b : banks)
        if (b.hardwired)
            base = &b;
    double c = base ? base->composition.capacitance : 0.0;
    if (!banks[i].hardwired)
        c += banks[i].composition.capacitance;
    return c;
}

AllocationPlan
allocateBanks(const std::vector<ModeRequirement> &modes,
              const power::PowerSystem::Spec &spec,
              const std::vector<power::CapacitorSpec> &catalog,
              double harvest_power, double derating)
{
    capy_assert(!modes.empty(), "no modes to allocate");
    capy_assert(!catalog.empty(), "empty part catalog");
    capy_assert(derating >= 1.0, "derating %g < 1", derating);

    AllocationPlan plan;

    // Order modes by demand; the least demanding becomes the base.
    std::vector<std::size_t> order(modes.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return modes[a].demand.railEnergy() <
                         modes[b].demand.railEnergy();
              });

    const power::CapacitorSpec *base = nullptr;
    power::CapacitorSpec base_comp;

    for (std::size_t k = 0; k < order.size(); ++k) {
        const ModeRequirement &mode = modes[order[k]];
        BankPlan bank;
        bank.modeName = mode.name;
        bank.hardwired = (k == 0);

        // Pick the min-volume stack across the catalog that is both
        // energy-feasible and within the mode's recharge-time bound.
        double best_volume = -1.0;
        for (const auto &unit : catalog) {
            int n = unitsFor(unit, k == 0 ? nullptr : base,
                             mode.demand, spec, derating);
            if (n < 0)
                continue;
            {
                // Recharge-time constraint on the active composite.
                std::vector<power::CapacitorSpec> probe;
                if (k > 0 && base)
                    probe.push_back(*base);
                if (n > 0)
                    probe.push_back(unit.parallel(std::size_t(n)));
                if (!probe.empty()) {
                    double tc = chargeEstimate(
                        power::parallelCompose(probe), spec,
                        harvest_power);
                    if (tc > mode.maxChargeTime)
                        continue;
                }
            }
            if (k > 0 && n == 0) {
                // The base alone already covers this mode: no
                // dedicated bank needed; an empty plan entry records
                // that.
                bank.unit = unit;
                bank.unitCount = 0;
                best_volume = 0.0;
                break;
            }
            double vol = unit.volume * n;
            if (best_volume < 0.0 || vol < best_volume) {
                best_volume = vol;
                bank.unit = unit;
                bank.unitCount = n;
            }
        }
        if (best_volume < 0.0)
            return AllocationPlan{};  // infeasible

        std::vector<power::CapacitorSpec> parts;
        if (bank.unitCount > 0) {
            bank.composition =
                bank.unit.parallel(std::size_t(bank.unitCount));
            parts.push_back(bank.composition);
        }
        if (k > 0 && base)
            parts.push_back(*base);
        auto active = parts.empty()
                          ? base_comp
                          : power::parallelCompose(parts);
        bank.chargeTime = chargeEstimate(active, spec, harvest_power);

        if (k == 0) {
            base_comp = bank.composition;
            base = &base_comp;
        }
        plan.totalVolume += bank.composition.volume;
        if (!bank.hardwired && bank.unitCount > 0)
            plan.totalSwitchArea += power::SwitchSpec{}.area;
        plan.banks.push_back(std::move(bank));
    }

    // Restore the caller's mode order.
    std::vector<BankPlan> reordered(plan.banks.size());
    for (std::size_t k = 0; k < order.size(); ++k)
        reordered[order[k]] = plan.banks[k];
    // Keep the hardwired base first in activeCapacitance() logic:
    // mark it instead of relying on position.
    plan.banks = std::move(reordered);
    plan.feasible = true;
    return plan;
}

bool
verifyAllocation(const AllocationPlan &plan,
                 const std::vector<ModeRequirement> &modes,
                 const power::PowerSystem::Spec &spec,
                 double harvest_power)
{
    capy_assert(plan.banks.size() == modes.size(),
                "plan/mode arity mismatch");
    if (!plan.feasible)
        return false;

    // The base bank is whichever plan entry is hardwired.
    const BankPlan *base = nullptr;
    for (const auto &b : plan.banks)
        if (b.hardwired)
            base = &b;
    capy_assert(base != nullptr, "plan lacks a hardwired base bank");

    for (std::size_t i = 0; i < modes.size(); ++i) {
        const ModeRequirement &mode = modes[i];
        const BankPlan &bank = plan.banks[i];

        std::vector<power::CapacitorSpec> parts;
        if (base->composition.capacitance > 0.0)
            parts.push_back(base->composition);
        if (!bank.hardwired && bank.unitCount > 0)
            parts.push_back(bank.composition);
        auto active = power::parallelCompose(parts);

        sim::Simulator simulator;
        auto ps = std::make_unique<power::PowerSystem>(
            spec, std::make_unique<power::RegulatedSupply>(
                      harvest_power, 3.3));
        ps->addBank("active", active);
        dev::Device device(simulator, std::move(ps),
                           dev::msp430fr5969(),
                           dev::Device::PowerMode::Intermittent);

        rt::App app;
        bool completed = false;
        rt::Task *t = app.addTask(
            "probe", mode.demand.duration, 0.0,
            [&](rt::Kernel &) -> const rt::Task * {
                completed = true;
                return nullptr;
            });
        t->absolutePower = mode.demand.railPower;
        rt::Kernel kernel(device, app);
        kernel.start();
        simulator.runUntil(3600.0);
        if (!completed)
            return false;
    }
    return true;
}

} // namespace capy::core
