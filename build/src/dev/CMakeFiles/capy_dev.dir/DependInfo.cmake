
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dev/device.cc" "src/dev/CMakeFiles/capy_dev.dir/device.cc.o" "gcc" "src/dev/CMakeFiles/capy_dev.dir/device.cc.o.d"
  "/root/repo/src/dev/mcu.cc" "src/dev/CMakeFiles/capy_dev.dir/mcu.cc.o" "gcc" "src/dev/CMakeFiles/capy_dev.dir/mcu.cc.o.d"
  "/root/repo/src/dev/nvmem.cc" "src/dev/CMakeFiles/capy_dev.dir/nvmem.cc.o" "gcc" "src/dev/CMakeFiles/capy_dev.dir/nvmem.cc.o.d"
  "/root/repo/src/dev/peripheral.cc" "src/dev/CMakeFiles/capy_dev.dir/peripheral.cc.o" "gcc" "src/dev/CMakeFiles/capy_dev.dir/peripheral.cc.o.d"
  "/root/repo/src/dev/radio.cc" "src/dev/CMakeFiles/capy_dev.dir/radio.cc.o" "gcc" "src/dev/CMakeFiles/capy_dev.dir/radio.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/power/CMakeFiles/capy_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/capy_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
