file(REMOVE_RECURSE
  "CMakeFiles/correlated_sensing.dir/correlated_sensing.cpp.o"
  "CMakeFiles/correlated_sensing.dir/correlated_sensing.cpp.o.d"
  "correlated_sensing"
  "correlated_sensing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/correlated_sensing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
