# Empty compiler generated dependencies file for capysat_mission.
# This may be replaced when dependencies are built.
