/**
 * @file
 * A DEBS-style runtime (Gomez et al., "Dynamic Energy Burst Scaling",
 * discussed in §7): energy bursts are scaled by programming the top
 * voltage V_top to which a single fixed capacitor charges, instead of
 * switching capacitor banks.
 *
 * Functionally this reconfigures capacity like Capybara's C-control,
 * but (a) the threshold lives in an EEPROM potentiometer with finite
 * write endurance, (b) the full capacitance is always present, so
 * cold start and every low-energy mode pay the large capacitor's
 * charge-up to the booster's start voltage, and (c) there is no way
 * to retain a pre-charged burst while operating at a lower threshold
 * — no preburst/burst support.
 */

#ifndef CAPY_CORE_VTOP_RUNTIME_HH
#define CAPY_CORE_VTOP_RUNTIME_HH

#include <memory>
#include <unordered_map>

#include "core/threshold_alt.hh"
#include "rt/kernel.hh"

namespace capy::core
{

/**
 * Kernel gate that maps each task to a charge threshold on a single
 * fixed capacitor (DEBS-style burst scaling).
 */
class VtopRuntime
{
  public:
    struct Stats
    {
        std::uint64_t thresholdChanges = 0;
        std::uint64_t rechargePauses = 0;
    };

    /**
     * @param kernel the task kernel to gate.
     * @param eeprom accounting device for potentiometer writes
     *        (finite endurance, §5.2).
     */
    VtopRuntime(rt::Kernel &kernel, dev::NvMemory *eeprom = nullptr);

    /**
     * Annotate @p task with its charge threshold @p v_top. The value
     * plays the role of an energy mode: higher thresholds buffer
     * more energy for bigger atomic tasks.
     */
    void annotate(const rt::Task *task, double v_top);

    /** Install the gate; call before Kernel::start(). */
    void install();

    const Stats &stats() const { return rtStats; }

    /** Potentiometer EEPROM writes so far. */
    std::uint64_t eepromWrites() const
    {
        return controller ? controller->eepromWrites() : 0;
    }

  private:
    void gate(const rt::Task &task, std::function<void()> proceed);

    rt::Kernel &kernel;
    dev::NvMemory *eeprom;
    std::unique_ptr<VtopController> controller;
    std::unordered_map<const rt::Task *, double> thresholds;
    Stats rtStats;
    bool installed = false;
};

} // namespace capy::core

#endif // CAPY_CORE_VTOP_RUNTIME_HH
