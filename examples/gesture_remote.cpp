/**
 * @file
 * The Wireless Gesture-Activated Remote Control (§6.1.1) in both of
 * its task-structure variants, under each power-system discipline.
 *
 * Usage: gesture_remote [seed]
 */

#include <cstdio>
#include <cstdlib>

#include "apps/grc.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace capy;
using namespace capy::apps;
using namespace capy::core;

int
main(int argc, char **argv)
{
    setQuiet(true);
    std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                  : 2018;
    auto sched = grcSchedule(seed);
    std::printf("GRC: %zu tap-and-swipe motions over %.0f minutes "
                "(seed %llu)\n\n",
                sched.size(), kGrcHorizon / 60.0,
                (unsigned long long)seed);

    for (GrcVariant variant : {GrcVariant::Fast, GrcVariant::Compact}) {
        std::printf("%s:\n", grcVariantName(variant));
        sim::Table t({"system", "correct", "misclassified",
                      "proximity-only", "missed", "latency mean (s)",
                      "bursts", "burst recharges"});
        for (Policy p : {Policy::Continuous, Policy::Fixed,
                         Policy::CapyR, Policy::CapyP}) {
            RunMetrics m = runGestureRemote(variant, p, sched, seed);
            t.addRow({policyName(p),
                      sim::percentCell(m.summary.fracCorrect),
                      sim::cell(m.summary.misclassified),
                      sim::cell(m.summary.proximityOnly),
                      sim::cell(m.summary.missed),
                      m.summary.latency.count()
                          ? sim::cell(m.summary.latency.mean(), 4)
                          : "-",
                      sim::cell(m.runtime.burstActivations),
                      sim::cell(m.runtime.burstRecharges)});
        }
        t.print();
        std::printf("\n");
    }

    std::printf(
        "Capy-R is unsuited to this application: after proximity "
        "fires, it pauses\nto charge the gesture bank — by the time "
        "the device wakes, the motion is\nlong over (proximity-only "
        "rows). Capy-P pre-charged that bank and spends\nit "
        "immediately.\n");
    return 0;
}
