#include "dev/mcu.hh"

#include "power/units.hh"

namespace capy::dev
{

using namespace capy::literals;

McuSpec
msp430fr5969()
{
    // Board-level active draw: MCU core + FRAM at speed, sensors'
    // analog front ends, level shifting, and power-system conversion
    // overhead attributable to the active state. The (power, op-rate)
    // pair is calibrated so energy/op ~ 8.5 nJ reproduces the Fig. 3
    // atomicity range; the absolute power level sets the duty cycle
    // (active draw >> harvest) that the Fig. 8 accuracy results imply.
    return McuSpec{
        .name = "MSP430FR5969",
        .activePower = 22_mW,
        .sleepPower = 150.0_uW,
        .bootTime = 5_ms,
        .opRate = 2.6e6,
    };
}

McuSpec
cc2650()
{
    return McuSpec{
        .name = "CC2650",
        .activePower = 23_mW,
        .sleepPower = 180.0_uW,
        .bootTime = 6_ms,
        .opRate = 2.7e6,
    };
}

} // namespace capy::dev
