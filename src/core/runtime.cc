#include "core/runtime.hh"

#include <algorithm>

#include "power/power_system.hh"
#include "sim/logging.hh"

namespace capy::core
{

const char *
policyName(Policy policy)
{
    switch (policy) {
      case Policy::Continuous:
        return "Pwr";
      case Policy::Fixed:
        return "Fixed";
      case Policy::CapyR:
        return "Capy-R";
      case Policy::CapyP:
        return "Capy-P";
    }
    capy_panic("unknown Policy %d", static_cast<int>(policy));
}

Runtime::Runtime(rt::Kernel &kernel_ref, ModeRegistry registry_in,
                 Policy policy, dev::NvMemory *nv)
    : kernel(kernel_ref), registry(std::move(registry_in)),
      activePolicy(policy), nvPbCharging(nv, 0),
      nvBelievedMode(nv, kNoMode), nvBurstAttempt(nv, nullptr)
{}

void
Runtime::annotate(const rt::Task *task, Annotation ann)
{
    capy_assert(task != nullptr, "annotate(nullptr)");
    if (ann.kind == AnnKind::Config || ann.kind == AnnKind::Burst) {
        capy_assert(ann.mode != kNoMode, "%s needs a mode",
                    annKindName(ann.kind));
    }
    if (ann.kind == AnnKind::Preburst) {
        capy_assert(ann.mode != kNoMode && ann.burstMode != kNoMode,
                    "preburst needs bmode and emode");
    }
    annotations[task] = ann;
}

void
Runtime::install()
{
    capy_assert(!installed, "runtime already installed");
    installed = true;
    kernel.setPreTaskGate(
        [this](const rt::Task &task, std::function<void()> proceed) {
            gate(task, std::move(proceed));
        });
}

Annotation
Runtime::effectiveAnnotation(const rt::Task &task) const
{
    auto it = annotations.find(&task);
    Annotation ann =
        it == annotations.end() ? Annotation{} : it->second;

    switch (activePolicy) {
      case Policy::Continuous:
      case Policy::Fixed:
        // These systems have no reconfiguration capability; the
        // annotations compile away.
        return Annotation{};
      case Policy::CapyR:
        // No burst support (§6): bursts recharge on the critical
        // path; prebursts degrade to configs of the execution mode.
        if (ann.kind == AnnKind::Burst)
            return Annotation::config(ann.mode);
        if (ann.kind == AnnKind::Preburst)
            return Annotation::config(ann.mode);
        return ann;
      case Policy::CapyP:
        return ann;
    }
    capy_panic("unknown Policy");
}

void
Runtime::gate(const rt::Task &task, std::function<void()> proceed)
{
    Annotation ann = effectiveAnnotation(task);

    // On the first gate after any boot, forget the believed hardware
    // configuration: a power failure may have outlived the latches.
    std::uint64_t boots = kernel.device().stats().boots;
    if (boots != lastSeenBoots) {
        lastSeenBoots = boots;
        nvBelievedMode.set(kNoMode);
    }

    // Leaving a burst task behind clears its retry flag.
    if (nvBurstAttempt.get() != nullptr &&
        nvBurstAttempt.get() != &task) {
        nvBurstAttempt.set(nullptr);
    }

    switch (ann.kind) {
      case AnnKind::None:
        proceed();
        return;
      case AnnKind::Config:
        handleConfig(ann.mode, proceed);
        return;
      case AnnKind::Burst:
        handleBurst(task, ann.mode, proceed);
        return;
      case AnnKind::Preburst:
        handlePreburst(task, ann, proceed);
        return;
    }
    capy_panic("unknown AnnKind");
}

void
Runtime::handleConfig(ModeId mode, std::function<void()> &proceed)
{
    auto &ps = kernel.device().powerSystem();
    // When the believed configuration already matches, the task runs
    // on whatever charge remains — the intermittent model executes
    // until the buffer is empty (§2). Only a *re*configuration
    // charges the newly configured buffer before executing (§4.1).
    if (nvBelievedMode.get() == mode) {
        proceed();
        return;
    }
    ps.clearChargeCeiling();
    applyMode(mode);
    nvBelievedMode.set(mode);
    if (!bufferReady()) {
        parkToCharge();
        return;
    }
    proceed();
}

void
Runtime::handleBurst(const rt::Task &task, ModeId mode,
                     std::function<void()> &proceed)
{
    auto &ps = kernel.device().powerSystem();
    ps.clearChargeCeiling();

    if (nvBurstAttempt.get() == &task) {
        // The previous attempt of this burst power-failed: the
        // pre-charged energy was insufficient (provisioning is for
        // the average case, §6.3). Fall back to charging fully on
        // the critical path.
        ++rtStats.burstRecharges;
        applyMode(mode);
        nvBelievedMode.set(mode);
        if (!bufferReady()) {
            parkToCharge();
            return;
        }
        proceed();
        return;
    }

    // Normal burst: re-activate the banks charged ahead of time and
    // execute immediately, without a recharge pause.
    applyMode(mode);
    nvBelievedMode.set(mode);
    ++rtStats.burstActivations;
    nvBurstAttempt.set(&task);
    proceed();
}

void
Runtime::handlePreburst(const rt::Task &task, const Annotation &ann,
                        std::function<void()> &proceed)
{
    (void)task;
    auto &ps = kernel.device().powerSystem();

    // Phase A: ensure the burst banks hold the (penalized) pre-charge
    // ceiling. The banks' retained charge is itself the non-volatile
    // phase indicator: once they hold the ceiling, phase A is done no
    // matter how many power cycles interleaved.
    double ceiling = prechargeCeiling();
    if (!banksHold(ann.burstMode, ceiling - kPrechargeMargin)) {
        applyMode(ann.burstMode);
        nvBelievedMode.set(ann.burstMode);
        ps.setChargeCeiling(ceiling);
        if (!bufferReady()) {
            nvPbCharging.set(1);
            parkToCharge();
            return;
        }
        ++rtStats.prechargePhases;
        nvPbCharging.set(0);
    } else if (nvPbCharging.get() != 0) {
        // The park we took to charge the burst banks just finished.
        ++rtStats.prechargePhases;
        nvPbCharging.set(0);
    } else {
        // Banks still charged from an earlier pre-charge: skip the
        // pause entirely.
        ++rtStats.prechargeSkips;
    }

    // Phase B: deactivate the burst banks (they retain their charge)
    // and charge the execution mode — with the same only-pause-on-
    // reconfiguration rule as config tasks.
    if (nvBelievedMode.get() == ann.mode) {
        proceed();
        return;
    }
    ps.clearChargeCeiling();
    applyMode(ann.mode);
    nvBelievedMode.set(ann.mode);
    if (!bufferReady()) {
        parkToCharge();
        return;
    }
    proceed();
}

bool
Runtime::bufferReady() const
{
    auto &device = kernel.device();
    const auto &ps = device.powerSystem();
    double top = ps.topVoltage();
    double e_top =
        0.5 * ps.activeCapacitance() * top * top;
    double boot_energy =
        power::storageDrawPower(ps.systemSpec().output,
                                device.mcu().activePower) *
        device.mcu().bootTime;
    return ps.activeEnergy() >= e_top - kReadyBootMargin * boot_energy;
}

void
Runtime::applyMode(ModeId mode)
{
    auto &ps = kernel.device().powerSystem();
    const std::vector<int> &want = registry.banks(mode);
    for (int i = 0; i < ps.numBanks(); ++i) {
        if (ps.bankSwitch(i) == nullptr)
            continue;  // hard-wired
        bool desired =
            std::find(want.begin(), want.end(), i) != want.end();
        if (ps.bankActive(i) != desired)
            ++rtStats.reconfigurations;
        // GPIO writes are idempotent; the runtime cannot read switch
        // state (§5.2), so it re-issues every command.
        ps.commandSwitch(i, desired);
    }
}

bool
Runtime::banksHold(ModeId mode, double v) const
{
    const auto &ps = kernel.device().powerSystem();
    for (int idx : registry.banks(mode)) {
        if (ps.bank(idx).voltage() < v)
            return false;
    }
    return true;
}

double
Runtime::prechargeCeiling() const
{
    const auto &ps = kernel.device().powerSystem();
    return ps.systemSpec().maxStorageVoltage -
           ps.systemSpec().prechargePenaltyVoltage;
}

void
Runtime::parkToCharge()
{
    ++rtStats.rechargePauses;
    kernel.device().powerDown();
}

} // namespace capy::core
