/**
 * @file
 * Reproduces §6.5 (characterization) plus the §5.2 mechanism cost
 * comparison: board-area budget, switch latch retention (~3 minutes
 * with the 4.7 uF latch), and the switched-bank vs V_top-threshold
 * overhead table (2x area, 1.5x leakage, EEPROM endurance).
 */

#include <cstdio>

#include "apps/experiment.hh"
#include "bench_util.hh"
#include "core/threshold_alt.hh"
#include "power/bankswitch.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace capy;
using namespace capy::bench;

int
main()
{
    setQuiet(true);
    banner("Section 6.5", "power system characterization");

    // --- Board area accounting (prototype: 6x6 cm board). ---
    const double board_area = 60.0 * 60.0;
    const double solar_area = 700.0;
    const double power_area = 640.0;
    power::SwitchSpec sw;
    sim::Table area({"component", "area (mm^2)", "share of board"});
    area.addRow({"solar panels", sim::cell(solar_area, 4),
                 sim::percentCell(solar_area / board_area)});
    area.addRow({"power system circuits", sim::cell(power_area, 4),
                 sim::percentCell(power_area / board_area)});
    area.addRow({"one reconfiguration switch", sim::cell(sw.area, 4),
                 sim::percentCell(sw.area / board_area)});
    area.print();

    // --- Latch retention. ---
    // The analytic figure and the simulated unpowered decay are
    // independent, so the pair sweeps through the shared batch pool
    // (rows are assembled from index-ordered results, byte-identical
    // at any CAPY_JOBS).
    auto retention = apps::sweepPool().map(2, [&sw](std::size_t i) {
        if (i == 0)
            return power::BankSwitch(sw).retentionTime();
        // Simulate: command closed, then decay unpowered until
        // reversion.
        power::BankSwitch sim_sw(sw);
        sim_sw.command(true, 0.0, true);
        double decayed = 0.0;
        while (sim_sw.closed() && decayed < 1000.0) {
            decayed += 0.25;
            sim_sw.update(decayed, false);
        }
        return decayed;
    });
    double analytic = retention[0];
    double t = retention[1];
    std::printf("\nlatch: C=%.2g uF, R_leak=%.3g Mohm\n",
                sw.latchCapacitance * 1e6, sw.latchLeakRes / 1e6);
    std::printf("retention time: analytic %.1f s, simulated %.2f s "
                "(paper: ~3 minutes)\n",
                analytic, t);

    // --- Mechanism comparison (§5.2). ---
    auto swm = core::switchedBankMechanism();
    auto vt = core::vtopThresholdMechanism();
    auto vb = core::vbottomThresholdMechanism();
    std::printf("\ncapacity-reconfiguration mechanisms:\n");
    sim::Table mech({"mechanism", "area (mm^2)", "leakage (nA)",
                     "write endurance", "default bank"});
    for (const auto *m : {&swm, &vt, &vb}) {
        mech.addRow({m->name, sim::cell(m->areaPerModule, 4),
                     sim::cell(m->leakageCurrent * 1e9, 4),
                     m->writeEndurance
                         ? sim::cell(m->writeEndurance)
                         : std::string("unlimited"),
                     m->smallDefaultBank ? "small (fast cold start)"
                                         : "full capacitor"});
    }
    mech.print();

    shapeCheck(analytic >= 120.0 && analytic <= 260.0,
               "latch retention is approximately 3 minutes (§6.5)");
    shapeCheck(std::abs(t - analytic) <= 1.0,
               "simulated latch decay matches the analytic retention");
    shapeCheck(vt.areaPerModule == 2.0 * swm.areaPerModule,
               "V_top threshold circuit occupies twice the switch "
               "area (§5.2)");
    shapeCheck(std::abs(vt.leakageCurrent / swm.leakageCurrent - 1.5) <
                   1e-9,
               "V_top threshold circuit leaks 1.5x the switch (§5.2)");
    shapeCheck(vt.writeEndurance > 0 && swm.writeEndurance == 0,
               "EEPROM potentiometer endurance limits the threshold "
               "design's lifetime");
    shapeCheck(sw.area == 80.0 && power_area == 640.0,
               "switch 80 mm^2 and power system 640 mm^2 as reported");
    return finish();
}
