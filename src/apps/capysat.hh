/**
 * @file
 * CapySat case study (§6.6): a board-scale low-earth-orbit satellite
 * built by specializing Capybara. Volume and temperature constraints
 * disqualify batteries, so the board stores energy in ultra-compact
 * EDLC supercapacitors that are only usable thanks to the input and
 * output boosters. The application runs on two MCUs concurrently —
 * one sampling the attitude sensors, one transmitting 1-byte,
 * redundantly-coded radio packets (250 ms at ~30 mA) — so the bank
 * switch simplifies into a diode splitter that statically dedicates
 * one bank to each MCU at ~20% of the switch area.
 */

#ifndef CAPY_APPS_CAPYSAT_HH
#define CAPY_APPS_CAPYSAT_HH

#include <cstdint>

#include "apps/faults.hh"
#include "dev/device.hh"

namespace capy::apps
{

/** Results of a CapySat mission segment. */
struct CapySatResult
{
    std::uint64_t samples = 0;          ///< attitude samples taken
    std::uint64_t packets = 0;          ///< downlink packets sent
    std::uint64_t packetsDelivered = 0;
    std::uint64_t samplesInEclipse = 0;
    std::uint64_t packetsInEclipse = 0;
    dev::Device::Stats samplingMcu;
    dev::Device::Stats commMcu;
    /** Diode-splitter area vs. a full bank-switch module, mm^2. */
    double splitterArea = 0.0;
    double switchArea = 0.0;
    double capacitorVolume = 0.0;  ///< total storage volume, mm^3
    std::uint64_t simEvents = 0;   ///< simulator events executed
    /** Injection/audit outcome across both MCUs (zero unfaulted). */
    FaultReport faults;
};

/**
 * Fly the satellite for @p orbits orbits.
 * @param seed RNG seed for radio loss.
 * @param faults optional fault spec; each injection attempt targets
 *        both MCUs (a bus-level supply fault hits the whole board).
 */
CapySatResult runCapySat(double orbits, std::uint64_t seed,
                         const FaultSpec *faults = nullptr);

} // namespace capy::apps

#endif // CAPY_APPS_CAPYSAT_HH
