#include "power/harvester.hh"

#include <algorithm>
#include <cmath>

#include "power/solver.hh"
#include "sim/logging.hh"

namespace capy::power
{

RegulatedSupply::RegulatedSupply(double max_power, double output_voltage)
    : maxPower(max_power), outputVoltage(output_voltage)
{
    capy_assert(max_power >= 0.0, "negative supply power");
    capy_assert(output_voltage > 0.0, "non-positive supply voltage");
}

sim::Time
RegulatedSupply::nextChange(sim::Time) const
{
    return kNever;
}

SolarArray::SolarArray(unsigned n_series, double panel_peak_power,
                       double panel_voltage, Illumination illum,
                       sim::Time change_period)
    : nSeries(n_series), peakPower(panel_peak_power),
      panelVoltage(panel_voltage), illumination(std::move(illum)),
      changePeriod(change_period)
{
    capy_assert(n_series >= 1, "need at least one panel");
    capy_assert(panel_peak_power >= 0.0, "negative panel power");
    capy_assert(panel_voltage > 0.0, "non-positive panel voltage");
    capy_assert(!illumination || change_period > 0.0,
                "varying illumination needs a change period");
}

double
SolarArray::power(sim::Time t) const
{
    if (!illumination)
        return double(nSeries) * peakPower;
    // Memo keyed on the exact query time: the transient walk asks for
    // the same instant once per phase iteration, and the answer is a
    // pure function of t.
    if (t == cachedTime) {
        ++cacheHitCount;
        return double(nSeries) * peakPower * cachedScale;
    }
    ++cacheMissCount;
    cachedScale = std::clamp(illumination(t), 0.0, 1.0);
    cachedTime = t;
    return double(nSeries) * peakPower * cachedScale;
}

double
SolarArray::voltage(sim::Time) const
{
    return double(nSeries) * panelVoltage;
}

sim::Time
SolarArray::nextChange(sim::Time t) const
{
    if (!illumination)
        return kNever;
    // Boundaries on a fixed grid.
    double steps = std::floor(t / changePeriod) + 1.0;
    return steps * changePeriod;
}

TraceHarvester::TraceHarvester(std::vector<Sample> samples,
                               double output_voltage, bool loop)
    : trace(std::move(samples)), outputVoltage(output_voltage),
      looping(loop)
{
    capy_assert(!trace.empty(), "empty harvest trace");
    capy_assert(trace.front().time == 0.0,
                "trace must start at t = 0");
    for (std::size_t i = 0; i < trace.size(); ++i) {
        capy_assert(trace[i].power >= 0.0, "negative trace power");
        capy_assert(i == 0 || trace[i].time > trace[i - 1].time,
                    "trace times must be strictly increasing");
    }
    capy_assert(output_voltage > 0.0, "non-positive trace voltage");
    // The final step lasts as long as the mean step, so a looping
    // trace has a well-defined period.
    double mean_step = trace.size() > 1
                           ? trace.back().time /
                                 double(trace.size() - 1)
                           : 1.0;
    span = trace.back().time + mean_step;
}

std::size_t
TraceHarvester::indexAt(double local) const
{
    // Last sample with time <= local.
    std::size_t lo = 0, hi = trace.size();
    while (hi - lo > 1) {
        std::size_t mid = (lo + hi) / 2;
        if (trace[mid].time <= local)
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

std::size_t
TraceHarvester::seek(double local) const
{
    // Queries arrive in (mostly) non-decreasing time order, so the
    // active sample is the cursor's or a few ahead; scan forward from
    // the cursor and only fall back to the binary search when the
    // query jumped backward (loop wrap, predictive-query restart) or
    // far ahead.
    constexpr std::size_t kMaxScan = 32;
    std::size_t i = cursor;
    if (i < trace.size() && trace[i].time <= local) {
        std::size_t scanned = 0;
        while (i + 1 < trace.size() && trace[i + 1].time <= local &&
               scanned < kMaxScan) {
            ++i;
            ++scanned;
        }
        if (i + 1 >= trace.size() || trace[i + 1].time > local) {
            ++cursorHitCount;
            cursor = i;
            return i;
        }
    }
    ++cursorMissCount;
    cursor = indexAt(local);
    return cursor;
}

double
TraceHarvester::power(sim::Time t) const
{
    capy_assert(t >= 0.0, "negative time");
    double local = t;
    if (looping) {
        local = std::fmod(t, span);
    } else if (t >= span) {
        return 0.0;
    }
    return trace[seek(local)].power;
}

sim::Time
TraceHarvester::nextChange(sim::Time t) const
{
    if (!looping && t >= span)
        return kNever;
    double cycles = looping ? std::floor(t / span) : 0.0;
    double local = t - cycles * span;
    std::size_t idx = seek(local);
    double next_local =
        idx + 1 < trace.size() ? trace[idx + 1].time : span;
    double next = cycles * span + next_local;
    // Guard FP: always strictly in the future.
    if (next <= t)
        next = t + 1e-9;
    return next;
}

RfHarvester::RfHarvester(double harvest_power, double rectified_voltage)
    : harvestPower(harvest_power), rectifiedVoltage(rectified_voltage)
{
    capy_assert(harvest_power >= 0.0, "negative RF power");
    capy_assert(rectified_voltage > 0.0, "non-positive RF voltage");
}

sim::Time
RfHarvester::nextChange(sim::Time) const
{
    return kNever;
}

} // namespace capy::power
