/**
 * @file
 * The Temperature Monitor with Alarm application (§6.1.2), run under
 * all four power-system disciplines on the same 50-event sequence.
 * Prints a Fig. 8/9-style comparison plus the sampling-quality
 * breakdown of Fig. 11.
 *
 * Usage: temperature_alarm [seed]
 */

#include <cstdio>
#include <cstdlib>

#include "apps/ta.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace capy;
using namespace capy::apps;
using namespace capy::core;

int
main(int argc, char **argv)
{
    setQuiet(true);
    std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                  : 2018;
    auto sched = taSchedule(seed);
    std::printf("TempAlarm: %zu temperature excursions over %.0f "
                "minutes (seed %llu)\n\n",
                sched.size(), kTaHorizon / 60.0,
                (unsigned long long)seed);

    sim::Table t({"system", "correct", "missed", "latency mean (s)",
                  "samples", "mean charge gap (s)", "boots"});
    for (Policy p : {Policy::Continuous, Policy::Fixed, Policy::CapyR,
                     Policy::CapyP}) {
        RunMetrics m = runTempAlarm(p, sched, seed);
        t.addRow({policyName(p),
                  sim::percentCell(m.summary.fracCorrect),
                  sim::cell(m.summary.missed),
                  m.summary.latency.count()
                      ? sim::cell(m.summary.latency.mean(), 4)
                      : "-",
                  sim::cell(m.samples),
                  sim::cell(m.chargeSpanMean, 3),
                  sim::cell(m.device.boots)});
    }
    t.print();

    std::printf(
        "\nReading the table:\n"
        " - Fixed provisions one worst-case bank: long recharges "
        "swallow events.\n"
        " - Capy-R reconfigures between a small sampling bank and the "
        "large radio\n   bank, but charges the radio bank on the "
        "critical path after detection.\n"
        " - Capy-P pre-charges the radio bank ahead of time and "
        "spends it as an\n   energy burst the moment an alarm fires."
        "\n");
    return 0;
}
