
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/energy_trace.cpp" "examples/CMakeFiles/energy_trace.dir/energy_trace.cpp.o" "gcc" "examples/CMakeFiles/energy_trace.dir/energy_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/capy_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/capy_core.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/capy_env.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/capy_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/dev/CMakeFiles/capy_dev.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/capy_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/capy_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
