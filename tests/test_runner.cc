/**
 * @file
 * Tests for the parallel batch-execution engine: results arrive in
 * submission order and are identical at every pool size, exceptions
 * propagate deterministically, empty batches are no-ops, and
 * CAPY_JOBS controls the default pool size.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "sim/logging.hh"
#include "sim/runner.hh"
#include "sim/simulator.hh"

using namespace capy;
using namespace capy::sim;

namespace
{

/**
 * A job of the kind BatchRunner exists for: an independent
 * event-driven simulation whose result is a pure function of its
 * index.
 */
std::uint64_t
simJob(std::size_t index)
{
    Simulator s;
    std::uint64_t acc = index;
    for (int i = 0; i < 50; ++i) {
        s.schedule(double(i) * 0.5 + double(index % 7),
                   [&acc, &s] { acc = acc * 31 + std::uint64_t(s.now() * 2.0); });
    }
    s.run();
    return acc;
}

} // namespace

TEST(BatchRunner, ResultsArriveInSubmissionOrder)
{
    BatchRunner pool(4);
    auto out = pool.map(64, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 64u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(BatchRunner, DeterministicAcrossThreadCounts)
{
    std::vector<std::vector<std::uint64_t>> results;
    for (unsigned threads : {1u, 2u, 8u}) {
        BatchRunner pool(threads);
        EXPECT_EQ(pool.threads(), threads);
        results.push_back(pool.map(40, simJob));
    }
    EXPECT_EQ(results[0], results[1]);
    EXPECT_EQ(results[0], results[2]);
}

TEST(BatchRunner, EmptyBatchIsANoOp)
{
    BatchRunner pool(4);
    auto out = pool.map(0, [](std::size_t) { return 1; });
    EXPECT_TRUE(out.empty());
    int calls = 0;
    pool.forEach(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(BatchRunner, ExceptionFromAJobPropagates)
{
    BatchRunner pool(4);
    EXPECT_THROW(pool.forEach(8,
                              [](std::size_t i) {
                                  if (i == 5)
                                      throw std::runtime_error("boom");
                              }),
                 std::runtime_error);
}

TEST(BatchRunner, LowestIndexExceptionWinsDeterministically)
{
    BatchRunner pool(8);
    for (int attempt = 0; attempt < 5; ++attempt) {
        try {
            pool.forEach(16, [](std::size_t i) {
                if (i % 3 == 0 && i > 0)
                    throw std::runtime_error("job " +
                                             std::to_string(i));
            });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "job 3");
        }
    }
}

TEST(BatchRunner, PoolIsReusableAfterABatchAndAfterAnError)
{
    BatchRunner pool(2);
    auto a = pool.map(10, [](std::size_t i) { return i + 1; });
    EXPECT_EQ(a.back(), 10u);
    EXPECT_THROW(pool.forEach(
                     4, [](std::size_t) { throw std::logic_error("x"); }),
                 std::logic_error);
    auto b = pool.map(10, [](std::size_t i) { return i * 2; });
    EXPECT_EQ(b.back(), 18u);
}

TEST(BatchRunner, MapItemsPreservesItemOrder)
{
    BatchRunner pool(3);
    std::vector<int> items(30);
    std::iota(items.begin(), items.end(), 0);
    auto out = pool.mapItems(items, [](int v) { return v * 10; });
    for (std::size_t i = 0; i < items.size(); ++i)
        EXPECT_EQ(out[i], int(i) * 10);
}

TEST(BatchRunner, SingleThreadPoolSpawnsNoWorkers)
{
    BatchRunner pool(1);
    EXPECT_EQ(pool.threads(), 1u);
    auto out = pool.map(5, [](std::size_t i) { return i; });
    EXPECT_EQ(out, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(BatchRunner, DefaultThreadsHonoursCapyJobs)
{
    setQuiet(true);
    ASSERT_EQ(setenv("CAPY_JOBS", "3", 1), 0);
    EXPECT_EQ(BatchRunner::defaultThreads(), 3u);
    // Invalid values fall back to hardware concurrency (>= 1).
    ASSERT_EQ(setenv("CAPY_JOBS", "zero", 1), 0);
    EXPECT_GE(BatchRunner::defaultThreads(), 1u);
    ASSERT_EQ(setenv("CAPY_JOBS", "-2", 1), 0);
    EXPECT_GE(BatchRunner::defaultThreads(), 1u);
    unsetenv("CAPY_JOBS");
    EXPECT_GE(BatchRunner::defaultThreads(), 1u);
    setQuiet(false);
}
