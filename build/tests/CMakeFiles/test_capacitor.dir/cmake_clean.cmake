file(REMOVE_RECURSE
  "CMakeFiles/test_capacitor.dir/test_capacitor.cc.o"
  "CMakeFiles/test_capacitor.dir/test_capacitor.cc.o.d"
  "test_capacitor"
  "test_capacitor.pdb"
  "test_capacitor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_capacitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
