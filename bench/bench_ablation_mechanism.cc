/**
 * @file
 * Ablation (§5.2): comparing the three capacity-reconfiguration
 * mechanisms on cold start — time from completely empty storage until
 * the device can first execute a small task.
 *
 *  - C control (Capybara): only the small default bank charges.
 *  - V_top control (DEBS-style): the single full-size capacitor
 *    charges to a lowered threshold — but all of it must come up past
 *    the output booster's start voltage.
 *  - V_bottom control: the full capacitor always charges to the top.
 */

#include <cmath>
#include <cstdio>
#include <memory>

#include "bench_util.hh"
#include "core/threshold_alt.hh"
#include "dev/device.hh"
#include "power/parts.hh"
#include "power/power_system.hh"
#include "sim/logging.hh"
#include "sim/runner.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"

using namespace capy;
using namespace capy::bench;

namespace
{

constexpr double kHarvest = 2e-3;

/** Small default bank and the combined large storage of the board. */
power::CapacitorSpec
smallBank()
{
    return power::parts::x5r100uF().parallel(4);
}

power::CapacitorSpec
fullStorage()
{
    return power::parallelCompose(
        {power::parts::x5r100uF().parallel(4),
         power::parts::edlc7_5mF().parallel(6)});
}

/** Time from empty until the first boot completes. */
double
coldStart(std::unique_ptr<power::PowerSystem> ps)
{
    sim::Simulator simulator;
    dev::Device device(simulator, std::move(ps), dev::msp430fr5969(),
                       dev::Device::PowerMode::Intermittent);
    double boot_at = -1.0;
    device.setHooks({.onBoot =
                         [&] {
                             boot_at = simulator.now();
                             simulator.stop();
                         },
                     .onPowerFail = nullptr});
    device.start();
    simulator.runUntil(36000.0);
    return boot_at;
}

} // namespace

int
main()
{
    setQuiet(true);
    banner("Section 5.2 ablation",
           "cold start by reconfiguration mechanism");
    std::printf("harvest: %.1f mW; task: any small workload\n\n",
                kHarvest * 1e3);

    power::PowerSystem::Spec spec;

    // Each mechanism builds its own power system inside its job; the
    // three cold starts are independent and run in parallel.
    // C control: switch array reverts NO -> only the small default
    // bank is connected for the cold start.
    auto run_c = [&spec] {
        auto ps = std::make_unique<power::PowerSystem>(
            spec,
            std::make_unique<power::RegulatedSupply>(kHarvest, 3.3));
        ps->addBank("small", smallBank());
        ps->addSwitchedBank("big",
                            power::parts::edlc7_5mF().parallel(6),
                            power::SwitchSpec{});
        return coldStart(std::move(ps));
    };

    // V_top control: one fixed large capacitor charged to a lowered
    // threshold with the same energy as the small bank's full charge.
    auto run_vtop = [&spec] {
        auto ps = std::make_unique<power::PowerSystem>(
            spec,
            std::make_unique<power::RegulatedSupply>(kHarvest, 3.3));
        ps->addBank("fixed", fullStorage());
        // Threshold for equal stored energy, but never below the
        // output booster's start voltage.
        double e_small = 0.5 * smallBank().capacitance * 3.0 * 3.0;
        double v =
            std::sqrt(2.0 * e_small / fullStorage().capacitance);
        v = std::max(v, spec.output.minInputStart + 0.1);
        {
            core::VtopController ctl(*ps);
            ctl.setThreshold(v);
        }
        return coldStart(std::move(ps));
    };

    // V_bottom control: the full capacitor must charge to the top.
    auto run_vbot = [&spec] {
        auto ps = std::make_unique<power::PowerSystem>(
            spec,
            std::make_unique<power::RegulatedSupply>(kHarvest, 3.3));
        ps->addBank("fixed", fullStorage());
        return coldStart(std::move(ps));
    };

    sim::BatchRunner pool;
    auto times = pool.map(3, [&](std::size_t i) {
        return i == 0 ? run_c() : i == 1 ? run_vtop() : run_vbot();
    });
    double t_c = times[0];
    double t_vtop = times[1];
    double t_vbot = times[2];

    sim::Table t({"mechanism", "cold start (s)", "vs C control"});
    t.addRow({"C control (switched banks)", sim::cell(t_c, 4), "1x"});
    t.addRow({"V_top threshold", sim::cell(t_vtop, 4),
              sim::cell(t_vtop / t_c, 3) + "x"});
    t.addRow({"V_bottom threshold", sim::cell(t_vbot, 4),
              sim::cell(t_vbot / t_c, 3) + "x"});
    t.print();

    shapeCheck(t_c > 0.0 && t_vtop > 0.0 && t_vbot > 0.0,
               "all three mechanisms eventually boot");
    shapeCheck(t_c < t_vtop,
               "C control cold-starts fastest: the small bank reaches "
               "a boostable voltage quickest (§5.2)");
    shapeCheck(t_vtop < t_vbot,
               "V_top control beats V_bottom, which always pays the "
               "full-capacity charge");
    shapeCheck(t_vbot / t_c > 10.0,
               "the worst mechanism is an order of magnitude slower "
               "to first execution");
    return finish();
}
