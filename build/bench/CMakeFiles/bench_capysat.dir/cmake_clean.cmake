file(REMOVE_RECURSE
  "CMakeFiles/bench_capysat.dir/bench_capysat.cc.o"
  "CMakeFiles/bench_capysat.dir/bench_capysat.cc.o.d"
  "bench_capysat"
  "bench_capysat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_capysat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
