# Empty compiler generated dependencies file for capy_core.
# This may be replaced when dependencies are built.
