file(REMOVE_RECURSE
  "CMakeFiles/bench_vtop_runtime.dir/bench_vtop_runtime.cc.o"
  "CMakeFiles/bench_vtop_runtime.dir/bench_vtop_runtime.cc.o.d"
  "bench_vtop_runtime"
  "bench_vtop_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vtop_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
