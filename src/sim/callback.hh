/**
 * @file
 * Small-buffer callable holder for event callbacks.
 *
 * Replaces std::function<void()> on the event hot path. Callables up
 * to kInlineSize bytes — the common case of a lambda capturing a
 * couple of pointers — are stored inside the Callback object itself,
 * so scheduling an event performs no heap allocation. Larger
 * callables fall back to a single heap allocation transparently.
 */

#ifndef CAPY_SIM_CALLBACK_HH
#define CAPY_SIM_CALLBACK_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace capy::sim
{

/**
 * Move-only type-erased void() callable with small-buffer storage.
 *
 * Invariants mirror std::function minus copyability: a default-
 * constructed Callback is empty (operator bool() == false) and must
 * not be invoked; a moved-from Callback is empty.
 */
class Callback
{
  public:
    /** Inline capture budget: six pointers/doubles worth of state. */
    static constexpr std::size_t kInlineSize = 48;

    Callback() noexcept = default;

    /** Wrap any void-invocable @p f, inline when it fits. */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, Callback> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    Callback(F &&f)  // NOLINT: implicit, mirrors std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(buf)) Fn(std::forward<F>(f));
            ops = &inlineOps<Fn>;
        } else {
            // The hot path is supposed to never take this branch;
            // the counter makes a silent capture-size regression
            // observable (EventQueue::callbackHeapFallbacks()).
            heapFallbackCounter().fetch_add(
                1, std::memory_order_relaxed);
            ::new (static_cast<void *>(buf))
                Fn *(new Fn(std::forward<F>(f)));
            ops = &heapOps<Fn>;
        }
    }

    Callback(Callback &&other) noexcept { moveFrom(other); }

    Callback &
    operator=(Callback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    Callback(const Callback &) = delete;
    Callback &operator=(const Callback &) = delete;

    ~Callback() { reset(); }

    /** @retval true when a callable is held. */
    explicit operator bool() const noexcept { return ops != nullptr; }

    /** Invoke the held callable; empty Callbacks must not be called. */
    void operator()() { ops->invoke(buf); }

    /** Whether a callable of type Fn avoids the heap fallback. */
    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= kInlineSize &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    /**
     * Process-wide count of Callbacks that overflowed the inline
     * buffer and heap-allocated. The simulator hot path is sized so
     * this stays 0; benches assert on it.
     */
    static std::uint64_t
    heapFallbacks() noexcept
    {
        return heapFallbackCounter().load(std::memory_order_relaxed);
    }

  private:
    static std::atomic<std::uint64_t> &
    heapFallbackCounter() noexcept
    {
        static std::atomic<std::uint64_t> count{0};
        return count;
    }

    struct Ops
    {
        void (*invoke)(void *);
        /** Move-construct into @p dst from @p src, destroying src. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *) noexcept;
    };

    template <typename Fn> static const Ops inlineOps;
    template <typename Fn> static const Ops heapOps;

    void
    moveFrom(Callback &other) noexcept
    {
        ops = other.ops;
        if (ops)
            ops->relocate(buf, other.buf);
        other.ops = nullptr;
    }

    void
    reset() noexcept
    {
        if (ops) {
            ops->destroy(buf);
            ops = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf[kInlineSize];
    const Ops *ops = nullptr;
};

template <typename Fn>
inline const Callback::Ops Callback::inlineOps = {
    [](void *p) { (*std::launder(reinterpret_cast<Fn *>(p)))(); },
    [](void *dst, void *src) noexcept {
        Fn *from = std::launder(reinterpret_cast<Fn *>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
    },
    [](void *p) noexcept {
        std::launder(reinterpret_cast<Fn *>(p))->~Fn();
    },
};

template <typename Fn>
inline const Callback::Ops Callback::heapOps = {
    [](void *p) { (**std::launder(reinterpret_cast<Fn **>(p)))(); },
    [](void *dst, void *src) noexcept {
        ::new (dst)
            Fn *(*std::launder(reinterpret_cast<Fn **>(src)));
    },
    [](void *p) noexcept {
        delete *std::launder(reinterpret_cast<Fn **>(p));
    },
};

} // namespace capy::sim

#endif // CAPY_SIM_CALLBACK_HH
