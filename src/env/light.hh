/**
 * @file
 * Light source for solar-harvesting experiments: the 20 W halogen
 * bulb with PWM-controlled brightness of §6.1.2 (42% duty), plus a
 * low-earth-orbit illumination profile for the CapySat case study
 * (sunlit vs eclipse phases of an orbit).
 */

#ifndef CAPY_ENV_LIGHT_HH
#define CAPY_ENV_LIGHT_HH

#include "power/harvester.hh"

namespace capy::env
{

/**
 * Halogen bulb dimmed by PWM: at the harvesting time scale the panel
 * sees the duty-cycle-averaged intensity, so the illumination is a
 * constant fraction.
 */
class PwmHalogen
{
  public:
    explicit PwmHalogen(double duty_fraction);

    double dutyFraction() const { return duty; }

    /** Illumination function for a SolarArray. */
    power::SolarArray::Illumination illumination() const;

  private:
    double duty;
};

/**
 * Low-earth-orbit sunlight: full illumination during the sunlit arc,
 * darkness during eclipse, repeating each orbital period (~92.5 min
 * for a KickSat-class deployment with ~36 min eclipse).
 */
class OrbitLight
{
  public:
    struct Spec
    {
        double orbitPeriod = 5550.0;    ///< s (~92.5 min)
        double eclipseDuration = 2160.0;  ///< s (~36 min)
    };

    explicit OrbitLight(Spec spec);
    OrbitLight() : OrbitLight(Spec{}) {}

    const Spec &spec() const { return orbitSpec; }

    /** Whether the satellite is sunlit at @p t. */
    bool sunlit(sim::Time t) const;

    /** Illumination function for a SolarArray (1 sunlit, 0 eclipse). */
    power::SolarArray::Illumination illumination() const;

    /** Boundary spacing for the harvester's nextChange grid: the
     *  finest granularity at which illumination changes. */
    sim::Time changePeriod() const;

  private:
    Spec orbitSpec;
};

} // namespace capy::env

#endif // CAPY_ENV_LIGHT_HH
