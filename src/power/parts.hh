/**
 * @file
 * Catalog of concrete capacitor parts used throughout the experiments.
 * One central catalog keeps every benchmark and application drawing
 * from the same datasheet-derived constants (DESIGN.md §5).
 */

#ifndef CAPY_POWER_PARTS_HH
#define CAPY_POWER_PARTS_HH

#include <string>
#include <vector>

#include "power/capacitor.hh"

namespace capy::power::parts
{

/** 100 uF X5R multilayer ceramic (1210-class package). */
CapacitorSpec x5r100uF();

/** 100 uF tantalum (3528-class package). */
CapacitorSpec tant100uF();

/** 330 uF tantalum (2917-class package). */
CapacitorSpec tant330uF();

/** 1000 uF tantalum. */
CapacitorSpec tant1000uF();

/** 7.5 mF miniature EDLC supercapacitor (generic low-profile). */
CapacitorSpec edlc7_5mF();

/**
 * Seiko CPH3225A 11 mF EDLC: the ultra-compact, high-ESR
 * supercapacitor of Fig. 4 (3.2 x 2.5 x 0.9 mm, ESR ~160 ohm).
 */
CapacitorSpec cph3225a();

/** Look up a part by catalog name; fatal on unknown names. */
CapacitorSpec byName(const std::string &name);

/** All catalog parts. */
std::vector<CapacitorSpec> all();

/**
 * A generic part of technology @p tech with the catalog technology's
 * volumetric density, ESR scaling, and leakage, sized to
 * @p capacitance. Used for design-space sweeps (Fig. 3).
 */
CapacitorSpec synthesize(CapTech tech, double capacitance);

} // namespace capy::power::parts

#endif // CAPY_POWER_PARTS_HH
