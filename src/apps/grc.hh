/**
 * @file
 * Wireless Gesture-activated Remote Control (GRC, §6.1.1): sample a
 * phototransistor for proximity; on detection, run the APDS-9960
 * gesture engine for the 250 ms minimum gesture window; broadcast the
 * decoded direction in an 8-byte BLE packet.
 *
 * Two variants: GRC-Compact keeps gesture recognition and
 * transmission as separate atomic tasks (67.5 mF burst bank);
 * GRC-Fast joins them into one atomic task (45 mF burst bank),
 * trading device size against the recharge latency between
 * recognition and transmission.
 */

#ifndef CAPY_APPS_GRC_HH
#define CAPY_APPS_GRC_HH

#include "apps/experiment.hh"

namespace capy::apps
{

/** GRC task-structure variant. */
enum class GrcVariant
{
    Fast,     ///< gesture + transmit joined into one atomic task
    Compact,  ///< gesture and transmit as separate atomic tasks
};

const char *grcVariantName(GrcVariant variant);

/**
 * Run the GRC application under @p policy against @p schedule.
 * @param faults optional fault-injection/audit spec (crash sweeps).
 */
RunMetrics runGestureRemote(GrcVariant variant, core::Policy policy,
                            const env::EventSchedule &schedule,
                            std::uint64_t seed,
                            double horizon = kGrcHorizon,
                            const FaultSpec *faults = nullptr);

} // namespace capy::apps

#endif // CAPY_APPS_GRC_HH
