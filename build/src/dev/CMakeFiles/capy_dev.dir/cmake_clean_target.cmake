file(REMOVE_RECURSE
  "libcapy_dev.a"
)
