/**
 * @file
 * The CapySat case study (§6.6): fly the two-MCU, supercapacitor-
 * powered nano-satellite for several orbits and report per-orbit
 * activity.
 *
 * Usage: capysat_mission [orbits]
 */

#include <cstdio>
#include <cstdlib>

#include "apps/capysat.hh"
#include "env/light.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace capy;
using namespace capy::apps;

int
main(int argc, char **argv)
{
    setQuiet(true);
    double orbits = argc > 1 ? std::strtod(argv[1], nullptr) : 4.0;
    env::OrbitLight orbit;

    std::printf("CapySat: %.1f orbits of %.1f min (%.1f min eclipse "
                "each)\n\n",
                orbits, orbit.spec().orbitPeriod / 60.0,
                orbit.spec().eclipseDuration / 60.0);

    CapySatResult r = runCapySat(orbits, 7);

    sim::Table t({"metric", "total", "per orbit"});
    t.addRow({"attitude samples", sim::cell(r.samples),
              sim::cell(double(r.samples) / orbits, 4)});
    t.addRow({"downlink packets sent", sim::cell(r.packets),
              sim::cell(double(r.packets) / orbits, 4)});
    t.addRow({"packets received on Earth",
              sim::cell(r.packetsDelivered),
              sim::cell(double(r.packetsDelivered) / orbits, 4)});
    t.addRow({"samples in eclipse", sim::cell(r.samplesInEclipse),
              sim::cell(double(r.samplesInEclipse) / orbits, 4)});
    t.print();

    std::printf("\nhardware:\n");
    std::printf("  storage: %.1f mm^3 of CPH3225A supercapacitors "
                "(batteries are\n           disqualified by the "
                "volume and -40C requirements)\n",
                r.capacitorVolume);
    std::printf("  splitter: %.0f mm^2 vs %.0f mm^2 for a full "
                "bank-switch module (20%%)\n",
                r.splitterArea, r.switchArea);
    std::printf("  sampling MCU: %llu boots, %llu power failures\n",
                (unsigned long long)r.samplingMcu.boots,
                (unsigned long long)r.samplingMcu.powerFailures);
    std::printf("  comm MCU:     %llu boots, %llu power failures\n",
                (unsigned long long)r.commMcu.boots,
                (unsigned long long)r.commMcu.powerFailures);
    return 0;
}
