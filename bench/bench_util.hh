/**
 * @file
 * Shared helpers for the experiment-reproduction benches: headers,
 * paper-shape checks, and ASCII sparklines. Each bench binary
 * regenerates one table/figure of the paper's evaluation; it prints
 * the same rows/series the paper reports and then asserts the
 * qualitative claims ("shape checks"). A failed shape check exits
 * non-zero so regressions show up in CI.
 */

#ifndef CAPY_BENCH_UTIL_HH
#define CAPY_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace capy::bench
{

inline int shapeFailures = 0;

/** Print the bench banner. */
inline void
banner(const char *figure, const char *title)
{
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", figure, title);
    std::printf("==============================================================\n");
}

/** Record and print one shape check. */
inline void
shapeCheck(bool ok, const char *claim)
{
    std::printf("paper-shape check: [%s] %s\n", ok ? "PASS" : "FAIL",
                claim);
    if (!ok)
        ++shapeFailures;
}

/** Exit status for main(): non-zero when any shape check failed. */
inline int
finish()
{
    if (shapeFailures > 0) {
        std::printf("\n%d paper-shape check(s) FAILED\n", shapeFailures);
        return 1;
    }
    std::printf("\nall paper-shape checks passed\n");
    return 0;
}

/** Simple ASCII bar for table rows, scaled to @p width chars. */
inline std::string
bar(double value, double max_value, int width = 40)
{
    if (max_value <= 0.0)
        return "";
    int n = static_cast<int>(value / max_value * width + 0.5);
    if (n < 0)
        n = 0;
    if (n > width)
        n = width;
    return std::string(static_cast<std::size_t>(n), '#');
}

} // namespace capy::bench

#endif // CAPY_BENCH_UTIL_HH
