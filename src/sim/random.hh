/**
 * @file
 * Deterministic random number generation for reproducible experiments.
 *
 * A PCG32 generator plus the distributions the evaluation needs:
 * uniform, exponential (Poisson inter-arrivals), and normal. All
 * experiments seed explicitly, so identical runs produce identical
 * event sequences, matching the paper's methodology of replaying the
 * same event sequence against each power-system variant.
 */

#ifndef CAPY_SIM_RANDOM_HH
#define CAPY_SIM_RANDOM_HH

#include <cstdint>
#include <vector>

namespace capy::sim
{

/**
 * PCG32 (PCG-XSH-RR 64/32) pseudo-random generator. Small, fast, and
 * statistically solid; a fixed algorithm (unlike std::mt19937's
 * distribution wrappers) so streams are stable across platforms.
 */
class Rng
{
  public:
    /** Construct from a seed and optional stream selector. */
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL);

    /** Next raw 32-bit value. */
    std::uint32_t next32();

    /** Next raw 64-bit value. */
    std::uint64_t next64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive), unbiased. */
    std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi);

    /** Exponential variate with mean @p mean (> 0). */
    double exponential(double mean);

    /** Normal variate (Box–Muller, cached pair). */
    double normal(double mu, double sigma);

    /** Bernoulli trial with probability @p p of true. */
    bool chance(double p);

  private:
    std::uint64_t state;
    std::uint64_t inc;
    bool haveSpare = false;
    double spare = 0.0;
};

/**
 * Arrival times of a Poisson process with mean inter-arrival
 * @p mean_interval over [0, horizon), optionally offset by
 * @p start_after to keep the first event away from cold start.
 */
std::vector<double> poissonArrivals(Rng &rng, double mean_interval,
                                    double horizon,
                                    double start_after = 0.0);

} // namespace capy::sim

#endif // CAPY_SIM_RANDOM_HH
