
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/allocate.cc" "src/core/CMakeFiles/capy_core.dir/allocate.cc.o" "gcc" "src/core/CMakeFiles/capy_core.dir/allocate.cc.o.d"
  "/root/repo/src/core/energy_mode.cc" "src/core/CMakeFiles/capy_core.dir/energy_mode.cc.o" "gcc" "src/core/CMakeFiles/capy_core.dir/energy_mode.cc.o.d"
  "/root/repo/src/core/provision.cc" "src/core/CMakeFiles/capy_core.dir/provision.cc.o" "gcc" "src/core/CMakeFiles/capy_core.dir/provision.cc.o.d"
  "/root/repo/src/core/runtime.cc" "src/core/CMakeFiles/capy_core.dir/runtime.cc.o" "gcc" "src/core/CMakeFiles/capy_core.dir/runtime.cc.o.d"
  "/root/repo/src/core/threshold_alt.cc" "src/core/CMakeFiles/capy_core.dir/threshold_alt.cc.o" "gcc" "src/core/CMakeFiles/capy_core.dir/threshold_alt.cc.o.d"
  "/root/repo/src/core/vtop_runtime.cc" "src/core/CMakeFiles/capy_core.dir/vtop_runtime.cc.o" "gcc" "src/core/CMakeFiles/capy_core.dir/vtop_runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rt/CMakeFiles/capy_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/dev/CMakeFiles/capy_dev.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/capy_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/capy_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
