# Empty dependencies file for bench_ablation_switch.
# This may be replaced when dependencies are built.
