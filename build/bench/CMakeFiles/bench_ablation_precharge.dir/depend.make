# Empty dependencies file for bench_ablation_precharge.
# This may be replaced when dependencies are built.
