/**
 * @file
 * Reproduces the §6.6 CapySat case study: a board-scale low-earth-
 * orbit satellite with two MCUs — attitude sampling and a 250 ms /
 * ~30 mA redundant downlink — each statically matched to its own
 * supercapacitor bank through a diode splitter at ~20% of the
 * general-purpose switch area.
 */

#include <cstdio>

#include "apps/capysat.hh"
#include "apps/experiment.hh"
#include "bench_util.hh"
#include "env/light.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace capy;
using namespace capy::apps;
using namespace capy::bench;

int
main()
{
    setQuiet(true);
    banner("Section 6.6", "CapySat low-earth-orbit case study");

    env::OrbitLight orbit;
    const double orbits = 3.0;
    // The mission simulation goes through the shared sweep pool like
    // every other bench, so extending this case study to a seed or
    // mission-length sweep parallelizes for free.
    CapySatResult r = sweepPool()
                          .map(1, [orbits](std::size_t) {
                              return runCapySat(orbits, 99);
                          })
                          .front();

    std::printf("orbit: %.1f min period, %.1f min eclipse; mission: "
                "%.0f orbits\n\n",
                orbit.spec().orbitPeriod / 60.0,
                orbit.spec().eclipseDuration / 60.0, orbits);

    sim::Table t({"metric", "value"});
    t.addRow({"attitude samples", sim::cell(r.samples)});
    t.addRow({"samples per orbit",
              sim::cell(double(r.samples) / orbits, 4)});
    t.addRow({"samples during eclipse", sim::cell(r.samplesInEclipse)});
    t.addRow({"downlink packets", sim::cell(r.packets)});
    t.addRow({"packets delivered", sim::cell(r.packetsDelivered)});
    t.addRow({"packets during eclipse", sim::cell(r.packetsInEclipse)});
    t.addRow({"sampling MCU boots", sim::cell(r.samplingMcu.boots)});
    t.addRow({"comm MCU boots", sim::cell(r.commMcu.boots)});
    t.addRow({"storage volume (mm^3)",
              sim::cell(r.capacitorVolume, 4)});
    t.addRow({"diode splitter area (mm^2)",
              sim::cell(r.splitterArea, 4)});
    t.addRow({"full switch area (mm^2)", sim::cell(r.switchArea, 4)});
    t.print();

    double sunlit_s = r.samples - r.samplesInEclipse;
    shapeCheck(r.samples > 500,
               "the sampling MCU collects attitude data continuously "
               "while sunlit");
    shapeCheck(r.packetsDelivered > 20,
               "the comm MCU sustains the 250 ms / ~30 mA downlink "
               "bursts from supercapacitor storage");
    shapeCheck(r.splitterArea == 0.2 * r.switchArea,
               "the diode splitter matches storage to demand at 20% "
               "of the switch area (§6.6)");
    shapeCheck(r.capacitorVolume < 100.0,
               "all storage fits the 1.7x1.7 inch volume budget");
    shapeCheck(double(r.samplesInEclipse) < 0.5 * sunlit_s,
               "eclipse suppresses activity: capacitors cannot carry "
               "full-rate operation through 36 minutes of darkness");
    return finish();
}
