#include "sim/trace.hh"

#include <algorithm>
#include <sstream>

#include "sim/logging.hh"

namespace capy::sim
{

void
TimeSeries::record(Time t, double value)
{
    capy_assert(data.empty() || t >= data.back().t,
                "series '%s': time %g precedes last sample %g",
                seriesName.c_str(), t, data.back().t);
    data.push_back({t, value});
    decimateIfNeeded();
}

void
TimeSeries::capPoints(std::size_t max_points)
{
    capy_assert(max_points == 0 || max_points >= 4,
                "series '%s': point cap %zu too small (min 4)",
                seriesName.c_str(), max_points);
    maxPoints = max_points;
    decimateIfNeeded();
}

void
TimeSeries::decimateIfNeeded()
{
    if (maxPoints == 0 || data.size() <= maxPoints)
        return;
    // Keep the first sample, every other interior sample, and the
    // last sample; repeat if a late capPoints() finds a large series.
    while (data.size() > maxPoints) {
        std::size_t w = 1;
        for (std::size_t r = 2; r + 1 < data.size(); r += 2)
            data[w++] = data[r];
        data[w++] = data.back();
        data.resize(w);
    }
}

double
TimeSeries::lastValue() const
{
    capy_assert(!data.empty(), "series '%s' is empty",
                seriesName.c_str());
    return data.back().value;
}

double
TimeSeries::at(Time t) const
{
    capy_assert(!data.empty(), "series '%s' is empty",
                seriesName.c_str());
    if (t <= data.front().t)
        return data.front().value;
    if (t >= data.back().t)
        return data.back().value;
    auto it = std::lower_bound(
        data.begin(), data.end(), t,
        [](const TracePoint &p, Time when) { return p.t < when; });
    const TracePoint &hi = *it;
    const TracePoint &lo = *(it - 1);
    if (hi.t == lo.t)
        return hi.value;
    double frac = (t - lo.t) / (hi.t - lo.t);
    return lo.value + frac * (hi.value - lo.value);
}

std::string
TimeSeries::csv() const
{
    std::ostringstream out;
    out << "time," << seriesName << '\n';
    for (const auto &p : data)
        out << p.t << ',' << p.value << '\n';
    return out.str();
}

void
SpanTrace::open(Time t, std::string label)
{
    capy_assert(!openActive, "span '%s' still open",
                openLabelText.c_str());
    capy_assert(completed.empty() || t >= completed.back().end,
                "span at %g precedes previous close %g", t,
                completed.back().end);
    openActive = true;
    openStart_ = t;
    openLabelText = std::move(label);
}

void
SpanTrace::close(Time t)
{
    capy_assert(openActive, "no span open");
    capy_assert(t >= openStart_, "close %g precedes open %g", t,
                openStart_);
    completed.push_back({openStart_, t, openLabelText});
    openActive = false;
}

const std::string &
SpanTrace::openLabel() const
{
    capy_assert(openActive, "no span open");
    return openLabelText;
}

Time
SpanTrace::openStart() const
{
    capy_assert(openActive, "no span open");
    return openStart_;
}

Time
SpanTrace::totalFor(const std::string &label) const
{
    Time total = 0.0;
    for (const auto &s : completed)
        if (s.label == label)
            total += s.duration();
    return total;
}

std::size_t
SpanTrace::countFor(const std::string &label) const
{
    std::size_t n = 0;
    for (const auto &s : completed)
        if (s.label == label)
            ++n;
    return n;
}

} // namespace capy::sim
