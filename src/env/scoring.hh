/**
 * @file
 * Detection scoring (§6.2-6.4): classify every ground-truth event as
 * Correct / Misclassified / ProximityOnly / Missed, collect report
 * latencies, and analyze inter-sample intervals for the sampling-
 * quality study (Fig. 11).
 */

#ifndef CAPY_ENV_SCORING_HH
#define CAPY_ENV_SCORING_HH

#include <vector>

#include "env/events.hh"
#include "sim/stats.hh"

namespace capy::env
{

/** Final classification of one ground-truth event (Fig. 8 legend). */
enum class Outcome
{
    Correct,        ///< reported with correct content
    Misclassified,  ///< reported/processed but content wrong
    ProximityOnly,  ///< detected (e.g. proximity) but never decoded
    Missed,         ///< never detected at all
};

const char *outcomeName(Outcome outcome);

/**
 * Collects what an application observed and reported during a run,
 * keyed by ground-truth event id, then summarizes accuracy and
 * latency.
 *
 * Recording rules (monotone upgrades): Missed < ProximityOnly <
 * Misclassified < Correct — a later, better observation of the same
 * event upgrades it, and a worse one never downgrades it. This
 * mirrors the paper's counting, where e.g. a gesture that is decoded
 * and delivered counts as correct even if an earlier sample only saw
 * proximity.
 */
class Scoreboard
{
  public:
    explicit Scoreboard(const EventSchedule &schedule);

    /** A detection without decoded content (e.g. proximity fired). */
    void recordDetection(int event_id);

    /** Content decoded/processed but wrong (e.g. swipe direction). */
    void recordMisclassified(int event_id);

    /**
     * A correct report delivered to the receiver at time @p t.
     * Latency is measured against the event's ground-truth time.
     */
    void recordReport(int event_id, sim::Time t);

    /** A sensor sample taken at time @p t (for Fig. 11). */
    void recordSample(sim::Time t);

    /** Current classification of event @p id. */
    Outcome outcome(int event_id) const;

    /** Aggregate results for one run. */
    struct Summary
    {
        std::size_t total = 0;
        std::size_t correct = 0;
        std::size_t misclassified = 0;
        std::size_t proximityOnly = 0;
        std::size_t missed = 0;
        double fracCorrect = 0.0;
        /** Event-to-report latencies of correctly reported events. */
        sim::SummaryStats latency;
    };

    Summary summarize() const;

    /** One inter-sample interval with its Fig. 11 classification. */
    struct Interval
    {
        double length;        ///< s between consecutive samples
        bool backToBack;      ///< below the back-to-back threshold
        bool containsMissed;  ///< >=1 missed event fell inside it
    };

    /**
     * Inter-sample intervals, each flagged back-to-back (< @p
     * back_to_back_threshold) or classified by whether a missed
     * ground-truth event fell inside it.
     */
    std::vector<Interval>
    sampleIntervals(double back_to_back_threshold = 1.0) const;

    const std::vector<sim::Time> &samples() const { return sampleTimes; }

  private:
    bool validId(int event_id) const;

    const EventSchedule &schedule;
    std::vector<Outcome> outcomes;
    std::vector<double> reportLatency;  ///< -1 when not reported
    std::vector<sim::Time> sampleTimes;
};

} // namespace capy::env

#endif // CAPY_ENV_SCORING_HH
