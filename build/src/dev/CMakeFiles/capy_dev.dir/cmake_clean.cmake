file(REMOVE_RECURSE
  "CMakeFiles/capy_dev.dir/device.cc.o"
  "CMakeFiles/capy_dev.dir/device.cc.o.d"
  "CMakeFiles/capy_dev.dir/mcu.cc.o"
  "CMakeFiles/capy_dev.dir/mcu.cc.o.d"
  "CMakeFiles/capy_dev.dir/nvmem.cc.o"
  "CMakeFiles/capy_dev.dir/nvmem.cc.o.d"
  "CMakeFiles/capy_dev.dir/peripheral.cc.o"
  "CMakeFiles/capy_dev.dir/peripheral.cc.o.d"
  "CMakeFiles/capy_dev.dir/radio.cc.o"
  "CMakeFiles/capy_dev.dir/radio.cc.o.d"
  "libcapy_dev.a"
  "libcapy_dev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capy_dev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
