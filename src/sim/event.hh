/**
 * @file
 * Discrete-event queue: time-ordered callbacks with stable FIFO
 * ordering among simultaneous events and O(log n) cancellation.
 */

#ifndef CAPY_SIM_EVENT_HH
#define CAPY_SIM_EVENT_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace capy::sim
{

/** Simulated time in seconds. */
using Time = double;

/** Handle identifying a scheduled event; 0 is never a valid id. */
using EventId = std::uint64_t;

/** Sentinel id meaning "no event". */
inline constexpr EventId kInvalidEvent = 0;

/**
 * Min-heap of timestamped callbacks. Events scheduled for the same
 * instant run in scheduling order. Cancelled events are skipped lazily
 * when they reach the head of the heap.
 */
class EventQueue
{
  public:
    /**
     * Schedule @p fn to run at absolute time @p when.
     * @return a handle usable with cancel().
     */
    EventId schedule(Time when, std::function<void()> fn);

    /**
     * Cancel a previously scheduled event.
     * @retval true if the event was pending and is now cancelled.
     * @retval false if it already ran, was already cancelled, or the
     *         handle is invalid.
     */
    bool cancel(EventId id);

    /** @return true when no runnable events remain. */
    bool empty() const;

    /** Time of the earliest pending event; empty() must be false. */
    Time nextTime() const;

    /**
     * Pop the earliest pending event and run its callback.
     * @return the time at which the event ran.
     */
    Time runNext();

    /** Number of events executed so far. */
    std::uint64_t executed() const { return numExecuted; }

    /** Number of events currently pending (excludes cancelled). */
    std::size_t pending() const { return pendingIds.size(); }

    /** @retval true if @p id refers to a still-pending event. */
    bool isPending(EventId id) const { return pendingIds.contains(id); }

  private:
    struct Record
    {
        Time when;
        std::uint64_t seq;
        EventId id;
        std::function<void()> fn;
    };

    struct Later
    {
        bool
        operator()(const Record &a, const Record &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Drop cancelled records from the head of the heap. */
    void skipCancelled() const;

    mutable std::priority_queue<Record, std::vector<Record>, Later> heap;
    mutable std::unordered_set<EventId> cancelled;
    std::unordered_set<EventId> pendingIds;
    std::uint64_t nextSeq = 0;
    EventId nextId = 1;
    std::uint64_t numExecuted = 0;
};

} // namespace capy::sim

#endif // CAPY_SIM_EVENT_HH
