/**
 * @file
 * Tests for the Device layer: intermittent boot cycles, workload
 * brown-outs, voluntary power-down, continuous mode, and peripheral/
 * radio/NV-memory models.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "dev/device.hh"
#include "dev/nvmem.hh"
#include "dev/peripheral.hh"
#include "dev/radio.hh"
#include "power/parts.hh"
#include "power/units.hh"
#include "sim/simulator.hh"

using namespace capy;
using namespace capy::dev;
using namespace capy::power;

namespace
{

std::unique_ptr<PowerSystem>
smallBankSystem(double harvest_mw = 10.0)
{
    PowerSystem::Spec spec;
    auto ps = std::make_unique<PowerSystem>(
        spec,
        std::make_unique<RegulatedSupply>(harvest_mw * 1e-3, 3.3));
    ps->addBank("base", parts::x5r100uF().parallel(4));
    return ps;
}

} // namespace

TEST(Device, BootsWhenBufferFull)
{
    sim::Simulator s;
    Device d(s, smallBankSystem(), msp430fr5969(),
             Device::PowerMode::Intermittent);
    bool booted = false;
    double boot_time = -1;
    d.setHooks({.onBoot =
                    [&] {
                        booted = true;
                        boot_time = s.now();
                    },
                .onPowerFail = nullptr});
    d.start();
    s.runUntil(10.0);
    EXPECT_TRUE(booted);
    EXPECT_GT(boot_time, 0.0);
    EXPECT_EQ(d.stats().boots, 1u);
    EXPECT_TRUE(d.isOn());
}

TEST(Device, WorkloadCompletesWithinEnergy)
{
    sim::Simulator s;
    Device d(s, smallBankSystem(), msp430fr5969(),
             Device::PowerMode::Intermittent);
    bool done = false;
    d.setHooks({.onBoot =
                    [&] {
                        // 730 uF-class bank: a few ms of compute fits.
                        d.runWorkload(8.4e-3, 2e-3,
                                      [&] { done = true; });
                    },
                .onPowerFail = nullptr});
    d.start();
    s.runUntil(20.0);
    EXPECT_TRUE(done);
    EXPECT_EQ(d.stats().workloadsCompleted, 1u);
    EXPECT_EQ(d.stats().powerFailures, 0u);
}

TEST(Device, OversizedWorkloadBrownsOutAndRetries)
{
    sim::Simulator s;
    Device d(s, smallBankSystem(), msp430fr5969(),
             Device::PowerMode::Intermittent);
    int boots = 0;
    int fails = 0;
    d.setHooks({.onBoot =
                    [&] {
                        ++boots;
                        // Far more energy than the small bank stores.
                        d.runWorkload(20e-3, 10.0, [] {});
                    },
                .onPowerFail = [&] { ++fails; }});
    d.start();
    s.runUntil(30.0);
    EXPECT_GE(boots, 2) << "device must recharge and retry";
    EXPECT_GE(fails, 2);
    EXPECT_EQ(d.stats().workloadsCompleted, 0u);
    EXPECT_GE(d.stats().workloadsAborted, 2u);
}

TEST(Device, PowerDownRechargesAndReboots)
{
    sim::Simulator s;
    Device d(s, smallBankSystem(), msp430fr5969(),
             Device::PowerMode::Intermittent);
    int boots = 0;
    d.setHooks({.onBoot =
                    [&] {
                        ++boots;
                        if (boots == 1)
                            d.runWorkload(8.4e-3, 1e-3,
                                          [&] { d.powerDown(); });
                    },
                .onPowerFail = nullptr});
    d.start();
    s.runUntil(30.0);
    EXPECT_EQ(boots, 2);
    EXPECT_EQ(d.stats().powerFailures, 0u);
}

TEST(Device, ContinuousModeNeverFails)
{
    sim::Simulator s;
    Device d(s, smallBankSystem(0.0), msp430fr5969(),
             Device::PowerMode::Continuous);
    int completions = 0;
    std::function<void()> loop = [&] {
        if (++completions < 100)
            d.runWorkload(50e-3, 0.1, loop);
    };
    d.setHooks({.onBoot = [&] { d.runWorkload(50e-3, 0.1, loop); },
                .onPowerFail = nullptr});
    d.start();
    s.runUntil(60.0);
    EXPECT_EQ(completions, 100);
    EXPECT_EQ(d.stats().powerFailures, 0u);
}

TEST(Device, ContinuousBootIsFast)
{
    sim::Simulator s;
    Device d(s, smallBankSystem(0.0), msp430fr5969(),
             Device::PowerMode::Continuous);
    double boot_at = -1;
    d.setHooks({.onBoot = [&] { boot_at = s.now(); },
                .onPowerFail = nullptr});
    d.start();
    s.run();
    EXPECT_NEAR(boot_at, msp430fr5969().bootTime, 1e-12);
}

TEST(Device, ChargingTimeTracked)
{
    sim::Simulator s;
    Device d(s, smallBankSystem(), msp430fr5969(),
             Device::PowerMode::Intermittent);
    int boots = 0;
    d.setHooks({.onBoot =
                    [&] {
                        if (++boots == 1)
                            d.runWorkload(8.4e-3, 1e-3,
                                          [&] { d.powerDown(); });
                    },
                .onPowerFail = nullptr});
    d.start();
    s.runUntil(10.0);
    EXPECT_GT(d.stats().timeCharging, 0.0);
    EXPECT_GT(d.stats().timeOn, 0.0);
    // Spans recorded for charging and on periods.
    EXPECT_GE(d.spans().countFor("charging"), 1u);
}

TEST(Device, UnharvestableDeviceStaysOff)
{
    sim::Simulator s;
    PowerSystem::Spec spec;
    spec.input.bypassEnabled = false;
    spec.systemQuiescentPower = 100e-6;
    auto ps = std::make_unique<PowerSystem>(
        spec, std::make_unique<RegulatedSupply>(50e-6, 3.3));
    ps->addBank("b", parts::edlc7_5mF());
    capy::setQuiet(true);
    Device d(s, std::move(ps), msp430fr5969(),
             Device::PowerMode::Intermittent);
    bool booted = false;
    d.setHooks({.onBoot = [&] { booted = true; },
                .onPowerFail = nullptr});
    d.start();
    s.runUntil(1000.0);
    capy::setQuiet(false);
    EXPECT_FALSE(booted);
}

TEST(Device, BigBankBootsSlowerThanSmall)
{
    auto boot_time = [](CapacitorSpec cap) {
        sim::Simulator s;
        PowerSystem::Spec spec;
        auto ps = std::make_unique<PowerSystem>(
            spec, std::make_unique<RegulatedSupply>(10e-3, 3.3));
        ps->addBank("b", cap);
        Device d(s, std::move(ps), msp430fr5969(),
                 Device::PowerMode::Intermittent);
        double at = -1;
        d.setHooks(
            {.onBoot = [&] { at = s.now(); }, .onPowerFail = nullptr});
        d.start();
        s.runUntil(2000.0);
        return at;
    };
    double small = boot_time(parts::x5r100uF().parallel(4));
    double large = boot_time(parts::edlc7_5mF().parallel(9));
    ASSERT_GT(small, 0.0);
    ASSERT_GT(large, 0.0);
    EXPECT_GT(large, 20.0 * small);
}

TEST(Peripherals, CatalogSane)
{
    auto specs = {periph::apds9960Gesture(), periph::tmp36(),
                  periph::magnetometer(), periph::led(),
                  periph::phototransistor(), periph::accelerometer(),
                  periph::gyroscope(), periph::apds9960Proximity()};
    for (const auto &p : specs) {
        EXPECT_FALSE(p.name.empty());
        EXPECT_GT(p.activePower, 0.0) << p.name;
        EXPECT_GE(p.warmupTime, 0.0) << p.name;
    }
}

TEST(Peripherals, GestureWindowMatchesPaper)
{
    // §6.1.1: minimum gesture duration is 250 ms.
    EXPECT_DOUBLE_EQ(periph::apds9960Gesture().minActiveTime, 0.25);
}

TEST(Peripherals, PowerAggregation)
{
    std::vector<PeripheralSpec> set{periph::tmp36(), periph::led()};
    EXPECT_NEAR(totalActivePower(set), 180e-6 + 5e-3, 1e-12);
    EXPECT_DOUBLE_EQ(maxWarmup(set), periph::tmp36().warmupTime);
}

TEST(Peripherals, SensorReadsSourceAndCounts)
{
    Sensor s(periph::tmp36(), [](sim::Time t) { return 20.0 + t; });
    EXPECT_DOUBLE_EQ(s.read(5.0), 25.0);
    EXPECT_DOUBLE_EQ(s.read(7.0), 27.0);
    EXPECT_EQ(s.samplesTaken(), 2u);
}

TEST(Radio, BleTimingMatchesPaper)
{
    // §2: a 25-byte BLE packet occupies the air for ~35 ms; the
    // atomic session adds the radio power-up and stack init.
    EXPECT_NEAR(airTime(bleRadio(), 25), 35e-3, 1e-9);
    EXPECT_LT(airTime(bleRadio(), 8), airTime(bleRadio(), 25));
    EXPECT_NEAR(txDuration(bleRadio(), 25),
                bleRadio().startupDuration + 35e-3, 1e-9);
}

TEST(Radio, KicksatFixedFrame)
{
    // §6.6: 250 ms on air per 1-byte packet regardless of payload.
    EXPECT_DOUBLE_EQ(airTime(kicksatRadio(), 1), 0.25);
    EXPECT_DOUBLE_EQ(airTime(kicksatRadio(), 4), 0.25);
}

TEST(Radio, LossRateApproximatelyRespected)
{
    Radio r(bleRadio());
    sim::Rng rng(99);
    int delivered = 0;
    for (int i = 0; i < 10000; ++i)
        delivered += r.attemptDelivery(rng);
    EXPECT_EQ(r.packetsSent(), 10000u);
    EXPECT_NEAR(double(r.packetsLost()) / 10000.0, 0.02, 0.01);
    EXPECT_EQ(delivered + int(r.packetsLost()), 10000);
}

TEST(NvMemory, CellSurvivesAndCounts)
{
    NvMemory mem("fram");
    NvCell<int> cell(&mem, 7);
    EXPECT_EQ(cell.get(), 7);
    cell.set(42);
    EXPECT_EQ(cell.get(), 42);
    EXPECT_EQ(mem.writes(), 1u);
    EXPECT_EQ(mem.reads(), 2u);
    EXPECT_EQ(cell.writeCount(), 1u);
}

TEST(NvMemory, EnduranceWarning)
{
    capy::setQuiet(true);
    NvMemory mem("eeprom", 3);
    NvCell<int> cell(&mem);
    for (int i = 0; i < 5; ++i)
        cell.set(i);
    EXPECT_TRUE(mem.wornOut());
    capy::setQuiet(false);
}

TEST(Mcu, SpecsDerivedQuantities)
{
    McuSpec m = msp430fr5969();
    // Fig. 3 calibration: ~8.5 nJ per effective operation.
    EXPECT_NEAR(m.energyPerOp(), 8.5e-9, 0.5e-9);
    EXPECT_DOUBLE_EQ(m.timeForOps(m.opRate), 1.0);
    EXPECT_GT(m.activePower, m.sleepPower);
}
