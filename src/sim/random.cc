#include "sim/random.hh"

#include <cmath>

#include "sim/logging.hh"

namespace capy::sim
{

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
    : state(0), inc((stream << 1u) | 1u)
{
    next32();
    state += seed;
    next32();
}

std::uint32_t
Rng::next32()
{
    std::uint64_t old = state;
    state = old * 6364136223846793005ULL + inc;
    std::uint32_t xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
}

std::uint64_t
Rng::next64()
{
    return (static_cast<std::uint64_t>(next32()) << 32) | next32();
}

double
Rng::uniform()
{
    // 53 random bits into [0, 1).
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    capy_assert(hi >= lo, "uniform(%g, %g): empty range", lo, hi);
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t lo, std::uint64_t hi)
{
    capy_assert(hi >= lo, "uniformInt: empty range");
    std::uint64_t range = hi - lo + 1;
    if (range == 0)  // full 64-bit range
        return next64();
    // Rejection sampling to remove modulo bias.
    std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
    std::uint64_t v;
    do {
        v = next64();
    } while (v >= limit);
    return lo + v % range;
}

double
Rng::exponential(double mean)
{
    capy_assert(mean > 0.0, "exponential mean %g must be positive",
                mean);
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double
Rng::normal(double mu, double sigma)
{
    if (haveSpare) {
        haveSpare = false;
        return mu + sigma * spare;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    double mag = std::sqrt(-2.0 * std::log(u1));
    spare = mag * std::sin(2.0 * M_PI * u2);
    haveSpare = true;
    return mu + sigma * mag * std::cos(2.0 * M_PI * u2);
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

std::vector<double>
poissonArrivals(Rng &rng, double mean_interval, double horizon,
                double start_after)
{
    capy_assert(mean_interval > 0.0, "mean interval must be positive");
    std::vector<double> arrivals;
    double t = start_after;
    for (;;) {
        t += rng.exponential(mean_interval);
        if (t >= horizon)
            break;
        arrivals.push_back(t);
    }
    return arrivals;
}

} // namespace capy::sim
