/**
 * @file
 * Time-series and interval tracing. Used to reproduce the paper's
 * voltage-vs-time plots (Fig. 2) and the operating/charging span
 * breakdowns.
 */

#ifndef CAPY_SIM_TRACE_HH
#define CAPY_SIM_TRACE_HH

#include <string>
#include <vector>

#include "sim/event.hh"

namespace capy::sim
{

/** One (time, value) sample. */
struct TracePoint
{
    Time t;
    double value;
};

/**
 * A named scalar-valued time series with monotonically non-decreasing
 * timestamps.
 */
class TimeSeries
{
  public:
    explicit TimeSeries(std::string series_name)
        : seriesName(std::move(series_name))
    {}

    /** Append a sample; @p t must not precede the previous sample. */
    void record(Time t, double value);

    const std::string &name() const { return seriesName; }
    const std::vector<TracePoint> &points() const { return data; }
    bool empty() const { return data.empty(); }
    std::size_t size() const { return data.size(); }

    /** Last recorded value; series must be non-empty. */
    double lastValue() const;

    /**
     * Linear interpolation of the series at time @p t (clamped to the
     * recorded range). Series must be non-empty.
     */
    double at(Time t) const;

    /** Render as two-column CSV ("time,value" with a header). */
    std::string csv() const;

  private:
    std::string seriesName;
    std::vector<TracePoint> data;
};

/** A labelled half-open time interval [start, end). */
struct Span
{
    Time start;
    Time end;
    std::string label;

    Time duration() const { return end - start; }
};

/**
 * Recorder for labelled activity intervals (e.g. "charging",
 * "operating"). Spans are opened and later closed; nesting is not
 * allowed — a span must be closed before the next opens.
 */
class SpanTrace
{
  public:
    /** Open a span at @p t with @p label. @pre no span is open. */
    void open(Time t, std::string label);

    /** Close the open span at @p t. @pre a span is open. */
    void close(Time t);

    /** Whether a span is currently open. */
    bool isOpen() const { return openActive; }

    /** Label of the currently open span. @pre isOpen(). */
    const std::string &openLabel() const;

    /** Start time of the currently open span. @pre isOpen(). */
    Time openStart() const;

    const std::vector<Span> &spans() const { return completed; }

    /** Total duration across spans whose label equals @p label. */
    Time totalFor(const std::string &label) const;

    /** Number of spans whose label equals @p label. */
    std::size_t countFor(const std::string &label) const;

  private:
    std::vector<Span> completed;
    bool openActive = false;
    Time openStart_ = 0.0;
    std::string openLabelText;
};

} // namespace capy::sim

#endif // CAPY_SIM_TRACE_HH
