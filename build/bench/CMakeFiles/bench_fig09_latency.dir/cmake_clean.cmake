file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_latency.dir/bench_fig09_latency.cc.o"
  "CMakeFiles/bench_fig09_latency.dir/bench_fig09_latency.cc.o.d"
  "bench_fig09_latency"
  "bench_fig09_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
