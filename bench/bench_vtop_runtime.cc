/**
 * @file
 * Related-work comparison (§7 / §5.2): a DEBS-style V_top-scaling
 * runtime vs Capybara's switched banks, running the TempAlarm
 * workload end to end on the same total storage.
 *
 * V_top scaling matches capacity to tasks too, but: the full
 * capacitance is always connected, so every low-energy cycle pays the
 * big capacitor's dynamics; every mode change writes the EEPROM
 * potentiometer (finite endurance); and there is no pre-charge — the
 * alarm transmission charges on the critical path, like Capy-R.
 */

#include <cstdio>
#include <memory>

#include "apps/boards.hh"
#include "apps/ta.hh"
#include "bench_util.hh"
#include "core/vtop_runtime.hh"
#include "dev/peripheral.hh"
#include "dev/radio.hh"
#include "env/thermal.hh"
#include "power/parts.hh"
#include "power/units.hh"
#include "rt/channel.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace capy;
using namespace capy::apps;
using namespace capy::bench;
using namespace capy::core;
using namespace capy::literals;

namespace
{

constexpr std::uint64_t kSeed = 31415;

/** TA on a single fixed capacitor with a V_top-scaling runtime. */
struct VtopResult
{
    env::Scoreboard::Summary summary;
    std::uint64_t samples = 0;
    std::uint64_t eepromWrites = 0;
    std::uint64_t thresholdChanges = 0;
};

VtopResult
runVtopTempAlarm(std::uint64_t seed, double horizon)
{
    // Draw the schedule with this job's own seeded generator —
    // generation stays off the sweep submitter's critical path and
    // the sequence is a pure function of the seed.
    env::EventSchedule schedule = taSchedule(seed);
    VtopResult out;
    sim::Simulator simulator;
    power::PowerSystem::Spec spec;
    auto ps = std::make_unique<power::PowerSystem>(
        spec, std::make_unique<power::SolarArray>(
                  2, 1.0e-3, 2.5,
                  [](sim::Time) { return 0.42; }, 60.0));
    // One fixed capacitor holding the combined TA storage.
    ps->addBank("fixed",
                power::parallelCompose(
                    {power::parts::x5r100uF().parallel(3),
                     power::parts::tant100uF(),
                     power::parts::tant1000uF(),
                     power::parts::edlc7_5mF()}));
    dev::Device device(simulator, std::move(ps), dev::msp430fr5969(),
                       dev::Device::PowerMode::Intermittent);

    env::ThermalRig rig(schedule);
    env::Scoreboard sb(schedule);
    dev::Radio radio(dev::bleRadio());
    sim::Rng rng(kSeed, 0x1a);
    dev::NvMemory fram("fram");
    dev::NvMemory eeprom("potentiometer", 100000);

    rt::RingChannel<double, 15> series(&fram);
    rt::Channel<int> pendingAlarm(&fram, -1);
    rt::Channel<int> lastReported(&fram, -1);

    rt::App app;
    const auto tmp36 = dev::periph::tmp36();
    const auto ble = dev::bleRadio();
    rt::Task *sense = nullptr;
    rt::Task *radio_tx = nullptr;
    radio_tx = app.addTask(
        "radio_tx", txDuration(ble, 25), 0.0,
        [&](rt::Kernel &k) -> const rt::Task * {
            int ev = pendingAlarm.get();
            lastReported.set(ev);
            if (radio.attemptDelivery(rng))
                sb.recordReport(ev, k.now());
            return sense;
        });
    radio_tx->absolutePower = ble.txPower;
    sense = app.addTask(
        "sense", 8_ms + tmp36.warmupTime, tmp36.activePower,
        [&](rt::Kernel &k) -> const rt::Task * {
            sim::Time t = k.now();
            sb.recordSample(t);
            series.push(rig.temperature(t));
            int ev = rig.alarmEventAt(t);
            if (ev >= 0) {
                sb.recordDetection(ev);
                if (lastReported.get() != ev) {
                    pendingAlarm.set(ev);
                    return radio_tx;
                }
            }
            return sense;
        });
    app.setEntry(sense);

    rt::Kernel kernel(device, app, &fram);
    VtopRuntime runtime(kernel, &eeprom);
    // Thresholds holding the same energy as the Capybara banks:
    // E_small on 8.9 mF -> ~0.64 V, but the booster needs 1.7 V;
    // the low threshold is clamped to the feasible minimum — an
    // inherent inefficiency of the mechanism.
    runtime.annotate(sense, 1.75);
    runtime.annotate(radio_tx, 3.0);
    runtime.install();
    kernel.start();
    simulator.runUntil(horizon);

    out.summary = sb.summarize();
    out.samples = sb.samples().size();
    out.eepromWrites = runtime.eepromWrites();
    out.thresholdChanges = runtime.stats().thresholdChanges;
    return out;
}

} // namespace

int
main()
{
    setQuiet(true);
    banner("Section 7 comparison",
           "DEBS-style V_top scaling vs switched banks (TempAlarm)");

    // Both runs replay the same Poisson sequence, but each job draws
    // it worker-side from the shared seed instead of the caller
    // pre-generating one — the V_top and Capy-P simulations fan out
    // as one batch with byte-identical output at any CAPY_JOBS.
    VtopResult vtop;
    RunMetrics capy_p;
    sweepPool().forEach(2, [&vtop, &capy_p](std::size_t i) {
        if (i == 0)
            vtop = runVtopTempAlarm(kSeed, kTaHorizon);
        else
            capy_p = runTempAlarm(Policy::CapyP, taSchedule(kSeed),
                                  kSeed);
    });

    sim::Table t({"system", "correct", "missed", "latency mean (s)",
                  "samples", "EEPROM writes / 2 h"});
    t.addRow({"V_top scaling (DEBS-style)",
              sim::percentCell(vtop.summary.fracCorrect),
              sim::cell(vtop.summary.missed),
              vtop.summary.latency.count()
                  ? sim::cell(vtop.summary.latency.mean(), 4)
                  : "-",
              sim::cell(vtop.samples), sim::cell(vtop.eepromWrites)});
    t.addRow({"Capybara (Capy-P)",
              sim::percentCell(capy_p.summary.fracCorrect),
              sim::cell(capy_p.summary.missed),
              sim::cell(capy_p.summary.latency.mean(), 4),
              sim::cell(capy_p.samples), "0"});
    t.print();

    double years_to_wearout =
        vtop.eepromWrites
            ? 100000.0 / (double(vtop.eepromWrites) * 12.0) / 365.0
            : 1e9;
    std::printf("\nEEPROM potentiometer endurance 100k writes -> "
                "projected wear-out in %.1f years at this rate\n",
                years_to_wearout);

    shapeCheck(vtop.summary.fracCorrect > 0.3,
               "V_top scaling does work — it is a legitimate "
               "reconfiguration mechanism");
    shapeCheck(capy_p.summary.fracCorrect >=
                   vtop.summary.fracCorrect,
               "switched banks detect at least as many events (no "
               "full-capacitance penalty on the sampling mode)");
    shapeCheck(capy_p.summary.latency.mean() <
                   vtop.summary.latency.mean(),
               "without pre-charged bursts, V_top alarms pay the "
               "charge on the critical path (like Capy-R)");
    shapeCheck(vtop.eepromWrites > 50,
               "every mode change wears the EEPROM potentiometer "
               "(§5.2 lifetime limit)");
    return finish();
}
