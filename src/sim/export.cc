#include "sim/export.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "sim/logging.hh"

namespace capy::sim
{

bool
writeCsv(const TimeSeries &series, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << series.csv();
    return bool(out);
}

bool
writeCsv(const std::vector<const TimeSeries *> &series,
         const std::string &path)
{
    capy_assert(!series.empty(), "no series to export");
    std::ofstream out(path);
    if (!out)
        return false;

    out << "time";
    for (const TimeSeries *s : series)
        out << ',' << s->name();
    out << '\n';

    // Union of timestamps, step interpolation via at().
    std::vector<Time> times;
    for (const TimeSeries *s : series)
        for (const auto &p : s->points())
            times.push_back(p.t);
    std::sort(times.begin(), times.end());
    times.erase(std::unique(times.begin(), times.end()), times.end());

    for (Time t : times) {
        out << t;
        for (const TimeSeries *s : series)
            out << ',' << (s->empty() ? 0.0 : s->at(t));
        out << '\n';
    }
    return bool(out);
}

bool
writeCsv(const SpanTrace &spans, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << "start,end,duration,label\n";
    for (const Span &s : spans.spans()) {
        out << s.start << ',' << s.end << ',' << s.duration() << ','
            << s.label << '\n';
    }
    return bool(out);
}

bool
writeCsv(const Histogram &hist, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << "bin_lo,bin_hi,count\n";
    if (hist.underflow() > 0)
        out << "-inf," << hist.binLo(0) << ',' << hist.underflow()
            << '\n';
    for (std::size_t i = 0; i < hist.numBins(); ++i) {
        out << hist.binLo(i) << ',' << hist.binHi(i) << ','
            << hist.binCount(i) << '\n';
    }
    if (hist.overflow() > 0)
        out << hist.binHi(hist.numBins() - 1) << ",+inf,"
            << hist.overflow() << '\n';
    return bool(out);
}

std::string
gnuplotScript(const std::string &csv_path, const std::string &title,
              const std::string &ylabel)
{
    return strfmt("set datafile separator ','\n"
                  "set key autotitle columnhead\n"
                  "set title '%s'\n"
                  "set xlabel 'time (s)'\n"
                  "set ylabel '%s'\n"
                  "set grid\n"
                  "plot '%s' using 1:2 with lines\n",
                  title.c_str(), ylabel.c_str(), csv_path.c_str());
}

} // namespace capy::sim
