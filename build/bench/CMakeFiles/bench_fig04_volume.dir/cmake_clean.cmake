file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_volume.dir/bench_fig04_volume.cc.o"
  "CMakeFiles/bench_fig04_volume.dir/bench_fig04_volume.cc.o.d"
  "bench_fig04_volume"
  "bench_fig04_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
