/**
 * @file
 * Engine performance harness: google-benchmark microbenchmarks of the
 * event-queue hot path (schedule / cancel / runNext, callback
 * dispatch) and of parallel sweep throughput, plus a machine-readable
 * perf baseline.
 *
 * After the registered benchmarks run, the binary measures two
 * headline numbers and writes them to BENCH_SIM.json (override the
 * path with CAPY_BENCH_JSON):
 *
 *  - events/sec through EventQueue::schedule + runNext, and
 *  - wall-clock for a TempAlarm sweep at 1 thread vs the configured
 *    pool (CAPY_JOBS / hardware concurrency), with the speedup.
 *
 * The JSON seeds the repo's performance trajectory: future PRs append
 * comparable snapshots instead of re-deriving a baseline by hand.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "apps/ta.hh"
#include "env/events.hh"
#include "sim/event.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/runner.hh"
#include "sim/simulator.hh"

using namespace capy;

namespace
{

// --- Event-queue hot path -------------------------------------------

void
BM_EventScheduleRun(benchmark::State &state)
{
    sim::EventQueue q;
    double t = 0.0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            q.schedule(t + double(i % 7), [] {});
        while (!q.empty())
            q.runNext();
        t += 10.0;
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventScheduleRun);

void
BM_EventScheduleCancel(benchmark::State &state)
{
    // Cancel-heavy traffic: every scheduled event is cancelled before
    // it can run, exercising the O(1) slot bump and slot reuse.
    sim::EventQueue q;
    sim::EventId ids[64];
    double t = 0.0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            ids[i] = q.schedule(t + double(i), [] {});
        for (int i = 0; i < 64; ++i)
            benchmark::DoNotOptimize(q.cancel(ids[i]));
        // Drain the stale records so heap size stays bounded.
        benchmark::DoNotOptimize(q.empty());
        t += 100.0;
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventScheduleCancel);

void
BM_EventRetimerChurn(benchmark::State &state)
{
    // The device-model pattern: one pending timeout that is
    // repeatedly cancelled and rescheduled as conditions change.
    sim::EventQueue q;
    double t = 0.0;
    sim::EventId pending = q.schedule(1e18, [] {});
    for (auto _ : state) {
        q.cancel(pending);
        pending = q.schedule(1e18 + t, [] {});
        t += 1.0;
        benchmark::DoNotOptimize(pending);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventRetimerChurn);

void
BM_CallbackInlineDispatch(benchmark::State &state)
{
    // A capture the size of a typical device callback (two pointers):
    // must stay within Callback's inline buffer — no allocation.
    std::uint64_t counter = 0;
    double weight = 1.0;
    static_assert(sim::Callback::fitsInline<decltype([&counter,
                                                      &weight] {
        counter += std::uint64_t(weight);
    })>());
    for (auto _ : state) {
        sim::Callback cb([&counter, &weight] {
            counter += std::uint64_t(weight);
        });
        cb();
        benchmark::DoNotOptimize(counter);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CallbackInlineDispatch);

// --- Sweep throughput -----------------------------------------------

/** One TempAlarm run of the kind every fig bench sweeps over. */
apps::RunMetrics
sweepJob(std::uint64_t seed)
{
    sim::Rng rng(seed, 0x7a);
    auto sched =
        env::EventSchedule::poissonCount(rng, 10, 600.0, 30.0);
    return apps::runTempAlarm(core::Policy::CapyP, sched, seed, 600.0);
}

void
BM_SweepTempAlarm(benchmark::State &state)
{
    setQuiet(true);
    auto threads = unsigned(state.range(0));
    sim::BatchRunner pool(threads);
    for (auto _ : state) {
        auto runs = pool.map(8, [](std::size_t i) {
            return sweepJob(std::uint64_t(i) + 1);
        });
        benchmark::DoNotOptimize(runs.front().summary.correct);
    }
    // Eight simulated runs of 600 s each per iteration.
    state.SetItemsProcessed(state.iterations() * 8 * 600);
}
BENCHMARK(BM_SweepTempAlarm)
    ->Arg(1)
    ->Arg(int(sim::BatchRunner::defaultThreads()))
    ->Unit(benchmark::kMillisecond);

// --- Machine-readable baseline (BENCH_SIM.json) ---------------------

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Repetitions per headline measurement: the comparator gates on
 *  these numbers, so take the best of a few runs to shed scheduler
 *  noise rather than a single noisy sample. */
constexpr int kMeasureReps = 3;

/** Events/sec through schedule+runNext on a warm queue (best of
 *  kMeasureReps). */
double
measureEventRate(std::uint64_t &events_out)
{
    double best = 0.0;
    for (int rep = 0; rep < kMeasureReps; ++rep) {
        sim::EventQueue q;
        std::uint64_t target = 2'000'000;
        double t = 0.0;
        auto t0 = std::chrono::steady_clock::now();
        while (q.executed() < target) {
            for (int i = 0; i < 64; ++i)
                q.schedule(t + double(i % 7), [] {});
            while (!q.empty())
                q.runNext();
            t += 10.0;
        }
        double dt = secondsSince(t0);
        events_out = q.executed();
        best = std::max(best, double(q.executed()) / dt);
    }
    return best;
}

/** Wall-clock for the reference sweep at a given pool size (best of
 *  kMeasureReps). */
double
measureSweep(unsigned threads, std::size_t jobs)
{
    sim::BatchRunner pool(threads);
    double best = 1e300;
    for (int rep = 0; rep < kMeasureReps; ++rep) {
        auto t0 = std::chrono::steady_clock::now();
        auto runs = pool.map(jobs, [](std::size_t i) {
            return sweepJob(std::uint64_t(i) + 1);
        });
        benchmark::DoNotOptimize(runs.back().summary.correct);
        best = std::min(best, secondsSince(t0));
    }
    return best;
}

void
writeBaseline()
{
    const char *path = std::getenv("CAPY_BENCH_JSON");
    if (path == nullptr)
        path = "BENCH_SIM.json";

    std::uint64_t hot_events = 0;
    double events_per_sec = measureEventRate(hot_events);

    unsigned pool_threads = sim::BatchRunner::defaultThreads();
    const std::size_t jobs = 16;
    // Warm-up pass so first-touch costs don't skew the serial side.
    measureSweep(1, 2);
    double serial_s = measureSweep(1, jobs);
    double parallel_s = measureSweep(pool_threads, jobs);
    double speedup = parallel_s > 0.0 ? serial_s / parallel_s : 0.0;

    std::FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema\": \"capy-bench-sim-v2\",\n");
    std::fprintf(f, "  \"event_queue\": {\n");
    std::fprintf(f, "    \"events_per_sec\": %.6g,\n", events_per_sec);
    std::fprintf(f, "    \"events_measured\": %llu,\n",
                 (unsigned long long)hot_events);
    std::fprintf(f, "    \"callback_heap_fallbacks\": %llu\n",
                 (unsigned long long)
                     sim::EventQueue::callbackHeapFallbacks());
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"sweep\": {\n");
    std::fprintf(f, "    \"workload\": \"TempAlarm CapyP 600s x%zu\",\n",
                 jobs);
    std::fprintf(f, "    \"jobs\": %zu,\n", jobs);
    std::fprintf(f, "    \"serial_wall_s\": %.6g,\n", serial_s);
    std::fprintf(f, "    \"parallel_wall_s\": %.6g,\n", parallel_s);
    std::fprintf(f, "    \"threads\": %u,\n", pool_threads);
    std::fprintf(f, "    \"speedup_vs_1_thread\": %.4g\n", speedup);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"hardware_concurrency\": %u\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("perf baseline written to %s (%.3g events/s, sweep "
                "speedup %.2fx at %u threads)\n",
                path, events_per_sec, speedup, pool_threads);
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    writeBaseline();
    // Hot-path contract: nothing the engine benches exercised —
    // event-queue traffic, callback dispatch, full TempAlarm sweeps —
    // may overflow Callback's inline buffer. A non-zero count means a
    // capture grew past kInlineSize and dispatch silently went to the
    // heap (ROADMAP item); fail loudly instead.
    std::uint64_t heap_falls = sim::EventQueue::callbackHeapFallbacks();
    if (heap_falls != 0) {
        std::fprintf(stderr,
                     "FAIL: %llu event callback(s) overflowed the "
                     "%zu-byte inline buffer and heap-allocated\n",
                     (unsigned long long)heap_falls,
                     sim::Callback::kInlineSize);
        return 1;
    }
    std::printf("callback heap fallbacks: 0 (inline buffer holds the "
                "hot path)\n");
    return 0;
}
