/**
 * @file
 * Radio models. Transmission is the applications' largest atomic
 * workload: the full packet must be sent without a power failure, and
 * its duration/power footprint sets the big-bank provisioning in
 * every experiment.
 */

#ifndef CAPY_DEV_RADIO_HH
#define CAPY_DEV_RADIO_HH

#include <cstdint>
#include <string>

#include "sim/random.hh"

namespace capy::dev
{

/** Static parameters of a radio. */
struct RadioSpec
{
    std::string name;
    /** Rail power while transmitting, W. */
    double txPower = 0.0;
    /**
     * Radio power-up and protocol-stack initialization that must
     * complete atomically with the transmission, s. Dominates the
     * energy of a BLE session (airtime alone is ~1 mJ; the session
     * is tens of mJ, which is what the paper's multi-mF radio banks
     * are provisioned for).
     */
    double startupDuration = 0.0;
    /** Fixed per-packet airtime overhead, s. */
    double baseDuration = 0.0;
    /** Additional airtime per payload byte, s. */
    double perByteDuration = 0.0;
    /**
     * Probability a transmitted packet is lost to interference — the
     * paper's "non-ideal behaviour that manifests even on continuous
     * power" (§6.2).
     */
    double lossRate = 0.0;
};

/**
 * CC2650 BLE advertisement-style transmission; calibrated so a 25-byte
 * packet costs ~35 ms as §2 states.
 */
RadioSpec bleRadio();

/** CapySat downlink: 1-byte packets with 1064x redundant encoding,
 *  250 ms at ~30 mA (§6.6). */
RadioSpec kicksatRadio();

/** Atomic duration of a transmission session (startup + airtime) for
 *  a packet with @p payload_bytes of payload, s. */
double txDuration(const RadioSpec &spec, std::size_t payload_bytes);

/** Airtime alone (base + per-byte), s. */
double airTime(const RadioSpec &spec, std::size_t payload_bytes);

/**
 * A radio instance with delivery accounting. Transmission timing and
 * energy are handled by the task/workload machinery; attemptDelivery
 * resolves whether the receiver got the packet.
 */
class Radio
{
  public:
    explicit Radio(RadioSpec radio_spec) : radioSpec(radio_spec) {}

    const RadioSpec &spec() const { return radioSpec; }

    /**
     * Resolve delivery of one completed transmission.
     * @retval true the packet reached the receiver.
     */
    bool attemptDelivery(sim::Rng &rng);

    std::uint64_t packetsSent() const { return numSent; }
    std::uint64_t packetsLost() const { return numLost; }

  private:
    RadioSpec radioSpec;
    std::uint64_t numSent = 0;
    std::uint64_t numLost = 0;
};

} // namespace capy::dev

#endif // CAPY_DEV_RADIO_HH
