/**
 * @file
 * Ablation (§5.2): normally-open vs normally-closed switch variants
 * under input power weak enough that large-bank charges outlive the
 * latch retention. NO reverts to the small default bank (fast
 * recovery, but wasted boots and redistribution losses when the
 * configuration is re-applied); NC reverts to maximum capacity (slow,
 * but the task is guaranteed to complete on the first boot after the
 * charge).
 */

#include <cstdio>
#include <memory>

#include "bench_util.hh"
#include "core/runtime.hh"
#include "dev/device.hh"
#include "power/parts.hh"
#include "rt/kernel.hh"
#include "sim/logging.hh"
#include "sim/runner.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"

using namespace capy;
using namespace capy::bench;

namespace
{

struct Result
{
    double firstTaskAt = -1.0;
    std::uint64_t boots = 0;
    std::uint64_t reversions = 0;
    std::uint64_t reconfigs = 0;
    std::uint64_t powerFailures = 0;
};

Result
run(power::SwitchKind kind, double harvest_w)
{
    Result out;
    sim::Simulator simulator;
    power::PowerSystem::Spec spec;
    auto ps = std::make_unique<power::PowerSystem>(
        spec,
        std::make_unique<power::RegulatedSupply>(harvest_w, 3.3));
    ps->addBank("small", power::parts::x5r100uF().parallel(4));
    power::SwitchSpec sw;
    sw.kind = kind;
    int big = ps->addSwitchedBank(
        "big", power::parts::edlc7_5mF().parallel(6), sw);
    power::PowerSystem *ps_raw = ps.get();
    dev::Device device(simulator, std::move(ps), dev::msp430fr5969(),
                       dev::Device::PowerMode::Intermittent);

    core::ModeRegistry registry;
    core::ModeId small_mode = registry.define("small", {});
    core::ModeId big_mode = registry.define("big", {big});
    (void)small_mode;

    rt::App app;
    // A big atomic task: ~1.5 s of full-power operation, feasible
    // only with the large bank connected and charged.
    rt::Task *task = app.addTask(
        "big-task", 1.5, 0.0, [&](rt::Kernel &k) -> const rt::Task * {
            if (out.firstTaskAt < 0.0)
                out.firstTaskAt = k.now();
            return nullptr;
        });
    rt::Kernel kernel(device, app);
    core::Runtime runtime(kernel, registry, core::Policy::CapyP);
    runtime.annotate(task, core::Annotation::config(big_mode));
    runtime.install();
    kernel.start();
    simulator.runUntil(7200.0);

    out.boots = device.stats().boots;
    out.powerFailures = device.stats().powerFailures;
    out.reversions = ps_raw->bankSwitch(big)->reversions();
    out.reconfigs = runtime.stats().reconfigurations;
    return out;
}

} // namespace

int
main()
{
    setQuiet(true);
    banner("Section 5.2 ablation",
           "normally-open vs normally-closed bank switches");
    const double harvest = 0.45e-3;
    std::printf("harvest: %.2f mW — large-bank charge (~6-8 min) "
                "outlives the ~3 min latch retention\n\n",
                harvest * 1e3);

    const power::SwitchKind kinds[2] = {
        power::SwitchKind::NormallyOpen,
        power::SwitchKind::NormallyClosed};
    sim::BatchRunner pool;
    auto results = pool.map(2, [&](std::size_t i) {
        return run(kinds[i], harvest);
    });
    const Result &no = results[0];
    const Result &nc = results[1];

    sim::Table t({"variant", "task completed at (s)", "boots",
                  "latch reversions", "switch reconfigs",
                  "power failures"});
    t.addRow({"normally-open (NO)",
              no.firstTaskAt < 0 ? "never" : sim::cell(no.firstTaskAt, 4),
              sim::cell(no.boots), sim::cell(no.reversions),
              sim::cell(no.reconfigs), sim::cell(no.powerFailures)});
    t.addRow({"normally-closed (NC)",
              nc.firstTaskAt < 0 ? "never" : sim::cell(nc.firstTaskAt, 4),
              sim::cell(nc.boots), sim::cell(nc.reversions),
              sim::cell(nc.reconfigs), sim::cell(nc.powerFailures)});
    t.print();

    shapeCheck(no.reversions >= 1,
               "NO: the latch decays during the long charge and the "
               "switch reverts open");
    shapeCheck(no.boots > nc.boots,
               "NO: the small default bank recharges quickly, causing "
               "extra (wasted) boot cycles");
    shapeCheck(nc.firstTaskAt > 0.0,
               "NC: reverting to maximum capacity guarantees the task "
               "eventually completes on a first boot");
    shapeCheck(nc.reversions <= no.reversions,
               "NC state loss is absorbed by the all-connected "
               "default");
    return finish();
}
