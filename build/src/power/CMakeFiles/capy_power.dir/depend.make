# Empty dependencies file for capy_power.
# This may be replaced when dependencies are built.
