/**
 * @file
 * Reproduces Fig. 8: event detection accuracy for the three
 * applications (TA; GRC in both variants; CSR) under the four power
 * systems (Pwr, Fixed, Capy-R, Capy-P), on Poisson event sequences
 * with the paper's counts/horizons (TA: 50 events / 120 min;
 * GRC/CSR: 80 events / 42 min).
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "apps/csr.hh"
#include "apps/grc.hh"
#include "apps/ta.hh"
#include "bench_util.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace capy;
using namespace capy::apps;
using namespace capy::bench;
using namespace capy::core;

namespace
{

constexpr std::uint64_t kSeed = 20180324;  // ASPLOS'18 dates

struct AppRuns
{
    const char *name;
    RunMetrics byPolicy[4];
};

const Policy kPolicies[4] = {Policy::Continuous, Policy::Fixed,
                             Policy::CapyR, Policy::CapyP};

double
frac(const RunMetrics &m, std::size_t n)
{
    return m.summary.total ? double(n) / double(m.summary.total) : 0.0;
}

} // namespace

int
main()
{
    setQuiet(true);
    banner("Figure 8", "event detection accuracy");

    auto ts = taSchedule(kSeed);
    auto gs = grcSchedule(kSeed);
    std::printf("event sequences: TA %zu events / %.0f min, GRC/CSR "
                "%zu events / %.0f min (Poisson)\n\n",
                ts.size(), kTaHorizon / 60.0, gs.size(),
                kGrcHorizon / 60.0);

    // One independent job per app x policy cell, fanned over the
    // sweep pool; results come back in submission order so the table
    // is identical at any CAPY_JOBS.
    std::vector<MetricsJob> jobs;
    for (int i = 0; i < 4; ++i)
        jobs.push_back([&ts, p = kPolicies[i]] {
            return runTempAlarm(p, ts, kSeed);
        });
    for (int i = 0; i < 4; ++i)
        jobs.push_back([&gs, p = kPolicies[i]] {
            return runGestureRemote(GrcVariant::Fast, p, gs, kSeed);
        });
    for (int i = 0; i < 4; ++i)
        jobs.push_back([&gs, p = kPolicies[i]] {
            return runGestureRemote(GrcVariant::Compact, p, gs, kSeed);
        });
    for (int i = 0; i < 4; ++i)
        jobs.push_back([&gs, p = kPolicies[i]] {
            return runCorrSense(p, gs, kSeed);
        });
    auto results = runMetricsBatch(jobs);

    std::vector<AppRuns> apps = {{"TempAlarm", {}},
                                 {"GestureFast", {}},
                                 {"GestureCompact", {}},
                                 {"CorrSense", {}}};
    for (std::size_t a = 0; a < apps.size(); ++a)
        for (int i = 0; i < 4; ++i)
            apps[a].byPolicy[i] = results[a * 4 + std::size_t(i)];

    sim::Table t({"app", "system", "correct", "misclassified",
                  "proximity-only", "missed", ""});
    for (const auto &a : apps) {
        for (int i = 0; i < 4; ++i) {
            const auto &m = a.byPolicy[i];
            t.addRow({a.name, policyName(kPolicies[i]),
                      sim::percentCell(frac(m, m.summary.correct)),
                      sim::percentCell(frac(m, m.summary.misclassified)),
                      sim::percentCell(frac(m, m.summary.proximityOnly)),
                      sim::percentCell(frac(m, m.summary.missed)),
                      bar(frac(m, m.summary.correct), 1.0, 25)});
        }
    }
    t.print();

    auto correct = [&](int app, int pol) {
        return apps[std::size_t(app)].byPolicy[pol].summary.fracCorrect;
    };
    enum { PWR, FIXED, CAPYR, CAPYP };

    shapeCheck(correct(0, PWR) >= 0.9 && correct(1, PWR) >= 0.85 &&
                   correct(3, PWR) >= 0.85,
               "continuous power detects nearly all events (with "
               "small inherent sensor/radio losses)");
    shapeCheck(correct(0, CAPYP) >= 1.5 * correct(0, FIXED),
               "TA: Capybara improves accuracy well over Fixed "
               "(paper: 98% vs 46%)");
    shapeCheck(correct(1, CAPYP) >= 2.0 * correct(1, FIXED),
               "GRC-Fast: Capy-P improves 2x+ over Fixed "
               "(paper: 76% vs 18%)");
    shapeCheck(correct(2, CAPYP) >= 2.0 * correct(2, FIXED),
               "GRC-Compact: Capy-P improves 2x+ over Fixed "
               "(paper: 75% vs 18%)");
    shapeCheck(correct(3, CAPYP) >= 2.0 * correct(3, FIXED),
               "CSR: Capy-P improves 2x+ over Fixed "
               "(paper: >=89% vs 56%)");
    shapeCheck(correct(1, CAPYR) <= 0.1 && correct(2, CAPYR) <= 0.1,
               "GRC: Capy-R reports (almost) no gestures — the "
               "charging delay after proximity outlives the motion");
    shapeCheck(correct(0, CAPYR) >= 1.5 * correct(0, FIXED),
               "TA: even Capy-R (no bursts) beats Fixed on accuracy");
    double prox_r =
        frac(apps[1].byPolicy[CAPYR],
             apps[1].byPolicy[CAPYR].summary.proximityOnly);
    shapeCheck(prox_r >= 0.3,
               "GRC Capy-R mostly sees proximity without a decoded "
               "gesture");
    return finish();
}
