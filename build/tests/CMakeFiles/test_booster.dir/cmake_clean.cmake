file(REMOVE_RECURSE
  "CMakeFiles/test_booster.dir/test_booster.cc.o"
  "CMakeFiles/test_booster.dir/test_booster.cc.o.d"
  "test_booster"
  "test_booster.pdb"
  "test_booster[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_booster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
