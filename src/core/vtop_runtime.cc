#include "core/vtop_runtime.hh"

#include "sim/logging.hh"

namespace capy::core
{

VtopRuntime::VtopRuntime(rt::Kernel &kernel_ref,
                         dev::NvMemory *eeprom_dev)
    : kernel(kernel_ref), eeprom(eeprom_dev)
{}

void
VtopRuntime::annotate(const rt::Task *task, double v_top)
{
    capy_assert(task != nullptr, "annotate(nullptr)");
    capy_assert(v_top > 0.0, "bad threshold %g", v_top);
    thresholds[task] = v_top;
}

void
VtopRuntime::install()
{
    capy_assert(!installed, "runtime already installed");
    installed = true;
    controller = std::make_unique<VtopController>(
        kernel.device().powerSystem(), eeprom);
    kernel.setPreTaskGate(
        [this](const rt::Task &task, std::function<void()> proceed) {
            gate(task, std::move(proceed));
        });
}

void
VtopRuntime::gate(const rt::Task &task, std::function<void()> proceed)
{
    auto it = thresholds.find(&task);
    if (it == thresholds.end()) {
        proceed();
        return;
    }
    auto &ps = kernel.device().powerSystem();
    double target = it->second;
    if (controller->threshold() != target) {
        controller->setThreshold(target);
        ++rtStats.thresholdChanges;
    }
    // Execute when the capacitor holds the threshold's energy; pause
    // to charge otherwise. Unlike switched banks there is no small
    // default bank: the full capacitance charges every time.
    if (ps.storageVoltage() + 0.05 < target) {
        ++rtStats.rechargePauses;
        kernel.device().powerDown();
        return;
    }
    proceed();
}

} // namespace capy::core
