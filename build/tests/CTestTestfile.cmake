# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_solver[1]_include.cmake")
include("/root/repo/build/tests/test_capacitor[1]_include.cmake")
include("/root/repo/build/tests/test_booster[1]_include.cmake")
include("/root/repo/build/tests/test_power_system[1]_include.cmake")
include("/root/repo/build/tests/test_device[1]_include.cmake")
include("/root/repo/build/tests/test_kernel[1]_include.cmake")
include("/root/repo/build/tests/test_core_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_env[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_allocate[1]_include.cmake")
include("/root/repo/build/tests/test_checkpoint[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_federated[1]_include.cmake")
include("/root/repo/build/tests/test_export[1]_include.cmake")
include("/root/repo/build/tests/test_vtop_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_misc[1]_include.cmake")
include("/root/repo/build/tests/test_formulas[1]_include.cmake")
