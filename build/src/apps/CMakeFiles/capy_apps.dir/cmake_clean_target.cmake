file(REMOVE_RECURSE
  "libcapy_apps.a"
)
