# Empty dependencies file for energy_trace.
# This may be replaced when dependencies are built.
