file(REMOVE_RECURSE
  "libcapy_core.a"
)
