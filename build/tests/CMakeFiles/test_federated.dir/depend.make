# Empty dependencies file for test_federated.
# This may be replaced when dependencies are built.
