/**
 * @file
 * Deterministic parallel batch execution for independent simulations.
 *
 * Every experiment in the evaluation is a sweep of independent runs
 * (seeds x policies x capacitances); BatchRunner fans a batch of such
 * jobs over a fixed pool of threads and hands the results back in
 * submission order, so sweep output is byte-identical at any thread
 * count. There is no work stealing and no shared mutable state
 * between jobs: each job owns its Simulator, and determinism follows
 * from job independence plus index-ordered result placement.
 */

#ifndef CAPY_SIM_RUNNER_HH
#define CAPY_SIM_RUNNER_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace capy::sim
{

/**
 * Fixed-size thread pool running batches of independent jobs.
 *
 * The calling thread participates in every batch, so a runner built
 * with 1 thread spawns no workers and degenerates to the plain serial
 * loop. Jobs must not touch shared mutable state; each receives its
 * job index and may be executed on any pool thread.
 *
 * Exceptions thrown by jobs are captured and rethrown to the batch
 * submitter after the batch drains; when several jobs throw, the one
 * with the lowest index wins so failure reporting is deterministic
 * too.
 */
class BatchRunner
{
  public:
    /**
     * @param threads pool size including the calling thread;
     *        0 picks defaultThreads().
     */
    explicit BatchRunner(unsigned threads = 0);

    /** Joins all workers; no batch may be in flight. */
    ~BatchRunner();

    BatchRunner(const BatchRunner &) = delete;
    BatchRunner &operator=(const BatchRunner &) = delete;

    /** Pool size including the calling thread. */
    unsigned threads() const { return unsigned(workers.size()) + 1; }

    /**
     * Pool size used when none is requested: the CAPY_JOBS
     * environment variable when set to a positive integer, otherwise
     * std::thread::hardware_concurrency().
     */
    static unsigned defaultThreads();

    /**
     * Run fn(0) .. fn(n-1) across the pool; blocks until all complete.
     * Not reentrant: jobs must not submit nested batches.
     */
    void forEach(std::size_t n,
                 const std::function<void(std::size_t)> &fn);

    /**
     * Run fn(i) for i in [0, n) and collect the returned values in
     * submission (index) order. The result type must be default-
     * constructible.
     */
    template <typename Fn>
    auto
    map(std::size_t n, Fn &&fn)
        -> std::vector<decltype(fn(std::size_t{}))>
    {
        using R = decltype(fn(std::size_t{}));
        std::vector<R> out(n);
        forEach(n, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /** map() over a vector of inputs: fn(items[i]) in item order. */
    template <typename T, typename Fn>
    auto
    mapItems(const std::vector<T> &items, Fn &&fn)
        -> std::vector<decltype(fn(items.front()))>
    {
        return map(items.size(),
                   [&](std::size_t i) { return fn(items[i]); });
    }

  private:
    void workerLoop();

    /** Claim and run the next contiguous chunk of job indices. */
    void runChunk(std::unique_lock<std::mutex> &lock);

    /**
     * Per-batch claim granularity: enough chunks for load balance
     * (~4 per thread), a single chunk when serial, capped so a
     * straggler never holds more than 1024 jobs.
     */
    static std::size_t chunkFor(std::size_t n, unsigned pool);

    std::vector<std::thread> workers;

    std::mutex mtx;
    std::condition_variable wake;      ///< workers: batch available
    std::condition_variable batchDone; ///< submitter: batch drained
    const std::function<void(std::size_t)> *body = nullptr;
    std::size_t batchSize = 0; ///< 0 = no batch in flight
    std::size_t nextIndex = 0;
    std::size_t remaining = 0;
    std::size_t chunkSize = 1;
    bool shuttingDown = false;
    /** (job index, exception) pairs captured during the batch. */
    std::vector<std::pair<std::size_t, std::exception_ptr>> errors;
};

} // namespace capy::sim

#endif // CAPY_SIM_RUNNER_HH
