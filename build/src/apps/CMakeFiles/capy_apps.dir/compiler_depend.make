# Empty compiler generated dependencies file for capy_apps.
# This may be replaced when dependencies are built.
