#include "core/provision.hh"

#include <cmath>
#include <memory>

#include "dev/device.hh"
#include "power/booster.hh"
#include "power/harvester.hh"
#include "rt/kernel.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

namespace capy::core
{

TaskEnergy
measureTaskEnergy(const rt::Task &task, const dev::McuSpec &mcu)
{
    TaskEnergy e;
    e.railPower = mcu.activePower + task.extraPower;
    e.duration = task.duration + mcu.bootTime;
    return e;
}

double
requiredCapacitance(const TaskEnergy &demand,
                    const power::PowerSystem::Spec &spec,
                    const power::CapacitorSpec &unit, double derating)
{
    capy_assert(derating >= 1.0, "derating %g must be >= 1", derating);
    double vtop = std::min(spec.maxStorageVoltage, unit.ratedVoltage);
    // Storage-side energy demand: rail energy through the output
    // booster plus its quiescent draw for the duration.
    double e_in = storageDrawPower(spec.output, demand.railPower) *
                  demand.duration;
    e_in *= derating;

    // Fixed point: C -> ESR(C) -> brown-out floor -> C.
    double c = 2.0 * e_in /
               (vtop * vtop -
                spec.output.minInputRun * spec.output.minInputRun);
    for (int iter = 0; iter < 32; ++iter) {
        double units = std::max(1.0, c / unit.capacitance);
        double esr = unit.esr / units;
        double v_bo =
            power::brownoutVoltage(spec.output, demand.railPower, esr);
        capy_assert(v_bo < vtop,
                    "part '%s' cannot serve %.3g W: brown-out floor "
                    "%.3g V above charge target %.3g V",
                    unit.part.c_str(), demand.railPower, v_bo, vtop);
        double c_next = 2.0 * e_in / (vtop * vtop - v_bo * v_bo);
        if (std::abs(c_next - c) <= 1e-9 * c) {
            c = c_next;
            break;
        }
        c = c_next;
    }
    return c;
}

ProvisionResult
provisionByTrial(const rt::Task &task, const dev::McuSpec &mcu,
                 const power::PowerSystem::Spec &spec,
                 const power::CapacitorSpec &unit, double harvest_power,
                 int max_units)
{
    capy_assert(max_units >= 1, "max_units must be >= 1");
    for (int n = 1; n <= max_units; ++n) {
        sim::Simulator simulator;
        auto ps = std::make_unique<power::PowerSystem>(
            spec, std::make_unique<power::RegulatedSupply>(
                      harvest_power, 3.3));
        ps->addBank("trial", unit.parallel(static_cast<std::size_t>(n)));
        power::PowerSystem *ps_raw = ps.get();
        dev::Device device(simulator, std::move(ps), mcu,
                           dev::Device::PowerMode::Intermittent);

        rt::App app;
        bool completed = false;
        app.addTask(task.name, task.duration, task.extraPower,
                    [&](rt::Kernel &) -> const rt::Task * {
                        completed = true;
                        return nullptr;
                    });
        rt::Kernel kernel(device, app);

        double first_full = -1.0;
        kernel.start();
        // Allow several charge/attempt cycles before giving up on
        // this size; an undersized bank fails on every attempt.
        sim::Time horizon = 3600.0;
        capy::setQuiet(true);
        while (simulator.now() < horizon && !completed &&
               device.stats().powerFailures < 4) {
            if (simulator.pendingEvents() == 0)
                break;  // device declared itself stuck
            simulator.runUntil(
                std::min(horizon, simulator.now() + 10.0));
            if (first_full < 0.0 &&
                ps_raw->stats().chargeCompletions > 0) {
                first_full = simulator.now();
            }
        }
        capy::setQuiet(false);

        if (completed) {
            return ProvisionResult{
                .feasible = true,
                .unitCount = n,
                .capacitance = unit.capacitance * n,
                .chargeTime = first_full,
            };
        }
    }
    return ProvisionResult{};
}

} // namespace capy::core
