/**
 * @file
 * Capacitor models: per-part electrical/mechanical specifications,
 * parallel composition, and a charge-holding CapacitorBank.
 *
 * The three technologies the paper provisions with (ceramic X5R,
 * tantalum, EDLC supercapacitor) differ in the parameters that drive
 * the evaluation: volumetric energy density (Fig. 4), equivalent
 * series resistance (extractable-energy floor, §2.2.2), leakage
 * (retention of pre-charged burst banks, §4.2), and charge-cycle
 * endurance (wear levelling discussion, §5.2).
 */

#ifndef CAPY_POWER_CAPACITOR_HH
#define CAPY_POWER_CAPACITOR_HH

#include <string>
#include <vector>

namespace capy::power
{

/** Capacitor dielectric/construction technology. */
enum class CapTech
{
    Ceramic,   ///< MLCC, e.g. X5R: low density, very low ESR/leakage
    Tantalum,  ///< mid density, moderate ESR
    Edlc,      ///< supercapacitor: high density, high ESR and leakage
};

/** Human-readable technology name. */
const char *capTechName(CapTech tech);

/**
 * Electrical and mechanical specification of one capacitor part (or a
 * parallel composite of parts).
 */
struct CapacitorSpec
{
    std::string part;          ///< catalog name, e.g. "X5R-100uF"
    CapTech tech = CapTech::Ceramic;
    double capacitance = 0.0;  ///< F
    double esr = 0.0;          ///< ohm, series
    double leakageCurrent = 0.0;  ///< A at rated voltage
    double ratedVoltage = 0.0; ///< V
    double volume = 0.0;       ///< mm^3, package volume
    double cycleEndurance = 0.0;  ///< rated full charge-discharge cycles

    /**
     * Effective parallel leakage resistance at rated voltage
     * (R = V_rated / I_leak); infinity when leakage is zero.
     */
    double leakageResistance() const;

    /** Combine @p n identical parts in parallel. */
    CapacitorSpec parallel(std::size_t n) const;
};

/** Parallel composition of heterogeneous parts into one composite. */
CapacitorSpec parallelCompose(const std::vector<CapacitorSpec> &parts);

/**
 * A capacitor (or composite) holding charge. Tracks stored energy;
 * voltage and charge derive from E = C V^2 / 2.
 */
class CapacitorBank
{
  public:
    CapacitorBank() = default;

    /** @param bank_name label used in traces and errors. */
    CapacitorBank(std::string bank_name, CapacitorSpec composite);

    const std::string &name() const { return bankName; }
    const CapacitorSpec &spec() const { return composite; }
    double capacitance() const { return composite.capacitance; }
    double esr() const { return composite.esr; }

    /** Stored energy in joules. */
    double energy() const { return storedEnergy; }

    /** Terminal voltage, sqrt(2E/C). */
    double voltage() const;

    /** Stored charge, C*V. */
    double charge() const;

    /** Energy this bank would store at voltage @p v. */
    double energyAtVoltage(double v) const;

    /** Set stored energy directly (clamped at >= 0). */
    void setEnergy(double joules);

    /** Set stored energy via a terminal voltage. */
    void setVoltage(double v);

    /**
     * Add (or with negative @p joules remove) energy; clamps at zero
     * and warns if the resulting voltage exceeds the rated voltage.
     */
    void deposit(double joules);

    /** Count one full charge-discharge cycle against endurance. */
    void recordCycle() { ++cycles; }

    /** Charge-discharge cycles recorded so far. */
    std::uint64_t cyclesUsed() const { return cycles; }

  private:
    std::string bankName;
    CapacitorSpec composite;
    double storedEnergy = 0.0;
    std::uint64_t cycles = 0;
};

/**
 * Redistribute charge among banks connected in parallel: all end at
 * the common voltage V = (sum q_i) / (sum C_i). Charge is conserved;
 * energy is not (the physical redistribution loss when connecting
 * capacitors at different voltages).
 *
 * @return the common voltage after redistribution.
 */
double equalizeParallel(std::vector<CapacitorBank *> &banks);

} // namespace capy::power

#endif // CAPY_POWER_CAPACITOR_HH
