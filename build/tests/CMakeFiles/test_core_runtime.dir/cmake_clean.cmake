file(REMOVE_RECURSE
  "CMakeFiles/test_core_runtime.dir/test_core_runtime.cc.o"
  "CMakeFiles/test_core_runtime.dir/test_core_runtime.cc.o.d"
  "test_core_runtime"
  "test_core_runtime.pdb"
  "test_core_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
