/**
 * @file
 * Command-line simulation runner: run any paper application under any
 * power-system policy with chosen seed/horizon, print the run
 * metrics, and optionally export the per-task energy profile.
 *
 * Usage:
 *   capybara_cli --app ta|grc-fast|grc-compact|csr
 *                [--policy pwr|fixed|capy-r|capy-p]   (default all)
 *                [--seed N] [--horizon S] [--events N]
 *
 * Examples:
 *   capybara_cli --app ta
 *   capybara_cli --app grc-fast --policy capy-p --seed 7
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/csr.hh"
#include "apps/grc.hh"
#include "apps/ta.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace capy;
using namespace capy::apps;
using namespace capy::core;

namespace
{

struct Options
{
    std::string app = "ta";
    std::string policy = "all";
    std::uint64_t seed = 2018;
    double horizon = -1.0;
    std::size_t events = 0;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --app ta|grc-fast|grc-compact|csr "
                 "[--policy pwr|fixed|capy-r|capy-p|all] [--seed N] "
                 "[--horizon S] [--events N]\n",
                 argv0);
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        auto need = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                usage(argv[0]);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--app"))
            opt.app = need("--app");
        else if (!std::strcmp(argv[i], "--policy"))
            opt.policy = need("--policy");
        else if (!std::strcmp(argv[i], "--seed"))
            opt.seed = std::strtoull(need("--seed"), nullptr, 10);
        else if (!std::strcmp(argv[i], "--horizon"))
            opt.horizon = std::strtod(need("--horizon"), nullptr);
        else if (!std::strcmp(argv[i], "--events"))
            opt.events = std::strtoul(need("--events"), nullptr, 10);
        else
            usage(argv[0]);
    }
    return opt;
}

std::vector<Policy>
policiesFor(const std::string &name, const char *argv0)
{
    if (name == "all")
        return {Policy::Continuous, Policy::Fixed, Policy::CapyR,
                Policy::CapyP};
    if (name == "pwr")
        return {Policy::Continuous};
    if (name == "fixed")
        return {Policy::Fixed};
    if (name == "capy-r")
        return {Policy::CapyR};
    if (name == "capy-p")
        return {Policy::CapyP};
    std::fprintf(stderr, "unknown policy '%s'\n", name.c_str());
    usage(argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    Options opt = parse(argc, argv);

    bool is_ta = opt.app == "ta";
    double horizon =
        opt.horizon > 0 ? opt.horizon
                        : (is_ta ? kTaHorizon : kGrcHorizon);
    std::size_t events =
        opt.events > 0 ? opt.events : (is_ta ? kTaEvents : kGrcEvents);

    sim::Rng rng(opt.seed, is_ta ? 0x7a : 0x9c);
    auto sched = env::EventSchedule::poissonCount(rng, events, horizon,
                                                  is_ta ? 60.0 : 30.0);

    std::printf("%s: %zu events over %.0f s (seed %llu)\n\n",
                opt.app.c_str(), sched.size(), horizon,
                (unsigned long long)opt.seed);

    sim::Table t({"system", "correct", "misclassified", "missed",
                  "latency mean (s)", "samples", "boots",
                  "power failures"});
    for (Policy p : policiesFor(opt.policy, argv[0])) {
        RunMetrics m;
        if (opt.app == "ta")
            m = runTempAlarm(p, sched, opt.seed, horizon);
        else if (opt.app == "grc-fast")
            m = runGestureRemote(GrcVariant::Fast, p, sched, opt.seed,
                                 horizon);
        else if (opt.app == "grc-compact")
            m = runGestureRemote(GrcVariant::Compact, p, sched,
                                 opt.seed, horizon);
        else if (opt.app == "csr")
            m = runCorrSense(p, sched, opt.seed, horizon);
        else
            usage(argv[0]);
        t.addRow({policyName(p),
                  sim::percentCell(m.summary.fracCorrect),
                  sim::cell(m.summary.misclassified),
                  sim::cell(m.summary.missed),
                  m.summary.latency.count()
                      ? sim::cell(m.summary.latency.mean(), 4)
                      : "-",
                  sim::cell(m.samples), sim::cell(m.device.boots),
                  sim::cell(m.device.powerFailures)});
    }
    t.print();
    return 0;
}
