/**
 * @file
 * Exhaustive crash-consistency sweep driver.
 *
 * Runs an application workload once uninterrupted (the oracle) to
 * learn how many simulator events the run executes, then re-runs it
 * once per failure point — a power failure injected immediately after
 * the k-th executed event — with the crash auditor attached. Any
 * auditor violation in any replica fails the sweep.
 *
 * Replicas are independent seeded simulations fanned out on the
 * shared sweep pool, so the sweep output is byte-identical at any
 * CAPY_JOBS.
 *
 * Exit codes: 0 sweep clean; 1 violations found; 2 usage/oracle
 * error. With --expect-caught the meaning of 0/1 inverts: the sweep
 * must find violations (the broken-recovery fixture demo).
 *
 * Examples:
 *   crash_sweep --app csr --every-event
 *   crash_sweep --app ckpt --every-event --break-recovery \
 *       --expect-caught
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/capysat.hh"
#include "apps/csr.hh"
#include "apps/faults.hh"
#include "apps/grc.hh"
#include "apps/ta.hh"

namespace
{

using namespace capy;
using apps::FaultSpec;

struct Options
{
    std::string app = "csr";
    bool everyEvent = false;
    std::uint64_t stride = 0;     ///< 0 = auto (~kAutoPoints points)
    std::uint64_t maxPoints = 0;  ///< 0 = unlimited
    std::uint64_t timePoints = 0; ///< >0 = time-indexed sweep
    double horizon = -1.0;        ///< <0 = per-app default
    std::uint64_t seed = 1;
    bool glitch = false;
    bool breakRecovery = false;
    bool expectCaught = false;
    bool verbose = false;
};

constexpr std::uint64_t kAutoPoints = 256;

/** Common shape of one (oracle or faulted) replica. */
struct SweepRun
{
    std::uint64_t simEvents = 0;
    apps::FaultReport faults;
    std::uint64_t powerFailures = 0;
    std::uint64_t injectedFailures = 0;
    double progress = 0.0;  ///< app-specific progress metric
};

double
defaultHorizon(const std::string &app)
{
    // Short horizons keep every-event sweeps tractable: long enough
    // to boot, work across several charge cycles, and (for the event
    // apps) reach the first environment event.
    if (app == "ta")
        return 90.0;
    if (app == "capysat")
        return 0.03;  // orbits
    if (app == "ckpt")
        return 240.0;
    return 40.0;  // csr, grc
}

SweepRun
runApp(const Options &opt, const FaultSpec *spec, double horizon)
{
    SweepRun out;
    if (opt.app == "ckpt") {
        // Work sized past the horizon: the rig charge-cycles for the
        // whole run instead of idling after an early completion, so
        // time-indexed points always target live execution.
        auto m = apps::runCheckpointCrashWorkload(spec, horizon,
                                                  horizon);
        out.simEvents = m.simEvents;
        out.faults = m.faults;
        out.powerFailures = m.device.powerFailures;
        out.injectedFailures = m.device.injectedFailures;
        out.progress = m.progress;
        return out;
    }
    if (opt.app == "capysat") {
        auto m = apps::runCapySat(horizon, opt.seed, spec);
        out.simEvents = m.simEvents;
        out.faults = m.faults;
        out.powerFailures = m.samplingMcu.powerFailures +
                            m.commMcu.powerFailures;
        out.injectedFailures = m.samplingMcu.injectedFailures +
                               m.commMcu.injectedFailures;
        out.progress =
            double(m.samples) + double(m.packetsDelivered);
        return out;
    }

    apps::RunMetrics m;
    if (opt.app == "csr") {
        m = apps::runCorrSense(core::Policy::CapyP,
                               apps::grcSchedule(opt.seed), opt.seed,
                               horizon, spec);
    } else if (opt.app == "grc") {
        m = apps::runGestureRemote(apps::GrcVariant::Compact,
                                   core::Policy::CapyP,
                                   apps::grcSchedule(opt.seed),
                                   opt.seed, horizon, spec);
    } else if (opt.app == "ta") {
        m = apps::runTempAlarm(core::Policy::CapyP,
                               apps::taSchedule(opt.seed), opt.seed,
                               horizon, -1.0, spec);
    } else {
        std::fprintf(stderr, "unknown app '%s'\n", opt.app.c_str());
        std::exit(2);
    }
    out.simEvents = m.simEvents;
    out.faults = m.faults;
    out.powerFailures = m.device.powerFailures;
    out.injectedFailures = m.device.injectedFailures;
    out.progress = double(m.kernel.transitions);
    return out;
}

FaultSpec
baseSpec(const Options &opt)
{
    FaultSpec spec;
    spec.kind = opt.glitch ? dev::Device::FailureKind::Glitch
                           : dev::Device::FailureKind::Collapse;
    spec.audit = true;
    spec.watchLatches = true;
    spec.breakRecovery = opt.breakRecovery;
    return spec;
}

/**
 * N failure times spread evenly across the oracle's powered spans.
 * Event-indexed points only ever strike at event boundaries, so a
 * failure *inside* a multi-word NV commit window — the case the
 * journal protocol exists for — needs explicit time-indexed points.
 */
std::vector<double>
timePointsOverSpans(
    const std::vector<std::pair<double, double>> &spans,
    std::uint64_t n)
{
    double total = 0.0;
    for (const auto &[a, b] : spans)
        total += b - a;
    std::vector<double> out;
    if (total <= 0.0 || n == 0)
        return out;
    for (std::uint64_t i = 0; i < n; ++i) {
        double offset = (double(i) + 0.5) * total / double(n);
        for (const auto &[a, b] : spans) {
            if (offset <= b - a) {
                out.push_back(a + offset);
                break;
            }
            offset -= b - a;
        }
    }
    return out;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: crash_sweep [--app csr|grc|ta|capysat|ckpt]\n"
        "    [--every-event | --stride N | --time-points N]\n"
        "    [--max-points N] [--horizon S] [--seed N] [--glitch]\n"
        "    [--break-recovery] [--expect-caught] [--verbose]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--app")
            opt.app = next();
        else if (arg == "--every-event")
            opt.everyEvent = true;
        else if (arg == "--stride")
            opt.stride = std::strtoull(next(), nullptr, 10);
        else if (arg == "--max-points")
            opt.maxPoints = std::strtoull(next(), nullptr, 10);
        else if (arg == "--time-points")
            opt.timePoints = std::strtoull(next(), nullptr, 10);
        else if (arg == "--horizon")
            opt.horizon = std::strtod(next(), nullptr);
        else if (arg == "--seed")
            opt.seed = std::strtoull(next(), nullptr, 10);
        else if (arg == "--glitch")
            opt.glitch = true;
        else if (arg == "--break-recovery")
            opt.breakRecovery = true;
        else if (arg == "--expect-caught")
            opt.expectCaught = true;
        else if (arg == "--verbose")
            opt.verbose = true;
        else
            return usage();
    }

    double horizon =
        opt.horizon >= 0.0 ? opt.horizon : defaultHorizon(opt.app);

    // --- Oracle: uninterrupted, audit-only. ---
    FaultSpec oracle_spec;  // empty plan: no injection
    oracle_spec.breakRecovery = opt.breakRecovery;
    SweepRun oracle = runApp(opt, &oracle_spec, horizon);
    std::printf("crash_sweep app=%s horizon=%g seed=%" PRIu64
                " kind=%s\n",
                opt.app.c_str(), horizon, opt.seed,
                opt.glitch ? "glitch" : "collapse");
    std::printf("oracle: events=%" PRIu64 " progress=%.9g "
                "powerFailures=%" PRIu64 " auditChecks=%" PRIu64
                " violations=%" PRIu64 "\n",
                oracle.simEvents, oracle.progress,
                oracle.powerFailures, oracle.faults.checksRun,
                oracle.faults.violations);
    if (oracle.faults.violations != 0) {
        std::printf("oracle run failed its audit:\n%s",
                    oracle.faults.violationText.c_str());
        if (opt.expectCaught) {
            std::printf("OK: auditor caught the broken recovery "
                        "path (oracle run)\n");
            return 0;
        }
        return 2;
    }
    if (oracle.simEvents == 0) {
        std::fprintf(stderr, "oracle executed no events\n");
        return 2;
    }

    // --- Enumerate failure points. ---
    struct Point
    {
        std::string label;
        FaultSpec spec;
    };
    std::vector<Point> points;
    if (opt.timePoints > 0) {
        std::vector<double> times = timePointsOverSpans(
            oracle.faults.activeSpans, opt.timePoints);
        if (times.empty()) {
            std::fprintf(stderr,
                         "oracle recorded no powered spans\n");
            return 2;
        }
        for (double t : times) {
            Point p;
            char buf[48];
            std::snprintf(buf, sizeof buf, "t=%.9g", t);
            p.label = buf;
            p.spec = baseSpec(opt);
            p.spec.plan = sim::FaultPlan::atTimes({t});
            points.push_back(std::move(p));
        }
        std::printf("sweep: %zu time-indexed failure points over "
                    "%zu powered spans\n",
                    points.size(), oracle.faults.activeSpans.size());
    } else {
        std::uint64_t stride;
        if (opt.everyEvent)
            stride = 1;
        else if (opt.stride > 0)
            stride = opt.stride;
        else
            stride = std::max<std::uint64_t>(
                1, oracle.simEvents / kAutoPoints);
        std::vector<std::uint64_t> ks;
        for (std::uint64_t k = 1; k <= oracle.simEvents; k += stride)
            ks.push_back(k);
        if (opt.maxPoints > 0 && ks.size() > opt.maxPoints) {
            std::vector<std::uint64_t> thinned;
            std::uint64_t thin =
                (ks.size() + opt.maxPoints - 1) / opt.maxPoints;
            for (std::size_t i = 0; i < ks.size(); i += thin)
                thinned.push_back(ks[i]);
            ks.swap(thinned);
        }
        for (std::uint64_t k : ks) {
            Point p;
            char buf[48];
            std::snprintf(buf, sizeof buf, "event=%" PRIu64, k);
            p.label = buf;
            p.spec = baseSpec(opt);
            p.spec.plan = sim::FaultPlan::atEvent(k);
            points.push_back(std::move(p));
        }
        std::printf("sweep: %zu event-indexed failure points "
                    "(stride %" PRIu64 ")\n",
                    points.size(), stride);
    }

    // --- Faulted replicas, fanned out deterministically. ---
    std::vector<SweepRun> runs = apps::sweepPool().map(
        points.size(), [&](std::size_t i) {
            return runApp(opt, &points[i].spec, horizon);
        });

    // --- Aggregate. ---
    std::uint64_t fired = 0, violations = 0, attempted = 0;
    std::uint64_t reported = 0;
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const SweepRun &r = runs[i];
        attempted += r.faults.attempts;
        fired += r.faults.fired;
        violations += r.faults.violations;
        if (opt.verbose || r.faults.violations != 0) {
            std::printf("point %s: fired=%" PRIu64
                        " failures=%" PRIu64 " progress=%.9g"
                        " violations=%" PRIu64 "\n",
                        points[i].label.c_str(), r.faults.fired,
                        r.powerFailures, r.progress,
                        r.faults.violations);
        }
        if (r.faults.violations != 0 && reported < 20) {
            std::fputs(r.faults.violationText.c_str(), stdout);
            ++reported;
        }
    }
    std::printf("summary: points=%zu attempts=%" PRIu64
                " fired=%" PRIu64 " violations=%" PRIu64 "\n",
                points.size(), attempted, fired, violations);

    if (opt.expectCaught) {
        if (violations == 0) {
            std::printf("FAIL: expected the auditor to catch the "
                        "broken recovery path, but the sweep came "
                        "back clean\n");
            return 1;
        }
        std::printf("OK: auditor caught the broken recovery path\n");
        return 0;
    }
    if (violations != 0) {
        std::printf("FAIL: crash-consistency violations found\n");
        return 1;
    }
    std::printf("OK: sweep clean\n");
    return 0;
}
