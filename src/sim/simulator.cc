#include "sim/simulator.hh"

#include <utility>

#include "sim/logging.hh"

namespace capy::sim
{

EventId
Simulator::schedule(Time delay, Callback fn)
{
    capy_assert(delay >= 0.0, "negative delay %g", delay);
    return queue.schedule(currentTime + delay, std::move(fn));
}

EventId
Simulator::scheduleAt(Time when, Callback fn)
{
    capy_assert(when >= currentTime,
                "scheduleAt(%g) is in the past (now %g)", when,
                currentTime);
    return queue.schedule(when, std::move(fn));
}

void
Simulator::run()
{
    stopRequested = false;
    while (!queue.empty() && !stopRequested) {
        Time when = queue.nextTime();
        capy_assert(when >= currentTime,
                    "event time %g behind clock %g", when, currentTime);
        currentTime = when;
        queue.runNext();
        afterEvent();
    }
}

void
Simulator::runUntil(Time until)
{
    capy_assert(until >= currentTime,
                "runUntil(%g) is in the past (now %g)", until,
                currentTime);
    stopRequested = false;
    while (!queue.empty() && !stopRequested &&
           queue.nextTime() <= until) {
        Time when = queue.nextTime();
        currentTime = when;
        queue.runNext();
        afterEvent();
    }
    if (!stopRequested)
        currentTime = until;
}

void
Simulator::afterEvent()
{
    if (postEvent)
        postEvent();
}

} // namespace capy::sim
