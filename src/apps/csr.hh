/**
 * @file
 * Correlated Sensing and Report (CSR, §6.1.3): sample a magnetometer
 * at a consistent rate; on a magnetic-field event, immediately and
 * atomically collect 32 distance samples with the proximity sensor,
 * light an LED for 250 ms, and send an 8-byte BLE packet.
 */

#ifndef CAPY_APPS_CSR_HH
#define CAPY_APPS_CSR_HH

#include "apps/experiment.hh"

namespace capy::apps
{

/**
 * Run the CSR application under @p policy against @p schedule.
 * @param faults optional fault-injection/audit spec (crash sweeps).
 */
RunMetrics runCorrSense(core::Policy policy,
                        const env::EventSchedule &schedule,
                        std::uint64_t seed,
                        double horizon = kGrcHorizon,
                        const FaultSpec *faults = nullptr);

} // namespace capy::apps

#endif // CAPY_APPS_CSR_HH
