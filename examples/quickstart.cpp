/**
 * @file
 * Quickstart: the smallest complete Capybara program.
 *
 * Builds an energy-harvesting device with a reconfigurable power
 * system (a hard-wired small bank plus one switched large bank),
 * writes a two-task application — a cheap sensing task and an
 * expensive transmit task — annotates them with energy modes, and
 * runs it for a minute of simulated time.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>
#include <memory>

#include "core/runtime.hh"
#include "dev/device.hh"
#include "power/parts.hh"
#include "power/power_system.hh"
#include "power/units.hh"
#include "rt/kernel.hh"
#include "sim/simulator.hh"

using namespace capy;
using namespace capy::literals;

int
main()
{
    // --- 1. The power system: harvester + reconfigurable storage ---
    sim::Simulator simulator;
    power::PowerSystem::Spec spec;  // input/output boosters, limiter
    auto ps = std::make_unique<power::PowerSystem>(
        spec, std::make_unique<power::RegulatedSupply>(8_mW, 3.3_V));
    ps->addBank("small", power::parts::x5r100uF().parallel(4));
    int big = ps->addSwitchedBank("big", power::parts::edlc7_5mF(),
                                  power::SwitchSpec{});
    power::PowerSystem *psys = ps.get();

    // --- 2. The device: an MSP430-class MCU on that power system ---
    dev::Device device(simulator, std::move(ps), dev::msp430fr5969(),
                       dev::Device::PowerMode::Intermittent);

    // --- 3. Energy modes: map software demand onto bank subsets ---
    core::ModeRegistry modes;
    core::ModeId mode_sense = modes.define("sense", {});
    core::ModeId mode_tx = modes.define("tx", {big});

    // --- 4. The application: Chain-style tasks ---
    int sensed = 0, transmitted = 0;
    rt::App app;
    rt::Task *sense = nullptr;
    rt::Task *radio_tx = nullptr;
    radio_tx = app.addTask("radio_tx", 100_ms, 12_mW,
                           [&](rt::Kernel &) -> const rt::Task * {
                               ++transmitted;
                               return sense;
                           });
    sense = app.addTask("sense", 5_ms, 0.5_mW,
                        [&](rt::Kernel &) -> const rt::Task * {
                            // Every 20th sample, send a report.
                            return ++sensed % 20 == 0 ? radio_tx
                                                      : sense;
                        });
    app.setEntry(sense);

    // --- 5. The Capybara runtime: annotate and install the gate ---
    rt::Kernel kernel(device, app);
    core::Runtime runtime(kernel, modes, core::Policy::CapyP);
    runtime.annotate(sense, core::Annotation::preburst(mode_tx,
                                                       mode_sense));
    runtime.annotate(radio_tx, core::Annotation::burst(mode_tx));
    runtime.install();

    // --- 6. Run ---
    kernel.start();
    simulator.runUntil(60.0);

    std::printf("after %.0f simulated seconds:\n", simulator.now());
    std::printf("  samples taken:        %d\n", sensed);
    std::printf("  reports transmitted:  %d\n", transmitted);
    std::printf("  boots:                %llu\n",
                (unsigned long long)device.stats().boots);
    std::printf("  power failures:       %llu\n",
                (unsigned long long)device.stats().powerFailures);
    std::printf("  reconfigurations:     %llu\n",
                (unsigned long long)runtime.stats().reconfigurations);
    std::printf("  bursts served:        %llu\n",
                (unsigned long long)runtime.stats().burstActivations);
    std::printf("  storage voltage now:  %.2f V (big bank %.2f V)\n",
                psys->storageVoltage(), psys->bank(big).voltage());
    return 0;
}
