/**
 * @file
 * Tests for the DEBS-style V_top-scaling runtime, plus long-horizon
 * soak tests of the full application stack.
 */

#include <gtest/gtest.h>

#include <memory>

#include "apps/ta.hh"
#include "core/vtop_runtime.hh"
#include "power/parts.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

using namespace capy;
using namespace capy::core;
using namespace capy::power;

namespace
{

struct VtopRig
{
    sim::Simulator sim;
    std::unique_ptr<dev::Device> device;
    rt::App app;

    VtopRig()
    {
        PowerSystem::Spec spec;
        auto ps = std::make_unique<PowerSystem>(
            spec, std::make_unique<RegulatedSupply>(8e-3, 3.3));
        ps->addBank("fixed",
                    parallelCompose({parts::x5r100uF().parallel(4),
                                     parts::edlc7_5mF()}));
        device = std::make_unique<dev::Device>(
            sim, std::move(ps), dev::msp430fr5969(),
            dev::Device::PowerMode::Intermittent);
    }
};

} // namespace

TEST(VtopRuntime, ScalesThresholdPerTask)
{
    VtopRig rig;
    // A draining loop at a low threshold, then one big task at a
    // high threshold. The first boot charges to the default full
    // target (the potentiometer is unprogrammed), so threshold
    // behaviour shows up in the *recharges*.
    std::vector<double> v_loop;
    double v_at_big = -1.0;
    rt::Task *big = rig.app.addTask(
        "big", 50e-3, 10e-3, [&](rt::Kernel &k) -> const rt::Task * {
            v_at_big = k.device().powerSystem().storageVoltage();
            return nullptr;
        });
    rt::Task *loop = nullptr;
    loop = rig.app.addTask(
        // Heavy enough to pull the buffer noticeably below 1.9 V
        // per run, yet small enough to fit the 1.9 V threshold.
        "loop", 0.15, 10e-3, [&](rt::Kernel &k) -> const rt::Task * {
            v_loop.push_back(
                k.device().powerSystem().storageVoltage());
            return v_loop.size() < 6 ? loop : big;
        });
    rig.app.setEntry(loop);

    rt::Kernel kernel(*rig.device, rig.app);
    dev::NvMemory eeprom("pot", 100000);
    VtopRuntime runtime(kernel, &eeprom);
    runtime.annotate(loop, 1.9);
    runtime.annotate(big, 2.9);
    runtime.install();
    kernel.start();
    rig.sim.runUntil(1200.0);
    ASSERT_TRUE(kernel.halted());
    ASSERT_EQ(v_loop.size(), 6u);
    // Later loop iterations start from the low threshold, not full.
    EXPECT_LT(v_loop.back(), 2.1);
    // The big task only ran after charging to the high threshold.
    EXPECT_GE(v_at_big, 2.7);
    EXPECT_EQ(runtime.eepromWrites(), 2u);
    EXPECT_GE(runtime.stats().rechargePauses, 1u);
}

TEST(VtopRuntime, UnannotatedTasksProceed)
{
    VtopRig rig;
    int runs = 0;
    rig.app.addTask("plain", 1e-3, 0.0,
                    [&](rt::Kernel &) -> const rt::Task * {
                        ++runs;
                        return nullptr;
                    });
    rt::Kernel kernel(*rig.device, rig.app);
    VtopRuntime runtime(kernel);
    runtime.install();
    kernel.start();
    rig.sim.runUntil(600.0);
    EXPECT_EQ(runs, 1);
    EXPECT_EQ(runtime.eepromWrites(), 0u);
}

TEST(VtopRuntime, RepeatedSameThresholdNoEepromWear)
{
    VtopRig rig;
    int runs = 0;
    rt::Task *t = nullptr;
    t = rig.app.addTask("loop", 1e-3, 0.0,
                        [&](rt::Kernel &) -> const rt::Task * {
                            return ++runs < 25 ? t : nullptr;
                        });
    rt::Kernel kernel(*rig.device, rig.app);
    dev::NvMemory eeprom("pot", 100000);
    VtopRuntime runtime(kernel, &eeprom);
    runtime.annotate(t, 2.0);
    runtime.install();
    kernel.start();
    rig.sim.runUntil(600.0);
    EXPECT_EQ(runs, 25);
    EXPECT_EQ(runtime.eepromWrites(), 1u)
        << "an unchanged threshold must not rewrite the EEPROM";
}

TEST(Soak, SixHourTempAlarmStaysHealthy)
{
    // Long-horizon stability: 6 h of simulated Capy-P TempAlarm with
    // 150 events. Checks for monotone time, bounded memory use
    // (implicitly), and sane aggregate statistics.
    setQuiet(true);
    const double horizon = 6.0 * 3600.0;
    sim::Rng rng(77, 0x7a);
    auto sched =
        env::EventSchedule::poissonCount(rng, 150, horizon, 60.0);
    apps::RunMetrics m =
        apps::runTempAlarm(Policy::CapyP, sched, 77, horizon);
    setQuiet(false);

    EXPECT_GT(m.summary.fracCorrect, 0.6);
    EXPECT_GT(m.samples, 10000u);
    EXPECT_GT(m.device.boots, 1000u);
    // Energy profile sane: the radio spent more per completion than
    // the sensing task.
    ASSERT_TRUE(m.taskEnergy.count("sense"));
    ASSERT_TRUE(m.taskEnergy.count("radio_tx"));
    const auto &sense = m.taskEnergy.at("sense");
    const auto &tx = m.taskEnergy.at("radio_tx");
    ASSERT_GT(sense.completions, 0u);
    ASSERT_GT(tx.completions, 0u);
    EXPECT_GT(tx.railEnergy / double(tx.completions),
              20.0 * sense.railEnergy / double(sense.completions));
    // Total attributed energy is plausible against the harvest bound:
    // <= horizon * harvest power (can't spend more than arrived).
    double attributed = 0.0;
    for (const auto &[name, use] : m.taskEnergy)
        attributed += use.railEnergy + use.wastedEnergy;
    EXPECT_LT(attributed, horizon * apps::taHarvestPower());
}

TEST(Soak, FixedSixHoursForComparison)
{
    setQuiet(true);
    const double horizon = 6.0 * 3600.0;
    sim::Rng rng(78, 0x7a);
    auto sched =
        env::EventSchedule::poissonCount(rng, 150, horizon, 60.0);
    apps::RunMetrics m =
        apps::runTempAlarm(Policy::Fixed, sched, 78, horizon);
    setQuiet(false);
    // Fixed keeps working, just worse.
    EXPECT_GT(m.summary.correct, 10u);
    EXPECT_LT(m.summary.fracCorrect, 0.8);
    EXPECT_GT(m.chargeSpanMean, 10.0);
}
