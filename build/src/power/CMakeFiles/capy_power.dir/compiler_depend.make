# Empty compiler generated dependencies file for capy_power.
# This may be replaced when dependencies are built.
