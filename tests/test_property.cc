/**
 * @file
 * Property and fuzz tests across layers: power-system invariants
 * under randomized operation sequences, energy-conservation checks,
 * crossing-time consistency, kernel progress under random harvest
 * conditions, and scoreboard accounting invariants.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/runtime.hh"
#include "dev/device.hh"
#include "env/scoring.hh"
#include "power/parts.hh"
#include "power/power_system.hh"
#include "power/solver.hh"
#include "rt/kernel.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"

using namespace capy;
using namespace capy::power;

namespace
{

/** Build a randomized 2-3 bank power system. */
std::unique_ptr<PowerSystem>
randomSystem(sim::Rng &rng)
{
    PowerSystem::Spec spec;
    double harvest = rng.uniform(0.5e-3, 20e-3);
    auto ps = std::make_unique<PowerSystem>(
        spec, std::make_unique<RegulatedSupply>(harvest, 3.3));
    ps->addBank("base",
                parts::x5r100uF().parallel(rng.uniformInt(1, 8)));
    SwitchSpec sw;
    sw.kind = rng.chance(0.5) ? SwitchKind::NormallyOpen
                              : SwitchKind::NormallyClosed;
    ps->addSwitchedBank(
        "big", parts::edlc7_5mF().parallel(rng.uniformInt(1, 4)), sw);
    if (rng.chance(0.3)) {
        ps->addSwitchedBank("mid",
                            parts::tant1000uF().parallel(
                                rng.uniformInt(1, 3)),
                            SwitchSpec{});
    }
    return ps;
}

} // namespace

/** Fuzz the PowerSystem with random operation sequences; invariants
 *  must hold at every step. */
class PowerSystemFuzz : public ::testing::TestWithParam<int>
{};

TEST_P(PowerSystemFuzz, InvariantsUnderRandomOperation)
{
    sim::Rng rng(std::uint64_t(GetParam()), 0xF00D);
    auto ps = randomSystem(rng);
    sim::Time now = 0.0;
    bool rail_on = false;

    for (int step = 0; step < 300; ++step) {
        double dt = rng.exponential(rng.chance(0.2) ? 60.0 : 2.0);
        now += dt;
        ps->advanceTo(now);

        switch (rng.uniformInt(0, 5)) {
          case 0:
            rail_on = !rail_on;
            ps->setRailEnabled(rail_on);
            break;
          case 1:
            if (rail_on)
                ps->setRailLoad(rng.uniform(0.0, 30e-3));
            break;
          case 2:
            if (rail_on) {
                int idx = int(rng.uniformInt(
                    0, std::uint64_t(ps->numBanks() - 1)));
                if (ps->bankSwitch(idx))
                    ps->commandSwitch(idx, rng.chance(0.5));
            }
            break;
          case 3:
            if (rng.chance(0.5))
                ps->setChargeCeiling(rng.uniform(1.8, 2.9));
            else
                ps->clearChargeCeiling();
            break;
          default:
            break;
        }

        // --- invariants ---
        double v = ps->storageVoltage();
        ASSERT_GE(v, 0.0) << "step " << step;
        ASSERT_LE(v, ps->systemSpec().maxStorageVoltage + 1e-6)
            << "storage never exceeds the limiter target";
        for (int i = 0; i < ps->numBanks(); ++i) {
            ASSERT_GE(ps->bank(i).energy(), 0.0);
            double rated = ps->bank(i).spec().ratedVoltage;
            ASSERT_LE(ps->bank(i).voltage(), rated + 1e-6)
                << "bank " << i << " above rating at step " << step;
        }
        const auto &st = ps->stats();
        ASSERT_GE(st.harvestedIn, -1e-9);
        ASSERT_GE(st.drainedOut, -1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PowerSystemFuzz,
                         ::testing::Range(1, 21));

/** Energy conservation: harvested = stored + drained + leaked, over
 *  randomized charge/discharge scenarios. */
class ConservationSweep : public ::testing::TestWithParam<int>
{};

TEST_P(ConservationSweep, EnergyBalances)
{
    sim::Rng rng(std::uint64_t(GetParam()), 0xBEEF);
    PowerSystem::Spec spec;
    auto ps = std::make_unique<PowerSystem>(
        spec, std::make_unique<RegulatedSupply>(
                  rng.uniform(1e-3, 15e-3), 3.3));
    ps->addBank("a", parts::x5r100uF().parallel(rng.uniformInt(2, 6)));
    ps->addBank("b", parts::edlc7_5mF());

    double initial = ps->activeEnergy();
    sim::Time now = 0.0;
    for (int i = 0; i < 50; ++i) {
        now += rng.exponential(5.0);
        ps->advanceTo(now);
        if (rng.chance(0.4)) {
            bool on = rng.chance(0.5);
            ps->setRailEnabled(on);
            if (on)
                ps->setRailLoad(rng.uniform(0.0, 25e-3));
        }
    }
    ps->advanceTo(now + 10.0);

    const auto &st = ps->stats();
    double stored = ps->activeEnergy() - initial;
    double balance = st.harvestedIn - st.drainedOut - st.leaked;
    EXPECT_NEAR(balance, stored,
                std::max(1e-9, st.harvestedIn * 1e-6))
        << "harvested - drained - leaked must equal the change in "
           "stored energy";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConservationSweep,
                         ::testing::Range(100, 120));

/** timeToVoltage predictions must match the actual trajectory for
 *  randomized conditions. */
class CrossingConsistency : public ::testing::TestWithParam<int>
{};

TEST_P(CrossingConsistency, PredictionMatchesAdvance)
{
    sim::Rng rng(std::uint64_t(GetParam()), 0xCAFE);
    PowerSystem::Spec spec;
    double harvest = rng.uniform(0.5e-3, 12e-3);
    auto ps = std::make_unique<PowerSystem>(
        spec, std::make_unique<RegulatedSupply>(harvest, 3.3));
    ps->addBank("b", parts::edlc7_5mF().parallel(rng.uniformInt(1, 3)));
    ps->bankForTest(0).setVoltage(rng.uniform(0.0, 2.9));
    if (rng.chance(0.5)) {
        ps->setRailEnabled(true);
        ps->setRailLoad(rng.uniform(0.0, 20e-3));
    }

    double v0 = ps->storageVoltage();
    double target = rng.uniform(0.2, 2.95);
    sim::Time t = ps->timeToVoltage(target);
    if (!std::isfinite(t))
        return;  // legitimately unreachable under these conditions
    ps->advanceTo(t);
    EXPECT_NEAR(ps->storageVoltage(), target, 2e-3)
        << "v0=" << v0 << " harvest=" << harvest;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossingConsistency,
                         ::testing::Range(200, 240));

/** Kernel progress: under any harvest level, a feasible looping app
 *  keeps making forward progress with exactly-once body semantics. */
class KernelHarvestSweep : public ::testing::TestWithParam<double>
{};

TEST_P(KernelHarvestSweep, ForwardProgressAndExactlyOnce)
{
    double harvest_mw = GetParam();
    sim::Simulator simulator;
    PowerSystem::Spec spec;
    auto ps = std::make_unique<PowerSystem>(
        spec, std::make_unique<RegulatedSupply>(harvest_mw * 1e-3,
                                                3.3));
    ps->addBank("b", parts::x5r100uF().parallel(6));
    dev::Device device(simulator, std::move(ps), dev::msp430fr5969(),
                       dev::Device::PowerMode::Intermittent);

    int a_runs = 0, b_runs = 0;
    rt::App app;
    rt::Task *tb = nullptr;
    rt::Task *ta = app.addTask("a", 2e-3, 0.0,
                               [&](rt::Kernel &) -> const rt::Task * {
                                   ++a_runs;
                                   return tb;
                               });
    tb = app.addTask("b", 3e-3, 1e-3,
                     [&](rt::Kernel &) -> const rt::Task * {
                         ++b_runs;
                         return ta;
                     });
    rt::Kernel kernel(device, app);
    kernel.start();
    simulator.runUntil(600.0);

    // Strict alternation: bodies run exactly once per completion.
    EXPECT_GE(a_runs, 10);
    EXPECT_TRUE(a_runs == b_runs || a_runs == b_runs + 1)
        << "a=" << a_runs << " b=" << b_runs;
    EXPECT_EQ(kernel.stats().taskCompletions,
              std::uint64_t(a_runs + b_runs));
}

INSTANTIATE_TEST_SUITE_P(HarvestLevels, KernelHarvestSweep,
                         ::testing::Values(0.7, 1.5, 3.0, 6.0, 12.0,
                                           24.0));

/** Runtime under every policy: app terminates or progresses, and the
 *  scoreboard partition always sums to the event total. */
class PolicySweep
    : public ::testing::TestWithParam<capy::core::Policy>
{};

TEST_P(PolicySweep, ScoreboardPartitionInvariant)
{
    using namespace capy::core;
    using namespace capy::env;
    Policy policy = GetParam();

    sim::Rng rng(31337, 0x5eed);
    EventSchedule sched = EventSchedule::poisson(rng, 20.0, 400.0, 30.0);
    Scoreboard sb(sched);

    sim::Simulator simulator;
    PowerSystem::Spec spec;
    auto ps = std::make_unique<PowerSystem>(
        spec, std::make_unique<RegulatedSupply>(8e-3, 3.3));
    ps->addBank("small", parts::x5r100uF().parallel(4));
    int big = ps->addSwitchedBank("big", parts::edlc7_5mF(),
                                  SwitchSpec{});
    dev::Device device(simulator, std::move(ps), dev::msp430fr5969(),
                       policy == Policy::Continuous
                           ? dev::Device::PowerMode::Continuous
                           : dev::Device::PowerMode::Intermittent);

    ModeRegistry modes;
    ModeId small = modes.define("small", {});
    ModeId burst = modes.define("burst", {big});

    rt::App app;
    rt::Task *report = nullptr;
    rt::Task *watch = nullptr;
    report = app.addTask("report", 50e-3, 10e-3,
                         [&](rt::Kernel &k) -> const rt::Task * {
                             int id = sched.eventCovering(
                                 k.now() - 5.0, 5.0, 5.0);
                             sb.recordReport(id, k.now());
                             return watch;
                         });
    watch = app.addTask("watch", 2e-3, 0.0,
                        [&](rt::Kernel &k) -> const rt::Task * {
                            int id = sched.eventCovering(k.now(), 0.0,
                                                         5.0);
                            if (id >= 0) {
                                sb.recordDetection(id);
                                return report;
                            }
                            return watch;
                        });
    app.setEntry(watch);
    rt::Kernel kernel(device, app);
    Runtime runtime(kernel, modes, policy);
    runtime.annotate(watch, Annotation::preburst(burst, small));
    runtime.annotate(report, Annotation::burst(burst));
    runtime.install();
    kernel.start();
    simulator.runUntil(400.0);

    auto sum = sb.summarize();
    EXPECT_EQ(sum.correct + sum.misclassified + sum.proximityOnly +
                  sum.missed,
              sum.total);
    EXPECT_EQ(sum.total, sched.size());
    if (policy != Policy::CapyR) {
        // Every policy except Capy-R (whose recharge-after-detection
        // can outlive the 5 s window) should catch something.
        EXPECT_GT(sum.correct + sum.proximityOnly, 0u)
            << core::policyName(policy);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicySweep,
    ::testing::Values(capy::core::Policy::Continuous,
                      capy::core::Policy::Fixed,
                      capy::core::Policy::CapyR,
                      capy::core::Policy::CapyP));

/** Latch decay is time-decomposition invariant under random splits. */
class LatchDecaySweep : public ::testing::TestWithParam<int>
{};

TEST_P(LatchDecaySweep, SplitInvariant)
{
    sim::Rng rng(std::uint64_t(GetParam()), 0x1A7C);
    SwitchSpec spec;
    BankSwitch one(spec), many(spec);
    one.command(true, 0.0, true);
    many.command(true, 0.0, true);

    double horizon = rng.uniform(10.0, 400.0);
    one.update(horizon, false);
    double t = 0.0;
    while (t < horizon) {
        t = std::min(horizon, t + rng.exponential(7.0));
        many.update(t, false);
    }
    EXPECT_EQ(one.closed(), many.closed()) << "horizon " << horizon;
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatchDecaySweep,
                         ::testing::Range(300, 330));
