#include "apps/boards.hh"

#include "dev/mcu.hh"
#include "env/light.hh"
#include "power/parts.hh"
#include "power/units.hh"
#include "sim/logging.hh"

namespace capy::apps
{

using namespace capy::literals;
using power::CapacitorSpec;
using power::parallelCompose;
namespace parts = capy::power::parts;

const char *
appBoardName(AppBoard board)
{
    switch (board) {
      case AppBoard::TempAlarm:
        return "TempAlarm";
      case AppBoard::GestureFast:
        return "GestureFast";
      case AppBoard::GestureCompact:
        return "GestureCompact";
      case AppBoard::CorrSense:
        return "CorrSense";
    }
    capy_panic("unknown AppBoard %d", static_cast<int>(board));
}

namespace
{

/** Per-panel peak power of the TrisolX-class wing under the halogen
 *  at full brightness. */
constexpr double kPanelPeakPower = 1.0e-3;
constexpr unsigned kPanelsInSeries = 2;
constexpr double kHalogenDuty = 0.42;

/**
 * Effective power delivered by the GRC/CSR bench harvester (a
 * regulated supply behind an attenuating resistor, §6.1.1). The rig
 * supplies *at most* 10 mW; the attenuator's operating point delivers
 * ~8 mW into the board, which is what makes the fixed worst-case bank
 * spend most of its time charging (Fixed detects ~18% in Fig. 8).
 */
constexpr double kGrcHarvest = 8.0e-3;

CapacitorSpec
grcSmall()
{
    return parallelCompose(
        {parts::x5r100uF().parallel(4), parts::tant330uF()});
}

CapacitorSpec
taSmall()
{
    return parallelCompose(
        {parts::x5r100uF().parallel(3), parts::tant100uF()});
}

CapacitorSpec
taBig()
{
    return parallelCompose(
        {parts::tant1000uF(), parts::edlc7_5mF()});
}

CapacitorSpec
grcFixed()
{
    return parallelCompose(
        {parts::x5r100uF().parallel(4), parts::tant330uF(),
         parts::edlc7_5mF().parallel(9)});
}

CapacitorSpec
taFixed()
{
    return parallelCompose(
        {parts::x5r100uF().parallel(3), parts::tant1000uF(),
         parts::tant100uF(), parts::edlc7_5mF()});
}

std::unique_ptr<power::Harvester>
makeHarvester(AppBoard app)
{
    if (app == AppBoard::TempAlarm) {
        env::PwmHalogen halogen(kHalogenDuty);
        return std::make_unique<power::SolarArray>(
            kPanelsInSeries, kPanelPeakPower, 2.5,
            halogen.illumination(), 60.0);
    }
    return std::make_unique<power::RegulatedSupply>(kGrcHarvest,
                                                    3.3_V);
}

} // namespace

double
taHarvestPower()
{
    return kPanelsInSeries * kPanelPeakPower * kHalogenDuty;
}

double
grcHarvestPower()
{
    return kGrcHarvest;
}

Board
makeBoard(sim::Simulator &sim, AppBoard app, core::Policy policy,
          power::SwitchKind switch_kind, double precharge_penalty)
{
    Board board;
    power::PowerSystem::Spec spec;  // defaults from DESIGN.md §5
    if (precharge_penalty >= 0.0)
        spec.prechargePenaltyVoltage = precharge_penalty;

    auto ps = std::make_unique<power::PowerSystem>(spec,
                                                   makeHarvester(app));

    bool reconfigurable = policy == core::Policy::CapyR ||
                          policy == core::Policy::CapyP;

    if (!reconfigurable) {
        // Fixed (and the continuously-powered reference, which uses
        // the same storage): one hard-wired worst-case bank.
        CapacitorSpec fixed;
        switch (app) {
          case AppBoard::TempAlarm:
            fixed = taFixed();
            break;
          case AppBoard::GestureFast:
          case AppBoard::GestureCompact:
          case AppBoard::CorrSense:
            fixed = grcFixed();
            break;
        }
        ps->addBank("fixed", fixed);
    } else {
        CapacitorSpec small_bank, big_bank;
        switch (app) {
          case AppBoard::TempAlarm:
            small_bank = taSmall();
            big_bank = taBig();
            break;
          case AppBoard::GestureFast:
          case AppBoard::CorrSense:
            small_bank = grcSmall();
            big_bank = parts::edlc7_5mF().parallel(6);  // 45 mF
            break;
          case AppBoard::GestureCompact:
            small_bank = grcSmall();
            big_bank = parts::edlc7_5mF().parallel(9);  // 67.5 mF
            break;
        }
        ps->addBank("small", small_bank);
        power::SwitchSpec sw;
        sw.kind = switch_kind;
        board.bigBank = ps->addSwitchedBank("big", big_bank, sw);
    }

    board.ps = ps.get();
    auto power_mode = policy == core::Policy::Continuous
                          ? dev::Device::PowerMode::Continuous
                          : dev::Device::PowerMode::Intermittent;
    board.device = std::make_unique<dev::Device>(
        sim, std::move(ps), dev::msp430fr5969(), power_mode);

    board.smallMode = board.registry.define("small", {});
    if (board.bigBank >= 0) {
        board.bigMode = board.registry.define("big", {board.bigBank});
    } else {
        // Fixed/Pwr boards still need mode ids for uniform app code;
        // both modes resolve to "no switched banks".
        board.bigMode = board.registry.define("big", {});
    }
    return board;
}

} // namespace capy::apps
