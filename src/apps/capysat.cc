#include "apps/capysat.hh"

#include <memory>
#include <optional>

#include "dev/mcu.hh"
#include "dev/peripheral.hh"
#include "dev/radio.hh"
#include "env/light.hh"
#include "power/bankswitch.hh"
#include "power/parts.hh"
#include "power/units.hh"
#include "rt/kernel.hh"
#include "sim/simulator.hh"

namespace capy::apps
{

using namespace capy::literals;
namespace parts = capy::power::parts;

namespace
{

/** Per-panel peak power of the satellite's body-mounted panels. */
constexpr double kSatPanelPower = 25e-3;

std::unique_ptr<power::PowerSystem>
satPowerSystem(const env::OrbitLight &orbit, double panel_share,
               const power::CapacitorSpec &bank,
               const char *bank_name)
{
    power::PowerSystem::Spec spec;
    // The diode splitter always connects the bank to the harvester;
    // there is no switched reconfiguration on the satellite.
    auto harvester = std::make_unique<power::SolarArray>(
        2, kSatPanelPower * panel_share, 2.5, orbit.illumination(),
        orbit.changePeriod());
    auto ps = std::make_unique<power::PowerSystem>(
        spec, std::move(harvester));
    ps->addBank(bank_name, bank);
    return ps;
}

} // namespace

CapySatResult
runCapySat(double orbits, std::uint64_t seed,
           const FaultSpec *faults)
{
    sim::Simulator simulator;
    env::OrbitLight orbit;
    sim::Rng rng(seed, 0x5a7);
    dev::Radio radio(dev::kicksatRadio());

    // Volume budget: ultra-compact CPH3225A EDLCs are the only
    // storage that fits (§6.6).
    // Parallel stacks also tame the 160-ohm per-cap ESR enough to
    // boot the MCUs and carry the 250 ms transmit burst.
    auto sample_bank = parts::cph3225a().parallel(3);
    auto comm_bank = parts::cph3225a().parallel(8);

    // Sampling MCU.
    auto ps_sample = satPowerSystem(orbit, 0.4, sample_bank, "sample");
    dev::Device mcu_sample(simulator, std::move(ps_sample),
                           dev::msp430fr5969(),
                           dev::Device::PowerMode::Intermittent);

    // Communication MCU.
    auto ps_comm = satPowerSystem(orbit, 0.6, comm_bank, "comm");
    dev::Device mcu_comm(simulator, std::move(ps_comm),
                         dev::cc2650(),
                         dev::Device::PowerMode::Intermittent);

    CapySatResult result;

    // Attitude sampling app: magnetometer + accelerometer +
    // gyroscope in one atomic sample, paced at 1 Hz.
    std::vector<dev::PeripheralSpec> sensors{
        dev::periph::magnetometer(), dev::periph::accelerometer(),
        dev::periph::gyroscope()};
    rt::App sample_app;
    rt::Task *sample = nullptr;
    sample = sample_app.addTask(
        "attitude-sample", 20_ms + dev::maxWarmup(sensors),
        dev::totalActivePower(sensors),
        [&](rt::Kernel &k) -> const rt::Task * {
            ++result.samples;
            if (!orbit.sunlit(k.now()))
                ++result.samplesInEclipse;
            return sample;
        },
        1.0 /* sleep pacing */);
    rt::Kernel kernel_sample(mcu_sample, sample_app);

    // Downlink app: one 1-byte beacon per cycle, 250 ms at high
    // current through the redundant encoding (§6.6).
    const auto sat_radio = dev::kicksatRadio();
    rt::App comm_app;
    rt::Task *beacon = nullptr;
    beacon = comm_app.addTask(
        "beacon", txDuration(sat_radio, 1), 0.0,
        [&](rt::Kernel &k) -> const rt::Task * {
            ++result.packets;
            if (radio.attemptDelivery(rng))
                ++result.packetsDelivered;
            if (!orbit.sunlit(k.now()))
                ++result.packetsInEclipse;
            return beacon;
        },
        10.0 /* beacon interval */);
    beacon->absolutePower = sat_radio.txPower;
    rt::Kernel kernel_comm(mcu_comm, comm_app);

    // Fault wiring is manual here (FaultHarness assumes one device):
    // both MCUs share the supply bus, so one injector drives failures
    // into both, and each MCU gets its own auditor.
    std::optional<rt::CrashAuditor> audit_sample;
    std::optional<rt::CrashAuditor> audit_comm;
    std::optional<sim::FaultInjector> injector;
    if (faults) {
        if (faults->audit) {
            audit_sample.emplace(mcu_sample);
            audit_sample->watchKernel(kernel_sample);
            audit_comm.emplace(mcu_comm);
            audit_comm->watchKernel(kernel_comm);
            if (faults->watchLatches) {
                audit_sample->watchLatches();
                audit_comm->watchLatches();
            }
        }
        if (!faults->plan.empty()) {
            injector.emplace(
                simulator, faults->plan,
                [&mcu_sample, &mcu_comm, kind = faults->kind] {
                    bool hit_sample =
                        mcu_sample.injectPowerFailure(kind);
                    bool hit_comm = mcu_comm.injectPowerFailure(kind);
                    return hit_sample || hit_comm;
                });
        }
    }

    kernel_sample.start();
    kernel_comm.start();
    simulator.runUntil(orbits * orbit.spec().orbitPeriod);

    if (injector) {
        result.faults.attempts = injector->attempts();
        result.faults.fired = injector->fired();
    }
    for (auto *aud : {audit_sample ? &*audit_sample : nullptr,
                      audit_comm ? &*audit_comm : nullptr}) {
        if (!aud)
            continue;
        aud->checkNow();
        result.faults.outagesAudited += aud->outagesAudited();
        result.faults.checksRun += aud->checksRun();
        result.faults.violations += aud->violations().size();
        result.faults.violationText += aud->report();
        auto spans = aud->activeSpans();
        result.faults.activeSpans.insert(
            result.faults.activeSpans.end(), spans.begin(),
            spans.end());
    }

    result.samplingMcu = mcu_sample.stats();
    result.commMcu = mcu_comm.stats();
    result.simEvents = simulator.eventsExecuted();
    // §6.6: the diode splitter matches storage to demand at ~20% of
    // the area of the general-purpose switch module.
    result.switchArea = power::SwitchSpec{}.area;
    result.splitterArea = 0.2 * result.switchArea;
    result.capacitorVolume =
        sample_bank.volume + comm_bank.volume;
    return result;
}

} // namespace capy::apps
