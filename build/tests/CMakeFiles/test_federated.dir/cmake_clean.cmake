file(REMOVE_RECURSE
  "CMakeFiles/test_federated.dir/test_federated.cc.o"
  "CMakeFiles/test_federated.dir/test_federated.cc.o.d"
  "test_federated"
  "test_federated.pdb"
  "test_federated[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_federated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
