#include "rt/checkpoint.hh"

#include <algorithm>
#include <cmath>

#include "power/solver.hh"
#include "sim/logging.hh"

namespace capy::rt
{

CheckpointKernel::CheckpointKernel(dev::Device &device, Spec spec_in,
                                   double total_work,
                                   double extra_power,
                                   std::function<void()> on_complete,
                                   dev::NvMemory *nv)
    : dev(device), spec(spec_in), totalWork(total_work),
      extraPower(extra_power), onComplete(std::move(on_complete)),
      nvProgress(nv, 0.0)
{
    capy_assert(total_work > 0.0, "no work to run");
    capy_assert(spec.voltageHeadroom > 0.0, "headroom must be > 0");
}

void
CheckpointKernel::start()
{
    dev.setHooks(dev::Device::Hooks{
        .onBoot = [this] { onBoot(); },
        .onPowerFail = [this] { onPowerFail(); },
    });
    dev.start();
}

void
CheckpointKernel::onBoot()
{
    if (done)
        return;
    restoreThenCompute();
}

void
CheckpointKernel::onPowerFail()
{
    // Any power failure destroys volatile state: every slice computed
    // since the last committed checkpoint is lost — including when
    // the failure strikes during the checkpoint write itself.
    double elapsed = dev.lastAbortedWorkload().elapsed;
    switch (currentPhase) {
      case Phase::Restore:
        ckptStats.overheadLost += elapsed;
        break;
      case Phase::Compute:
        // The interrupted slice's partial time is real lost work on
        // top of the uncommitted slices already in flight.
        ckptStats.lostWork += elapsed;
        break;
      case Phase::Checkpoint: {
        ckptStats.overheadLost += elapsed;
        // The NVM image is written word-by-word over the checkpoint
        // window; a failure inside it leaves a torn record. The
        // completion never ran, so at most all-but-one word landed.
        std::size_t total = nvProgress.slotWords();
        double frac =
            std::clamp(elapsed / spec.checkpointTime, 0.0, 1.0);
        auto words = static_cast<std::size_t>(
            frac * static_cast<double>(total));
        words = std::min(words, total - 1);
        nvProgress.tearSet(pendingCommit, words);
        ++ckptStats.tornCheckpoints;
        break;
      }
      case Phase::None:
        break;
    }
    currentPhase = Phase::None;
    ckptStats.lostWork += sliceInFlight;
    sliceInFlight = 0.0;
}

void
CheckpointKernel::restoreThenCompute()
{
    if (nvProgress.get() > 0.0) {
        currentPhase = Phase::Restore;
        dev.runWorkload(dev.mcu().activePower, spec.restoreTime,
                        [this] {
                            // Overhead accounts on completion: an
                            // aborted restore is overheadLost, not a
                            // restore.
                            ++ckptStats.restores;
                            ckptStats.overheadTime += spec.restoreTime;
                            currentPhase = Phase::None;
                            computeSlice();
                        });
        return;
    }
    computeSlice();
}

void
CheckpointKernel::computeSlice()
{
    if (done)
        return;
    double remaining = totalWork - nvProgress.get();
    if (remaining <= 0.0) {
        done = true;
        if (onComplete)
            onComplete();
        return;
    }

    // Run until either the work completes or the low-voltage
    // interrupt threshold is reached.
    auto &ps = dev.powerSystem();
    ps.advanceTo(dev.simulator().now());
    double compute_power = dev.mcu().activePower + extraPower;
    // Predict the LVI instant under the compute load.
    ps.setRailLoad(compute_power);
    double v_lvi = ps.brownoutVoltageNow() + spec.voltageHeadroom;
    sim::Time t_lvi = ps.storageVoltage() > v_lvi
                          ? ps.timeToVoltage(v_lvi)
                          : 0.0;

    if (t_lvi <= 1e-6) {
        // Already at the threshold: checkpoint (nothing new to save)
        // and hibernate until recharged.
        if (sliceInFlight > 0.0) {
            writeCheckpoint(sliceInFlight);
            return;
        }
        dev.powerDown();
        return;
    }

    double slice = std::min(remaining, t_lvi);
    currentPhase = Phase::Compute;
    dev.runWorkload(compute_power, slice, [this, slice] {
        currentPhase = Phase::None;
        sliceInFlight += slice;
        // Work finished (final checkpoint) or LVI fired (save state
        // while energy remains): commit either way.
        writeCheckpoint(sliceInFlight);
    });
}

void
CheckpointKernel::writeCheckpoint(double slice_work)
{
    currentPhase = Phase::Checkpoint;
    pendingCommit = nvProgress.get() + slice_work;
    dev.runWorkload(
        dev.mcu().activePower + spec.checkpointPower,
        spec.checkpointTime, [this] {
            // Overhead and count account on completion; an aborted
            // write is overheadLost plus a torn journal slot.
            ++ckptStats.checkpoints;
            ckptStats.overheadTime += spec.checkpointTime;
            nvProgress.set(pendingCommit);
            sliceInFlight = 0.0;
            currentPhase = Phase::None;
            if (nvProgress.get() >= totalWork - 1e-12) {
                done = true;
                if (onComplete)
                    onComplete();
                return;
            }
            // Hibernate until the buffer refills.
            dev.powerDown();
        });
}

} // namespace capy::rt
