/**
 * @file
 * Reproduces Fig. 11: the distribution of times between temperature
 * samples in the TA application for Fixed, Capy-R, and Capy-P, on the
 * same sequence of 20 temperature events.
 *
 * Sub-second intervals are back-to-back samples of limited utility
 * (gray in the paper); the remaining intervals split into ones during
 * which an event was missed (red) and event-free ones (green). Fixed
 * forces long 50-250 s gaps (large-bank recharges); Capybara's gaps
 * concentrate at the small bank's 1.5-4 s charge time, with only as
 * many long gaps as there are alarms to transmit.
 */

#include <cstdio>
#include <vector>

#include "apps/ta.hh"
#include "bench_util.hh"
#include "env/events.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace capy;
using namespace capy::apps;
using namespace capy::bench;
using namespace capy::core;

namespace
{

constexpr std::uint64_t kSeed = 1111;

struct Dist
{
    const char *name;
    RunMetrics metrics;
    // Short-range histogram (0..4 s) and long-range (4..310 s).
    std::uint64_t backToBack = 0;
    std::uint64_t shortGaps = 0;   ///< 1..4 s
    std::uint64_t longGaps = 0;    ///< > 4 s
    std::uint64_t longMissed = 0;  ///< long gaps containing a missed event
    double longestGap = 0.0;
};

Dist
analyze(const char *name, RunMetrics m)
{
    Dist d{name, std::move(m), 0, 0, 0, 0, 0.0};
    for (const auto &iv : d.metrics.intervals) {
        if (iv.backToBack) {
            ++d.backToBack;
        } else if (iv.length <= 4.0) {
            ++d.shortGaps;
        } else {
            ++d.longGaps;
            if (iv.containsMissed)
                ++d.longMissed;
        }
        if (iv.length > d.longestGap)
            d.longestGap = iv.length;
    }
    return d;
}

void
printHistogram(const Dist &d)
{
    std::printf("\n%s: %llu samples, %llu intervals\n", d.name,
                (unsigned long long)d.metrics.samples,
                (unsigned long long)(d.metrics.intervals.size()));
    sim::Histogram h_short(0.0, 4.0, 8);
    sim::Histogram h_long(4.0, 310.0, 10);
    // Only bin counts are printed; bound the retained-sample sets so
    // interval-dense runs don't grow memory with the horizon.
    h_short.capSamples(4096);
    h_long.capSamples(4096);
    for (const auto &iv : d.metrics.intervals) {
        if (iv.length < 4.0)
            h_short.add(iv.length);
        else
            h_long.add(iv.length);
    }
    std::uint64_t max_c = 1;
    for (std::size_t i = 0; i < h_short.numBins(); ++i)
        max_c = std::max(max_c, h_short.binCount(i));
    for (std::size_t i = 0; i < h_short.numBins(); ++i) {
        std::printf("  %5.1f-%5.1f s: %7llu %s\n", h_short.binLo(i),
                    h_short.binHi(i),
                    (unsigned long long)h_short.binCount(i),
                    bar(double(h_short.binCount(i)), double(max_c), 28)
                        .c_str());
    }
    std::uint64_t max_l = 1;
    for (std::size_t i = 0; i < h_long.numBins(); ++i)
        max_l = std::max(max_l, h_long.binCount(i));
    for (std::size_t i = 0; i < h_long.numBins(); ++i) {
        if (h_long.binCount(i) == 0)
            continue;
        std::printf("  %5.0f-%5.0f s: %7llu %s\n", h_long.binLo(i),
                    h_long.binHi(i),
                    (unsigned long long)h_long.binCount(i),
                    bar(double(h_long.binCount(i)), double(max_l), 28)
                        .c_str());
    }
}

} // namespace

int
main()
{
    setQuiet(true);
    banner("Figure 11",
           "distribution of times between samples (TempAlarm)");

    // 20 temperature events, as in the paper's experiment.
    sim::Rng rng(kSeed, 0x7a);
    auto sched =
        env::EventSchedule::poissonCount(rng, 20, kTaHorizon, 60.0);

    auto runs = runMetricsBatch(
        {[&sched] { return runTempAlarm(Policy::Fixed, sched, kSeed); },
         [&sched] { return runTempAlarm(Policy::CapyR, sched, kSeed); },
         [&sched] {
             return runTempAlarm(Policy::CapyP, sched, kSeed);
         }});
    Dist fixed = analyze("Fixed", std::move(runs[0]));
    Dist capy_r = analyze("Capy-R", std::move(runs[1]));
    Dist capy_p = analyze("Capy-P", std::move(runs[2]));

    sim::Table t({"system", "back-to-back (<1s)", "1-4 s gaps",
                  ">4 s gaps", ">4 s w/ missed event",
                  "longest gap (s)"});
    for (const Dist *d : {&fixed, &capy_r, &capy_p}) {
        t.addRow({d->name, sim::cell(d->backToBack),
                  sim::cell(d->shortGaps), sim::cell(d->longGaps),
                  sim::cell(d->longMissed),
                  sim::cell(d->longestGap, 4)});
    }
    t.print();

    printHistogram(fixed);
    printHistogram(capy_r);
    printHistogram(capy_p);
    std::printf("\n");

    shapeCheck(fixed.longGaps >= 10 && fixed.longestGap > 40.0,
               "Fixed: sampling interrupted by long large-bank "
               "recharges (paper: 110-250 s gaps)");
    shapeCheck(capy_p.shortGaps > 10 * fixed.shortGaps,
               "Capybara: most gaps are the small bank's short charge "
               "time (paper: 1.5-4 s)");
    shapeCheck(capy_p.longGaps <= 3 * 20,
               "Capybara: the large capacity is charged only ~as many "
               "times as there are alarm events");
    shapeCheck(fixed.longMissed > capy_p.longMissed,
               "most missed events hide inside Fixed's long gaps");
    shapeCheck(capy_r.shortGaps > 10 * fixed.shortGaps,
               "Capy-R also samples densely between alarms");
    return finish();
}
