/**
 * @file
 * Federated energy storage in the style of UFoP ["Tragedy of the
 * Coulombs", Hester et al., SenSys'15], the paper's closest prior
 * system (§7): instead of one reconfigurable reservoir, each hardware
 * consumer (the MCU, each peripheral) gets its own dedicated
 * capacitor, charged in a fixed-priority cascade by the harvester.
 *
 * Federation also avoids charging a worst-case bank before doing any
 * work, but it allocates energy to *hardware peripherals*, not to
 * *software tasks*: the allocation is fixed at design time, cannot
 * follow the application's phase changes, and energy stranded in one
 * peripheral's capacitor is unavailable to others. Capybara's §7
 * comparison is reproduced by bench_federated.
 */

#ifndef CAPY_POWER_FEDERATED_HH
#define CAPY_POWER_FEDERATED_HH

#include <memory>
#include <string>
#include <vector>

#include "power/booster.hh"
#include "power/capacitor.hh"
#include "power/harvester.hh"
#include "sim/event.hh"

namespace capy::power
{

/**
 * A cascade of independently buffered storage nodes sharing one
 * harvester. Node 0 (the MCU's) has charging priority; each further
 * node charges only while every earlier node is full, like UFoP's
 * hardware charging chain.
 */
class FederatedStorage
{
  public:
    struct Spec
    {
        InputBoosterSpec input{};
        OutputBoosterSpec output{};
        double maxStorageVoltage = 3.0;
        /** Per-node always-on overhead at the storage node, W. */
        double nodeQuiescentPower = 1e-6;
    };

    FederatedStorage(Spec spec, std::unique_ptr<Harvester> harvester);

    FederatedStorage(const FederatedStorage &) = delete;
    FederatedStorage &operator=(const FederatedStorage &) = delete;

    /**
     * Add a storage node. Nodes charge in addition order (cascade
     * priority). @return node index.
     */
    int addNode(const std::string &name, const CapacitorSpec &cap);

    int numNodes() const { return static_cast<int>(nodes.size()); }
    const CapacitorBank &node(int idx) const;
    CapacitorBank &nodeForTest(int idx);

    /** Advance all nodes to absolute time @p t. */
    void advanceTo(sim::Time t);
    sim::Time time() const { return lastTime; }

    /** Set the rail load drawn from node @p idx, W (0 = idle). */
    void setNodeLoad(int idx, double watts);

    /** Voltage of node @p idx. */
    double nodeVoltage(int idx) const;

    /** Whether node @p idx is charged to the target. */
    bool nodeFull(int idx) const;

    /** Whether every node is full. */
    bool allFull() const;

    /**
     * Time until node @p idx reaches the charge target under current
     * conditions (accounting for the cascade: earlier nodes charge
     * first); kNever if unreachable.
     */
    sim::Time timeToNodeFull(int idx) const;

    /**
     * Time until any *loaded* node crosses its brown-out floor;
     * kNever when no load is active or no crossing occurs.
     */
    sim::Time timeToAnyBrownout() const;

    /** Brown-out floor of node @p idx at its current load. */
    double nodeBrownoutVoltage(int idx) const;

    /** Total energy currently stored across all nodes, J. */
    double totalStoredEnergy() const;

  private:
    struct NodeState
    {
        CapacitorBank bank;
        double load = 0.0;  ///< rail W drawn from this node
    };

    /** Net power into node @p idx at its present voltage, W. */
    double nodePower(std::size_t idx, double v, sim::Time t,
                     bool charging_here) const;

    /** Index of the node the cascade is currently charging, or -1
     *  when all nodes are full. */
    int chargingNode() const;

    /** Advance by at most @p dt with conditions held constant;
     *  returns the time actually consumed (stops at node-full /
     *  node-empty boundaries). */
    double stepOnce(sim::Time t, double dt);

    Spec spec;
    std::unique_ptr<Harvester> harvester;
    std::vector<NodeState> nodes;
    sim::Time lastTime = 0.0;

    /**
     * Scratch energies for timeToNodeFull's analytic peek, sized in
     * addNode so the const query allocates nothing per call. Pure
     * scratch: every use overwrites it first.
     */
    mutable std::vector<double> peekEnergy;
};

} // namespace capy::power

#endif // CAPY_POWER_FEDERATED_HH
