/**
 * @file
 * Temperature Monitor with Alarm (TA, §6.1.2): sample an analog
 * temperature sensor into a 15-entry time series; when the
 * temperature leaves the alarm band, transmit a 25-byte BLE alarm
 * packet carrying the series.
 *
 * Atomicity requirements: (1) one temperature sample; (2) one 25-byte
 * BLE transmission. Temporal requirements: dense sampling (to not
 * miss excursions) and immediate alarm transmission.
 */

#ifndef CAPY_APPS_TA_HH
#define CAPY_APPS_TA_HH

#include "apps/experiment.hh"

namespace capy::apps
{

/**
 * Run the TA application under @p policy against @p schedule.
 *
 * @param seed RNG seed for sensor/radio imperfection.
 * @param horizon simulated run length, s.
 * @param precharge_penalty if >= 0, overrides the hardware's
 *        pre-charge voltage penalty (§6.4 ablation).
 * @param faults optional fault-injection/audit spec (crash sweeps).
 */
RunMetrics runTempAlarm(core::Policy policy,
                        const env::EventSchedule &schedule,
                        std::uint64_t seed,
                        double horizon = kTaHorizon,
                        double precharge_penalty = -1.0,
                        const FaultSpec *faults = nullptr);

} // namespace capy::apps

#endif // CAPY_APPS_TA_HH
