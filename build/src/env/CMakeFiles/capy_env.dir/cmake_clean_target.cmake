file(REMOVE_RECURSE
  "libcapy_env.a"
)
