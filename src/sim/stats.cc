#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "sim/logging.hh"

namespace capy::sim
{

void
SummaryStats::add(double x)
{
    ++n;
    total += x;
    double delta = x - runningMean;
    runningMean += delta / double(n);
    m2 += delta * (x - runningMean);
    minVal = std::min(minVal, x);
    maxVal = std::max(maxVal, x);
}

void
SummaryStats::merge(const SummaryStats &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    double delta = other.runningMean - runningMean;
    std::uint64_t combined = n + other.n;
    m2 += other.m2 +
          delta * delta * double(n) * double(other.n) / double(combined);
    runningMean += delta * double(other.n) / double(combined);
    total += other.total;
    minVal = std::min(minVal, other.minVal);
    maxVal = std::max(maxVal, other.maxVal);
    n = combined;
}

double
SummaryStats::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lower(lo), upper(hi), width((hi - lo) / double(bins)),
      counts(bins, 0)
{
    capy_assert(hi > lo, "histogram range [%g, %g) is empty", lo, hi);
    capy_assert(bins >= 1, "histogram needs at least one bin");
}

void
Histogram::add(double x)
{
    ++totalAdds;
    if (cap == 0 || samples.size() < cap) {
        samples.push_back(x);
        touchSamples();
    } else {
        // Algorithm R: keep the new sample with probability cap/n.
        std::uint64_t j = nextRand() % totalAdds;
        if (j < cap) {
            samples[std::size_t(j)] = x;
            touchSamples();
        }
    }
    if (x < lower) {
        ++below;
    } else if (x >= upper) {
        ++above;
    } else {
        auto idx = static_cast<std::size_t>((x - lower) / width);
        if (idx >= counts.size())  // guard FP edge at the top boundary
            idx = counts.size() - 1;
        ++counts[idx];
    }
}

std::uint64_t
Histogram::nextRand()
{
    // xorshift64*: plenty for reservoir index draws, no <random> cost.
    rngState ^= rngState >> 12;
    rngState ^= rngState << 25;
    rngState ^= rngState >> 27;
    return rngState * 0x2545f4914f6cdd1dULL;
}

void
Histogram::capSamples(std::size_t new_cap)
{
    capy_assert(new_cap >= 1, "sample cap must be >= 1");
    cap = new_cap;
    if (samples.size() <= cap)
        return;
    // Called after overflowing the bound: replay the retained set as
    // a stream through a fresh reservoir so the survivors are still a
    // uniform draw.
    std::vector<double> kept(samples.begin(),
                             samples.begin() + std::ptrdiff_t(cap));
    for (std::size_t i = cap; i < samples.size(); ++i) {
        std::uint64_t j = nextRand() % (i + 1);
        if (j < cap)
            kept[std::size_t(j)] = samples[i];
    }
    samples = std::move(kept);
    touchSamples();
}

double
Histogram::binLo(std::size_t i) const
{
    capy_assert(i < counts.size(), "bin index out of range");
    return lower + width * double(i);
}

double
Histogram::binHi(std::size_t i) const
{
    capy_assert(i < counts.size(), "bin index out of range");
    return lower + width * double(i + 1);
}

double
Histogram::quantile(double q) const
{
    capy_assert(q >= 0.0 && q <= 1.0, "quantile %g out of [0,1]", q);
    capy_assert(!samples.empty(), "quantile of empty histogram");
    if (sortedDirty) {
        sortedCache = samples;
        std::sort(sortedCache.begin(), sortedCache.end());
        sortedDirty = false;
    }
    const std::vector<double> &sorted = sortedCache;
    double pos = q * double(sorted.size() - 1);
    auto i = static_cast<std::size_t>(pos);
    double frac = pos - double(i);
    if (i + 1 >= sorted.size())
        return sorted.back();
    return sorted[i] * (1.0 - frac) + sorted[i + 1] * frac;
}

double
Histogram::mean() const
{
    if (samples.empty())
        return 0.0;
    double s = 0.0;
    for (double v : samples)
        s += v;
    return s / double(samples.size());
}

Table::Table(std::vector<std::string> headers) : cols(std::move(headers))
{
    capy_assert(!cols.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    capy_assert(cells.size() == cols.size(),
                "row arity %zu != header arity %zu", cells.size(),
                cols.size());
    rows.push_back(std::move(cells));
}

std::string
Table::str() const
{
    std::vector<std::size_t> widths(cols.size());
    for (std::size_t c = 0; c < cols.size(); ++c)
        widths[c] = cols[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << "  " << row[c]
                << std::string(widths[c] - row[c].size(), ' ');
        }
        out << '\n';
    };
    emit_row(cols);
    std::size_t rule = 0;
    for (std::size_t w : widths)
        rule += w + 2;
    out << std::string(rule, '-') << '\n';
    for (const auto &row : rows)
        emit_row(row);
    return out.str();
}

void
Table::print() const
{
    std::fputs(str().c_str(), stdout);
}

std::string
cell(double v, int precision)
{
    return strfmt("%.*g", precision, v);
}

std::string
cell(std::uint64_t v)
{
    return strfmt("%llu", static_cast<unsigned long long>(v));
}

std::string
cell(int v)
{
    return strfmt("%d", v);
}

std::string
percentCell(double fraction, int precision)
{
    return strfmt("%.*f%%", precision, fraction * 100.0);
}

} // namespace capy::sim
