#include "sim/event.hh"

#include <utility>

#include "sim/logging.hh"

namespace capy::sim
{

EventId
EventQueue::schedule(Time when, Callback fn)
{
    capy_assert(static_cast<bool>(fn), "scheduled a null callback");
    std::uint32_t slot;
    if (!freeSlots.empty()) {
        slot = freeSlots.back();
        freeSlots.pop_back();
    } else {
        slot = std::uint32_t(slots.size());
        slots.push_back(Slot{});
    }
    Slot &s = slots[slot];
    s.live = true;
    EventId id = makeId(slot, s.gen);
    heap.push(Record{when, nextSeq++, id, std::move(fn)});
    ++pendingCount;
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    if (id == kInvalidEvent)
        return false;
    std::uint32_t slot = slotOf(id);
    if (slot >= slots.size())
        return false;
    const Slot &s = slots[slot];
    if (!s.live || s.gen != genOf(id))
        return false;
    // The heap record becomes stale and is dropped lazily when it
    // reaches the head; the slot is reusable immediately.
    retire(slot);
    return true;
}

bool
EventQueue::isPending(EventId id) const
{
    if (id == kInvalidEvent)
        return false;
    std::uint32_t slot = slotOf(id);
    return slot < slots.size() && slots[slot].live &&
           slots[slot].gen == genOf(id);
}

void
EventQueue::skipCancelled() const
{
    while (!heap.empty() && stale(heap.top()))
        heap.pop();
}

bool
EventQueue::empty() const
{
    skipCancelled();
    return heap.empty();
}

Time
EventQueue::nextTime() const
{
    skipCancelled();
    capy_assert(!heap.empty(), "nextTime() on an empty event queue");
    return heap.top().when;
}

Time
EventQueue::runNext()
{
    skipCancelled();
    capy_assert(!heap.empty(), "runNext() on an empty event queue");
    // Move the record out before popping so the callback may schedule
    // further events (which can reallocate the heap) safely.
    Record rec = std::move(const_cast<Record &>(heap.top()));
    heap.pop();
    capy_assert(!stale(rec), "executing a stale event record");
    retire(slotOf(rec.id));
    ++numExecuted;
    rec.fn();
    return rec.when;
}

} // namespace capy::sim
