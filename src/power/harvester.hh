/**
 * @file
 * Energy harvester models. A harvester exposes the power and voltage
 * available at its output as functions of simulated time; the power
 * system decides how much of that power actually reaches storage
 * (booster efficiency, cold start, limiter).
 */

#ifndef CAPY_POWER_HARVESTER_HH
#define CAPY_POWER_HARVESTER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/event.hh"

namespace capy::power
{

/**
 * Abstract energy source. Implementations must be pure functions of
 * time so the transient solver can treat conditions as constant
 * between the boundaries they declare.
 */
class Harvester
{
  public:
    virtual ~Harvester() = default;

    /** Power available at the harvester output at time @p t, W. */
    virtual double power(sim::Time t) const = 0;

    /** Output voltage at time @p t (pre-limiter), V. */
    virtual double voltage(sim::Time t) const = 0;

    /**
     * Next time > @p t at which power() or voltage() changes; kNever
     * for constant sources. The power system integrates in closed
     * form between boundaries.
     */
    virtual sim::Time nextChange(sim::Time t) const = 0;

    /** Human-readable name for traces. */
    virtual std::string name() const = 0;
};

/**
 * Bench-supply harvester: a voltage regulator behind an attenuating
 * resistor, delivering at most a fixed power (the paper's GRC rig
 * supplies at most 10 mW).
 */
class RegulatedSupply : public Harvester
{
  public:
    RegulatedSupply(double max_power, double output_voltage);

    double power(sim::Time) const override { return maxPower; }
    double voltage(sim::Time) const override { return outputVoltage; }
    sim::Time nextChange(sim::Time) const override;
    std::string name() const override { return "regulated-supply"; }

  private:
    double maxPower;
    double outputVoltage;
};

/**
 * Solar panel array: @p n_series panels in series (raising voltage for
 * dim conditions, relying on the limiter in bright light). Delivered
 * power scales with an illumination function in [0, 1] sampled from
 * the environment (e.g. a PWM-dimmed halogen bulb).
 */
class SolarArray : public Harvester
{
  public:
    /** Illumination scale as a function of time, in [0, 1]. */
    using Illumination = std::function<double(sim::Time)>;

    /**
     * @param n_series panels in series.
     * @param panel_peak_power W per panel at illumination 1.0.
     * @param panel_voltage operating voltage per panel at the maximum
     *        power point.
     * @param illum illumination function; nullptr = constant 1.0.
     * @param change_period if the illumination varies, the spacing of
     *        integration boundaries; 0 for constant.
     */
    SolarArray(unsigned n_series, double panel_peak_power,
               double panel_voltage, Illumination illum = nullptr,
               sim::Time change_period = 0.0);

    double power(sim::Time t) const override;
    double voltage(sim::Time t) const override;
    sim::Time nextChange(sim::Time t) const override;
    std::string name() const override { return "solar-array"; }

    /// @name Query-cursor observability
    /// The power system evaluates power(t) many times at one instant
    /// (once per phase iteration of the transient walk); the last
    /// evaluation of the illumination std::function is memoized by
    /// exact query time, so repeats cost a comparison instead of an
    /// indirect call. Same-instance/single-owner caveat as
    /// TraceHarvester.
    /// @{
    std::uint64_t cursorHits() const { return cacheHitCount; }
    std::uint64_t cursorMisses() const { return cacheMissCount; }
    /// @}

  private:
    unsigned nSeries;
    double peakPower;
    double panelVoltage;
    Illumination illumination;
    sim::Time changePeriod;
    mutable sim::Time cachedTime = -1.0;
    mutable double cachedScale = 0.0;
    mutable std::uint64_t cacheHitCount = 0;
    mutable std::uint64_t cacheMissCount = 0;
};

/**
 * Trace-replay harvester: plays back a recorded (time, power) trace
 * with step interpolation, looping when the trace is shorter than the
 * simulation. This is how measured deployment conditions (e.g. a
 * day of sunlight, an RF site survey) drive the simulator.
 */
class TraceHarvester : public Harvester
{
  public:
    /** One trace sample: power available from @p time onward. */
    struct Sample
    {
        sim::Time time;
        double power;
    };

    /**
     * @param samples step-wise trace, strictly increasing times,
     *        first sample at t = 0.
     * @param output_voltage harvester output voltage (constant).
     * @param loop whether to repeat the trace past its end; when
     *        false the power is 0 after the last sample + period.
     */
    TraceHarvester(std::vector<Sample> samples, double output_voltage,
                   bool loop = true);

    double power(sim::Time t) const override;
    double voltage(sim::Time) const override { return outputVoltage; }
    sim::Time nextChange(sim::Time t) const override;
    std::string name() const override { return "trace-harvester"; }

    /** Duration covered by the trace (last sample time). */
    sim::Time traceSpan() const { return span; }

    /// @name Query-cursor observability
    /// Simulation time only moves forward, so queries resume from a
    /// cursor and scan ahead a few samples (amortized O(1)) instead
    /// of binary-searching the trace on every call. Backward jumps
    /// (predictive-query restarts, loop wrap) fall back to the
    /// binary search and count as misses. The cursor is pure memo
    /// state: results are bit-identical to the uncursored search.
    /// Instances are owned by a single simulation (one sweep job),
    /// so the mutable cursor needs no synchronization.
    /// @{
    std::uint64_t cursorHits() const { return cursorHitCount; }
    std::uint64_t cursorMisses() const { return cursorMissCount; }
    /// @}

  private:
    /** Index of the sample active at trace-local time @p local,
     *  by binary search (the cursor fallback and the oracle the
     *  property tests compare against). */
    std::size_t indexAt(double local) const;

    /** Cursor-accelerated indexAt(). */
    std::size_t seek(double local) const;

    std::vector<Sample> trace;
    double outputVoltage;
    bool looping;
    sim::Time span;
    mutable std::size_t cursor = 0;
    mutable std::uint64_t cursorHitCount = 0;
    mutable std::uint64_t cursorMissCount = 0;
};

/**
 * RF harvester: very low power at a voltage below what loads need,
 * usable only through the input booster (bypass never conducts once
 * storage rises above the antenna voltage).
 */
class RfHarvester : public Harvester
{
  public:
    RfHarvester(double harvest_power, double rectified_voltage);

    double power(sim::Time) const override { return harvestPower; }
    double voltage(sim::Time) const override { return rectifiedVoltage; }
    sim::Time nextChange(sim::Time) const override;
    std::string name() const override { return "rf-harvester"; }

  private:
    double harvestPower;
    double rectifiedVoltage;
};

} // namespace capy::power

#endif // CAPY_POWER_HARVESTER_HH
