file(REMOVE_RECURSE
  "CMakeFiles/capybara_cli.dir/capybara_cli.cpp.o"
  "CMakeFiles/capybara_cli.dir/capybara_cli.cpp.o.d"
  "capybara_cli"
  "capybara_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capybara_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
