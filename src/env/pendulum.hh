/**
 * @file
 * The servo-driven pendulum rig (Fig. 7): a rigid pendulum swings a
 * tap-and-swipe motion over the board at each scheduled event,
 * presenting a proximity target, a decodable gesture, and (for CSR) a
 * moving magnet.
 */

#ifndef CAPY_ENV_PENDULUM_HH
#define CAPY_ENV_PENDULUM_HH

#include "env/events.hh"
#include "sim/random.hh"

namespace capy::env
{

/**
 * Pendulum actuation model. Each event at time T produces a swing
 * over [T, T + swingDuration). A gesture sensor window that starts
 * early enough in the swing decodes the motion direction; one that
 * starts too late sees motion but cannot distinguish direction
 * ("misclassified", §6.2); no overlap means no gesture at all.
 */
class Pendulum
{
  public:
    struct Spec
    {
        /** Time the pendulum is over the board per swing, s. */
        double swingDuration = 0.6;
        /**
         * Latest window start (relative to swing start) that still
         * allows direction decoding.
         */
        double decodeDeadline = 0.3;
        /** Chance a well-timed window still fails to decode
         *  (inherent sensor imperfection, visible even on continuous
         *  power in Fig. 8). */
        double pDecodeFail = 0.05;
        /** Chance a well-timed window decodes the wrong direction. */
        double pMisclassify = 0.03;
    };

    Pendulum(const EventSchedule &schedule, Spec spec);
    explicit Pendulum(const EventSchedule &schedule)
        : Pendulum(schedule, Spec{})
    {}

    const EventSchedule &schedule() const { return events; }
    const Spec &spec() const { return pendulumSpec; }

    /** Is the pendulum over the board at time @p t? (proximity /
     *  phototransistor signal) */
    bool objectPresent(sim::Time t) const;

    /** Magnetic field magnitude at @p t (arbitrary units; elevated
     *  while the magnet swings by). */
    double fieldStrength(sim::Time t) const;

    /** Id of the swing active at @p t; -1 if none. */
    int eventAt(sim::Time t) const;

    /** Outcome of a gesture-sensing window. */
    enum class GestureResult
    {
        NoGesture,      ///< window did not overlap a swing usefully
        Misclassified,  ///< motion seen too late to decode direction
        Decoded,        ///< direction decoded correctly
    };

    /**
     * Classify a gesture-sensing window [start, start + duration).
     * @param rng resolves the inherent sensor imperfection.
     * @param event_id out: the swing involved, or -1.
     */
    GestureResult senseGesture(sim::Time start, double duration,
                               sim::Rng &rng, int *event_id) const;

  private:
    const EventSchedule &events;
    Spec pendulumSpec;
};

} // namespace capy::env

#endif // CAPY_ENV_PENDULUM_HH
