#include "apps/ta.hh"

#include "dev/peripheral.hh"
#include "env/thermal.hh"
#include "power/units.hh"
#include "rt/channel.hh"

namespace capy::apps
{

using namespace capy::literals;

RunMetrics
runTempAlarm(core::Policy policy, const env::EventSchedule &schedule,
             std::uint64_t seed, double horizon,
             double precharge_penalty, const FaultSpec *faults)
{
    sim::Simulator simulator;
    Board board = makeBoard(simulator, AppBoard::TempAlarm, policy,
                            power::SwitchKind::NormallyOpen,
                            precharge_penalty);
    env::ThermalRig rig(schedule);
    env::Scoreboard sb(schedule);
    dev::Radio radio(dev::bleRadio());
    sim::Rng rng(seed, 0x1a);
    dev::NvMemory fram("fram");

    // Chain channels.
    rt::RingChannel<double, 15> series(&fram);
    rt::Channel<int> pendingAlarm(&fram, -1);
    rt::Channel<int> lastReported(&fram, -1);

    rt::App app;
    const auto tmp36 = dev::periph::tmp36();
    const auto ble = dev::bleRadio();

    rt::Task *sense = nullptr;
    rt::Task *radio_tx = nullptr;

    radio_tx = app.addTask(
        "radio_tx", txDuration(ble, 25), 0.0,
        [&](rt::Kernel &k) -> const rt::Task * {
            int ev = pendingAlarm.get();
            lastReported.set(ev);
            if (radio.attemptDelivery(rng))
                sb.recordReport(ev, k.now());
            return sense;
        });
    // The host MCU sleeps while the radio subsystem transmits.
    radio_tx->absolutePower = ble.txPower;

    sense = app.addTask(
        "sense", 8_ms + tmp36.warmupTime, tmp36.activePower,
        [&](rt::Kernel &k) -> const rt::Task * {
            sim::Time t = k.now();
            sb.recordSample(t);
            series.push(rig.temperature(t));
            int ev = rig.alarmEventAt(t);
            if (ev >= 0) {
                sb.recordDetection(ev);
                if (lastReported.get() != ev) {
                    pendingAlarm.set(ev);
                    return radio_tx;
                }
            }
            return sense;
        });

    app.setEntry(sense);

    rt::Kernel kernel(*board.device, app, &fram);
    core::Runtime runtime(kernel, board.registry, policy, &fram);
    // §6.1.2: one configuration per energy mode; Capy-P pre-charges
    // the big bank prior to the alarm burst.
    runtime.annotate(sense, core::Annotation::preburst(board.bigMode,
                                                       board.smallMode));
    runtime.annotate(radio_tx, core::Annotation::burst(board.bigMode));
    runtime.install();

    std::optional<FaultHarness> harness;
    if (faults) {
        harness.emplace(*board.device, *faults, &fram);
        harness->watchKernel(kernel);
    }

    kernel.start();
    simulator.runUntil(horizon);

    RunMetrics out;
    collectMetrics(out, sb, *board.device, kernel, runtime, radio);
    if (harness)
        out.faults = harness->finish();
    return out;
}

} // namespace capy::apps
