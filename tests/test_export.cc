/**
 * @file
 * Tests for CSV/gnuplot export and the kernel's per-task energy
 * attribution profiler.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "dev/device.hh"
#include "power/parts.hh"
#include "rt/kernel.hh"
#include "sim/export.hh"
#include "sim/simulator.hh"

using namespace capy;
using namespace capy::sim;

namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::string
tmpPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

} // namespace

TEST(Export, TimeSeriesCsv)
{
    TimeSeries ts("volts");
    ts.record(0.0, 1.5);
    ts.record(2.0, 2.5);
    std::string path = tmpPath("series.csv");
    ASSERT_TRUE(writeCsv(ts, path));
    std::string body = slurp(path);
    EXPECT_NE(body.find("time,volts"), std::string::npos);
    EXPECT_NE(body.find("2,2.5"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Export, MultiSeriesAligned)
{
    TimeSeries a("a"), b("b");
    a.record(0.0, 1.0);
    a.record(10.0, 2.0);
    b.record(5.0, 7.0);
    std::string path = tmpPath("multi.csv");
    ASSERT_TRUE(writeCsv({&a, &b}, path));
    std::string body = slurp(path);
    EXPECT_NE(body.find("time,a,b"), std::string::npos);
    // Union of timestamps: 0, 5, 10 -> 3 data rows + header.
    int lines = 0;
    for (char c : body)
        lines += c == '\n';
    EXPECT_EQ(lines, 4);
    std::remove(path.c_str());
}

TEST(Export, SpanTraceCsv)
{
    SpanTrace st;
    st.open(0.0, "charge");
    st.close(4.0);
    st.open(4.0, "on");
    st.close(5.0);
    std::string path = tmpPath("spans.csv");
    ASSERT_TRUE(writeCsv(st, path));
    std::string body = slurp(path);
    EXPECT_NE(body.find("start,end,duration,label"),
              std::string::npos);
    EXPECT_NE(body.find("0,4,4,charge"), std::string::npos);
    EXPECT_NE(body.find("4,5,1,on"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Export, HistogramCsvWithOverflow)
{
    Histogram h(0.0, 10.0, 2);
    h.add(-1.0);
    h.add(3.0);
    h.add(7.0);
    h.add(42.0);
    std::string path = tmpPath("hist.csv");
    ASSERT_TRUE(writeCsv(h, path));
    std::string body = slurp(path);
    EXPECT_NE(body.find("bin_lo,bin_hi,count"), std::string::npos);
    EXPECT_NE(body.find("-inf,0,1"), std::string::npos);
    EXPECT_NE(body.find("10,+inf,1"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Export, UnwritablePathFails)
{
    TimeSeries ts("x");
    ts.record(0.0, 1.0);
    EXPECT_FALSE(writeCsv(ts, "/nonexistent-dir/foo.csv"));
}

TEST(Export, GnuplotScriptMentionsInputs)
{
    std::string s = gnuplotScript("data.csv", "My Title", "volts");
    EXPECT_NE(s.find("data.csv"), std::string::npos);
    EXPECT_NE(s.find("My Title"), std::string::npos);
    EXPECT_NE(s.find("volts"), std::string::npos);
}

TEST(TaskEnergyProfile, AttributesCompletedWork)
{
    sim::Simulator s;
    power::PowerSystem::Spec spec;
    auto ps = std::make_unique<power::PowerSystem>(
        spec,
        std::make_unique<power::RegulatedSupply>(10e-3, 3.3));
    ps->addBank("b", power::parts::x5r100uF().parallel(6));
    dev::Device device(s, std::move(ps), dev::msp430fr5969(),
                       dev::Device::PowerMode::Intermittent);

    rt::App app;
    rt::Task *light = nullptr;
    rt::Task *heavy = app.addTask("heavy", 5e-3, 10e-3,
                                  [&](rt::Kernel &) -> const rt::Task * {
                                      return light;
                                  });
    light = app.addTask("light", 1e-3, 0.0,
                        [&](rt::Kernel &k) -> const rt::Task * {
                            return k.stats().taskCompletions < 20
                                       ? heavy
                                       : nullptr;
                        });
    app.setEntry(heavy);
    rt::Kernel kernel(device, app);
    kernel.start();
    s.runUntil(120.0);
    ASSERT_TRUE(kernel.halted());

    const auto &profile = kernel.energyByTask();
    ASSERT_TRUE(profile.count("heavy"));
    ASSERT_TRUE(profile.count("light"));
    const auto &h = profile.at("heavy");
    const auto &l = profile.at("light");
    EXPECT_GT(h.completions, 5u);
    // Per-completion energy: (22 mW + 10 mW) * 5 ms vs 22 mW * 1 ms.
    EXPECT_NEAR(h.railEnergy / double(h.completions), 32e-3 * 5e-3,
                1e-9);
    EXPECT_NEAR(l.railEnergy / double(l.completions), 22e-3 * 1e-3,
                1e-9);
    EXPECT_NEAR(h.activeTime, double(h.completions) * 5e-3, 1e-9);
}

TEST(TaskEnergyProfile, TracksWastedAttempts)
{
    sim::Simulator s;
    power::PowerSystem::Spec spec;
    auto ps = std::make_unique<power::PowerSystem>(
        spec,
        std::make_unique<power::RegulatedSupply>(10e-3, 3.3));
    ps->addBank("b", power::parts::x5r100uF().parallel(4));
    dev::Device device(s, std::move(ps), dev::msp430fr5969(),
                       dev::Device::PowerMode::Intermittent);

    rt::App app;
    // Oversized task: every attempt browns out.
    app.addTask("doomed", 10.0, 10e-3,
                [&](rt::Kernel &) -> const rt::Task * {
                    return nullptr;
                });
    rt::Kernel kernel(device, app);
    kernel.start();
    s.runUntil(60.0);

    const auto &profile = kernel.energyByTask();
    ASSERT_TRUE(profile.count("doomed"));
    const auto &d = profile.at("doomed");
    EXPECT_EQ(d.completions, 0u);
    EXPECT_GT(d.failedAttempts, 3u);
    EXPECT_GT(d.wastedEnergy, 0.0);
    EXPECT_DOUBLE_EQ(d.railEnergy, 0.0);
}
