/**
 * @file
 * Statistics collection: streaming summaries, histograms, and an
 * aligned-table formatter used by the benchmark harnesses to print
 * paper-style rows.
 */

#ifndef CAPY_SIM_STATS_HH
#define CAPY_SIM_STATS_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace capy::sim
{

/**
 * Streaming mean/variance/min/max accumulator (Welford's algorithm).
 */
class SummaryStats
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const SummaryStats &other);

    /** Clear all accumulated state. */
    void reset() { *this = SummaryStats(); }

    std::uint64_t count() const { return n; }
    double sum() const { return total; }
    double mean() const { return n ? runningMean : 0.0; }
    /** Population variance. */
    double variance() const { return n ? m2 / double(n) : 0.0; }
    double stddev() const;
    double min() const { return n ? minVal : 0.0; }
    double max() const { return n ? maxVal : 0.0; }

  private:
    std::uint64_t n = 0;
    double runningMean = 0.0;
    double m2 = 0.0;
    double total = 0.0;
    double minVal = std::numeric_limits<double>::infinity();
    double maxVal = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-bin histogram over [lo, hi) with underflow/overflow buckets.
 * Also retains every sample so exact quantiles can be computed; the
 * evaluation datasets are small (thousands of samples).
 */
class Histogram
{
  public:
    /**
     * @param lo Lower bound of the binned range.
     * @param hi Upper bound (exclusive).
     * @param bins Number of equal-width bins (>= 1).
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Record a sample. */
    void add(double x);

    std::uint64_t count() const { return samples.size(); }
    std::uint64_t binCount(std::size_t i) const { return counts.at(i); }
    std::uint64_t underflow() const { return below; }
    std::uint64_t overflow() const { return above; }
    std::size_t numBins() const { return counts.size(); }
    /** Inclusive lower edge of bin @p i. */
    double binLo(std::size_t i) const;
    /** Exclusive upper edge of bin @p i. */
    double binHi(std::size_t i) const;

    /** Exact quantile @p q in [0, 1] over all recorded samples. */
    double quantile(double q) const;

    /** Mean over all recorded samples. */
    double mean() const;

    /** All recorded samples in insertion order. */
    const std::vector<double> &data() const { return samples; }

  private:
    double lower, upper, width;
    std::vector<std::uint64_t> counts;
    std::uint64_t below = 0, above = 0;
    std::vector<double> samples;
};

/**
 * Aligned plain-text table for experiment output. Columns are sized to
 * the widest cell; numeric formatting is caller-controlled via cell
 * strings.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Render with column alignment and a header rule. */
    std::string str() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    std::vector<std::string> cols;
    std::vector<std::vector<std::string>> rows;
};

/** Format a double with %g-style compactness into a cell. */
std::string cell(double v, int precision = 4);

/** Format an integer cell. */
std::string cell(std::uint64_t v);
std::string cell(int v);

/** Render a fraction as a percent cell, e.g. 0.756 -> "75.6%". */
std::string percentCell(double fraction, int precision = 1);

} // namespace capy::sim

#endif // CAPY_SIM_STATS_HH
