/**
 * @file
 * Tests for the booster, limiter, bank-switch, and harvester models.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "power/bankswitch.hh"
#include "power/booster.hh"
#include "power/harvester.hh"
#include "power/solver.hh"
#include "power/units.hh"

using namespace capy;
using namespace capy::power;

namespace
{

InputBoosterSpec
inSpec()
{
    return InputBoosterSpec{};
}

OutputBoosterSpec
outSpec()
{
    return OutputBoosterSpec{};
}

} // namespace

TEST(InputBooster, BoostedTransferAboveColdStart)
{
    auto s = inSpec();
    double p = inputChargePower(s, 10e-3, 3.3, 2.0);
    EXPECT_NEAR(p, 0.80 * 10e-3 - s.quiescentPower, 1e-12);
}

TEST(InputBooster, TrickleOnlyBelowColdStartWithoutBypass)
{
    auto s = inSpec();
    s.bypassEnabled = false;
    double p = inputChargePower(s, 10e-3, 3.3, 0.5);
    EXPECT_NEAR(p, s.coldStartFraction * 10e-3, 1e-12);
}

TEST(InputBooster, BypassSpeedsColdStart)
{
    auto with = inSpec();
    auto without = inSpec();
    without.bypassEnabled = false;
    double p_with = inputChargePower(with, 10e-3, 3.3, 0.5);
    double p_without = inputChargePower(without, 10e-3, 3.3, 0.5);
    // The paper reports the bypass cuts charge time by >= 10x.
    EXPECT_GE(p_with / p_without, 10.0);
}

TEST(InputBooster, BypassStopsAtDiodeCutoff)
{
    auto s = inSpec();
    // Storage above harvester voltage minus the diode drop: the diode
    // blocks, only the trickle path remains.
    double v_storage = 3.3 - s.bypassDiodeDrop + 0.01;
    // Keep below the cold-start threshold to stay in the cold path.
    s.coldStartVoltage = 5.0;
    double p = inputChargePower(s, 10e-3, 3.3, v_storage);
    EXPECT_NEAR(p, s.coldStartFraction * 10e-3, 1e-12);
}

TEST(InputBooster, NoHarvestNoCharge)
{
    EXPECT_DOUBLE_EQ(inputChargePower(inSpec(), 0.0, 3.3, 1.0), 0.0);
}

TEST(InputBooster, QuiescentNeverGoesNegative)
{
    auto s = inSpec();
    // Harvest power smaller than converter quiescent draw.
    double p = inputChargePower(s, 5e-6, 3.3, 2.0);
    EXPECT_GE(p, 0.0);
}

TEST(OutputBooster, StorageDrawIncludesLossAndQuiescent)
{
    auto s = outSpec();
    double p = storageDrawPower(s, 8.5e-3);
    EXPECT_NEAR(p, 8.5e-3 / 0.85 + s.quiescentPower, 1e-12);
}

TEST(OutputBooster, BrownoutFloorAtZeroEsr)
{
    auto s = outSpec();
    EXPECT_NEAR(brownoutVoltage(s, 10e-3, 0.0), s.minInputRun, 1e-12);
}

TEST(OutputBooster, EsrRaisesBrownoutFloor)
{
    auto s = outSpec();
    double lo = brownoutVoltage(s, 8e-3, 0.1);
    double hi = brownoutVoltage(s, 8e-3, 160.0);
    EXPECT_LT(lo, hi);
    // With 160 ohm (CPH3225A), the floor strands much of the energy.
    EXPECT_GT(hi, 1.5);
}

TEST(OutputBooster, DroopEquationHolds)
{
    auto s = outSpec();
    double esr = 20.0;
    double load = 5e-3;
    double v = brownoutVoltage(s, load, esr);
    double p_in = storageDrawPower(s, load);
    EXPECT_NEAR(v - (p_in / v) * esr, s.minInputRun, 1e-9);
}

TEST(OutputBooster, StartVoltageAboveRunVoltage)
{
    auto s = outSpec();
    EXPECT_GT(startVoltage(s, 5e-3, 10.0),
              brownoutVoltage(s, 5e-3, 10.0));
}

TEST(Limiter, ClampsHighVoltage)
{
    LimiterSpec lim;
    EXPECT_DOUBLE_EQ(limitedVoltage(lim, 12.0), lim.clampVoltage);
    EXPECT_DOUBLE_EQ(limitedVoltage(lim, 3.0), 3.0);
}

TEST(BankSwitch, DefaultStatesByKind)
{
    SwitchSpec no;
    no.kind = SwitchKind::NormallyOpen;
    SwitchSpec nc;
    nc.kind = SwitchKind::NormallyClosed;
    BankSwitch s_no(no), s_nc(nc);
    EXPECT_FALSE(s_no.closed());
    EXPECT_TRUE(s_nc.closed());
    EXPECT_TRUE(s_no.atDefault());
    EXPECT_TRUE(s_nc.atDefault());
}

TEST(BankSwitch, CommandChangesState)
{
    BankSwitch s(SwitchSpec{});
    s.command(true, 1.0, true);
    EXPECT_TRUE(s.closed());
    EXPECT_FALSE(s.atDefault());
}

TEST(BankSwitch, RetentionTimeNearThreeMinutes)
{
    // §6.5: 4.7 uF latch retains state for approximately 3 minutes.
    BankSwitch s(SwitchSpec{});
    EXPECT_NEAR(s.retentionTime(), 180.0, 40.0);
}

TEST(BankSwitch, StateHeldWhilePowered)
{
    BankSwitch s(SwitchSpec{});
    s.command(true, 0.0, true);
    s.update(10000.0, true);  // long but powered
    EXPECT_TRUE(s.closed());
}

TEST(BankSwitch, RevertsAfterRetentionUnpowered)
{
    BankSwitch s(SwitchSpec{});
    s.command(true, 0.0, true);
    double ret = s.retentionTime();
    s.update(ret * 0.9, false);
    EXPECT_TRUE(s.closed()) << "should still hold at 90% retention";
    s.update(ret * 1.1, false);
    EXPECT_FALSE(s.closed()) << "should revert past retention";
    EXPECT_EQ(s.reversions(), 1u);
}

TEST(BankSwitch, NormallyClosedRevertsToClosed)
{
    SwitchSpec spec;
    spec.kind = SwitchKind::NormallyClosed;
    BankSwitch s(spec);
    s.command(false, 0.0, true);
    EXPECT_FALSE(s.closed());
    s.update(s.retentionTime() * 2.0, false);
    EXPECT_TRUE(s.closed());
}

TEST(BankSwitch, ExpiryTimePredictsReversion)
{
    BankSwitch s(SwitchSpec{});
    s.command(true, 0.0, true);
    double exp = s.expiryTime(0.0);
    ASSERT_TRUE(std::isfinite(exp));
    EXPECT_NEAR(exp, s.retentionTime(), 1e-9);
    // Just before expiry: still closed. At expiry: reverts.
    s.update(exp - 1e-3, false);
    EXPECT_TRUE(s.closed());
    s.update(exp + 1e-9, false);
    EXPECT_FALSE(s.closed());
}

TEST(BankSwitch, ExpiryNeverAtDefault)
{
    BankSwitch s(SwitchSpec{});
    EXPECT_TRUE(std::isinf(s.expiryTime(0.0)));
}

TEST(BankSwitch, IntermediateDecayResumesCorrectly)
{
    BankSwitch s(SwitchSpec{});
    s.command(true, 0.0, true);
    double ret = s.retentionTime();
    // Decay in many small steps must match one big step.
    for (int i = 1; i <= 10; ++i)
        s.update(ret * 0.09 * i, false);
    EXPECT_TRUE(s.closed());
    s.update(ret * 1.01, false);
    EXPECT_FALSE(s.closed());
}

TEST(Harvester, RegulatedSupplyIsConstant)
{
    RegulatedSupply h(10e-3, 3.3);
    EXPECT_DOUBLE_EQ(h.power(0.0), 10e-3);
    EXPECT_DOUBLE_EQ(h.power(1e6), 10e-3);
    EXPECT_DOUBLE_EQ(h.voltage(5.0), 3.3);
    EXPECT_TRUE(std::isinf(h.nextChange(0.0)));
}

TEST(Harvester, SolarArraySeriesVoltage)
{
    SolarArray h(2, 11e-3, 2.5);
    EXPECT_DOUBLE_EQ(h.voltage(0.0), 5.0);
    EXPECT_DOUBLE_EQ(h.power(0.0), 22e-3);
}

TEST(Harvester, SolarIlluminationScalesPower)
{
    SolarArray h(1, 20e-3, 2.5,
                 [](double t) { return t < 10.0 ? 0.42 : 1.0; }, 1.0);
    EXPECT_NEAR(h.power(0.0), 8.4e-3, 1e-12);
    EXPECT_NEAR(h.power(11.0), 20e-3, 1e-12);
    EXPECT_DOUBLE_EQ(h.nextChange(0.5), 1.0);
    EXPECT_DOUBLE_EQ(h.nextChange(1.0), 2.0);
}

TEST(Harvester, IlluminationClampedToUnit)
{
    SolarArray h(1, 10e-3, 2.5, [](double) { return 3.0; }, 1.0);
    EXPECT_DOUBLE_EQ(h.power(0.0), 10e-3);
}

TEST(Harvester, RfHarvesterLowVoltage)
{
    RfHarvester h(200e-6, 1.2);
    EXPECT_DOUBLE_EQ(h.power(0.0), 200e-6);
    EXPECT_DOUBLE_EQ(h.voltage(0.0), 1.2);
}
