/**
 * @file
 * Tests for the parallel batch-execution engine: results arrive in
 * submission order and are identical at every pool size, exceptions
 * propagate deterministically, empty batches are no-ops, CAPY_JOBS
 * controls the default pool size, and every bench binary that sweeps
 * through the engine emits byte-identical output at any thread
 * count.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/runner.hh"
#include "sim/simulator.hh"

using namespace capy;
using namespace capy::sim;

namespace
{

/**
 * A job of the kind BatchRunner exists for: an independent
 * event-driven simulation whose result is a pure function of its
 * index.
 */
std::uint64_t
simJob(std::size_t index)
{
    Simulator s;
    std::uint64_t acc = index;
    for (int i = 0; i < 50; ++i) {
        s.schedule(double(i) * 0.5 + double(index % 7),
                   [&acc, &s] { acc = acc * 31 + std::uint64_t(s.now() * 2.0); });
    }
    s.run();
    return acc;
}

} // namespace

TEST(BatchRunner, ResultsArriveInSubmissionOrder)
{
    BatchRunner pool(4);
    auto out = pool.map(64, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 64u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(BatchRunner, DeterministicAcrossThreadCounts)
{
    std::vector<std::vector<std::uint64_t>> results;
    for (unsigned threads : {1u, 2u, 8u}) {
        BatchRunner pool(threads);
        EXPECT_EQ(pool.threads(), threads);
        results.push_back(pool.map(40, simJob));
    }
    EXPECT_EQ(results[0], results[1]);
    EXPECT_EQ(results[0], results[2]);
}

TEST(BatchRunner, EmptyBatchIsANoOp)
{
    BatchRunner pool(4);
    auto out = pool.map(0, [](std::size_t) { return 1; });
    EXPECT_TRUE(out.empty());
    int calls = 0;
    pool.forEach(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(BatchRunner, ExceptionFromAJobPropagates)
{
    BatchRunner pool(4);
    EXPECT_THROW(pool.forEach(8,
                              [](std::size_t i) {
                                  if (i == 5)
                                      throw std::runtime_error("boom");
                              }),
                 std::runtime_error);
}

TEST(BatchRunner, LowestIndexExceptionWinsDeterministically)
{
    BatchRunner pool(8);
    for (int attempt = 0; attempt < 5; ++attempt) {
        try {
            pool.forEach(16, [](std::size_t i) {
                if (i % 3 == 0 && i > 0)
                    throw std::runtime_error("job " +
                                             std::to_string(i));
            });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "job 3");
        }
    }
}

TEST(BatchRunner, PoolIsReusableAfterABatchAndAfterAnError)
{
    BatchRunner pool(2);
    auto a = pool.map(10, [](std::size_t i) { return i + 1; });
    EXPECT_EQ(a.back(), 10u);
    EXPECT_THROW(pool.forEach(
                     4, [](std::size_t) { throw std::logic_error("x"); }),
                 std::logic_error);
    auto b = pool.map(10, [](std::size_t i) { return i * 2; });
    EXPECT_EQ(b.back(), 18u);
}

TEST(BatchRunner, MapItemsPreservesItemOrder)
{
    BatchRunner pool(3);
    std::vector<int> items(30);
    std::iota(items.begin(), items.end(), 0);
    auto out = pool.mapItems(items, [](int v) { return v * 10; });
    for (std::size_t i = 0; i < items.size(); ++i)
        EXPECT_EQ(out[i], int(i) * 10);
}

TEST(BatchRunner, SingleThreadPoolSpawnsNoWorkers)
{
    BatchRunner pool(1);
    EXPECT_EQ(pool.threads(), 1u);
    auto out = pool.map(5, [](std::size_t i) { return i; });
    EXPECT_EQ(out, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

// --- Cross-thread determinism of the bench sweeps ------------------
//
// Every bench converted to the parallel sweep engine must produce
// byte-identical stdout at any CAPY_JOBS; each binary runs twice as a
// subprocess (serial pool vs 4 threads) and the captured outputs are
// compared byte for byte. CAPY_BENCH_BIN_DIR is injected by the
// build so the test finds the binaries in any build tree.

namespace
{

struct BenchRun
{
    int exitCode = -1;
    std::string output;
};

BenchRun
runBenchWithJobs(const std::string &name, const char *jobs)
{
    BenchRun r;
    std::string cmd = std::string("CAPY_JOBS=") + jobs + " '" +
                      CAPY_BENCH_BIN_DIR "/" + name + "' 2>&1";
    std::FILE *pipe = popen(cmd.c_str(), "r");
    if (pipe == nullptr)
        return r;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, pipe)) > 0)
        r.output.append(buf, got);
    int status = pclose(pipe);
    r.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return r;
}

class BenchSweepDeterminism
    : public ::testing::TestWithParam<const char *>
{
};

} // namespace

TEST_P(BenchSweepDeterminism, ByteIdenticalAcrossThreadCounts)
{
    BenchRun serial = runBenchWithJobs(GetParam(), "1");
    BenchRun pooled = runBenchWithJobs(GetParam(), "4");
    ASSERT_EQ(serial.exitCode, 0) << serial.output;
    ASSERT_EQ(pooled.exitCode, 0) << pooled.output;
    ASSERT_FALSE(serial.output.empty());
    EXPECT_EQ(serial.output, pooled.output);
    // Sanity: the run actually exercised the paper-shape harness.
    EXPECT_NE(serial.output.find("paper-shape check"),
              std::string::npos);
}

// The seven benches converted from serial loops in this PR; the rest
// of the fig benches were converted with the engine itself and are
// covered by their ctest shape checks.
INSTANTIATE_TEST_SUITE_P(
    ConvertedBenches, BenchSweepDeterminism,
    ::testing::Values("bench_fig04_volume", "bench_characterization",
                      "bench_capysat", "bench_allocation",
                      "bench_checkpoint_comparison", "bench_federated",
                      "bench_vtop_runtime"));

TEST(BatchRunner, DefaultThreadsHonoursCapyJobs)
{
    setQuiet(true);
    ASSERT_EQ(setenv("CAPY_JOBS", "3", 1), 0);
    EXPECT_EQ(BatchRunner::defaultThreads(), 3u);
    // Invalid values fall back to hardware concurrency (>= 1).
    ASSERT_EQ(setenv("CAPY_JOBS", "zero", 1), 0);
    EXPECT_GE(BatchRunner::defaultThreads(), 1u);
    ASSERT_EQ(setenv("CAPY_JOBS", "-2", 1), 0);
    EXPECT_GE(BatchRunner::defaultThreads(), 1u);
    unsetenv("CAPY_JOBS");
    EXPECT_GE(BatchRunner::defaultThreads(), 1u);
    setQuiet(false);
}
