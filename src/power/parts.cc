#include "power/parts.hh"

#include "power/units.hh"
#include "sim/logging.hh"

namespace capy::power::parts
{

using namespace capy::literals;

CapacitorSpec
x5r100uF()
{
    return CapacitorSpec{
        .part = "X5R-100uF",
        .tech = CapTech::Ceramic,
        .capacitance = 100_uF,
        .esr = 10_mOhm,
        .leakageCurrent = 0.1_uA,
        .ratedVoltage = 6.3_V,
        .volume = 20_mm3,
        .cycleEndurance = 1e12,
    };
}

CapacitorSpec
tant100uF()
{
    return CapacitorSpec{
        .part = "TANT-100uF",
        .tech = CapTech::Tantalum,
        .capacitance = 100_uF,
        .esr = 0.3_Ohm,
        .leakageCurrent = 1_uA,
        .ratedVoltage = 6.3_V,
        .volume = 19_mm3,
        .cycleEndurance = 1e9,
    };
}

CapacitorSpec
tant330uF()
{
    return CapacitorSpec{
        .part = "TANT-330uF",
        .tech = CapTech::Tantalum,
        .capacitance = 330_uF,
        .esr = 0.2_Ohm,
        .leakageCurrent = 2_uA,
        .ratedVoltage = 6.3_V,
        .volume = 60_mm3,
        .cycleEndurance = 1e9,
    };
}

CapacitorSpec
tant1000uF()
{
    return CapacitorSpec{
        .part = "TANT-1000uF",
        .tech = CapTech::Tantalum,
        .capacitance = 1000_uF,
        .esr = 0.15_Ohm,
        .leakageCurrent = 5_uA,
        .ratedVoltage = 6.3_V,
        .volume = 180_mm3,
        .cycleEndurance = 1e9,
    };
}

CapacitorSpec
edlc7_5mF()
{
    return CapacitorSpec{
        .part = "EDLC-7.5mF",
        .tech = CapTech::Edlc,
        .capacitance = 7.5_mF,
        .esr = 25_Ohm,
        .leakageCurrent = 2_uA,
        .ratedVoltage = 3.3_V,
        .volume = 30_mm3,
        .cycleEndurance = 5e5,
    };
}

CapacitorSpec
cph3225a()
{
    return CapacitorSpec{
        .part = "CPH3225A",
        .tech = CapTech::Edlc,
        .capacitance = 11_mF,
        .esr = 160_Ohm,
        .leakageCurrent = 6_uA,
        .ratedVoltage = 3.3_V,
        .volume = 7.2_mm3,
        .cycleEndurance = 1e5,
    };
}

CapacitorSpec
byName(const std::string &name)
{
    for (const CapacitorSpec &spec : all())
        if (spec.part == name)
            return spec;
    capy_fatal("unknown capacitor part '%s'", name.c_str());
}

std::vector<CapacitorSpec>
all()
{
    return {x5r100uF(), tant100uF(), tant330uF(), tant1000uF(),
            edlc7_5mF(), cph3225a()};
}

CapacitorSpec
synthesize(CapTech tech, double capacitance)
{
    capy_assert(capacitance > 0.0, "synthesize: capacitance %g <= 0",
                capacitance);
    // Reference part per technology; scale volume by capacitance and
    // ESR/leakage inversely/linearly with size (parallel-plate-like
    // scaling within one family).
    CapacitorSpec ref;
    switch (tech) {
      case CapTech::Ceramic:
        ref = x5r100uF();
        break;
      case CapTech::Tantalum:
        ref = tant330uF();
        break;
      case CapTech::Edlc:
        ref = cph3225a();
        break;
    }
    double scale = capacitance / ref.capacitance;
    CapacitorSpec out = ref;
    out.part = capy::strfmt("%s-synth-%.3guF", capTechName(tech),
                            capacitance * 1e6);
    out.capacitance = capacitance;
    out.volume = ref.volume * scale;
    out.esr = ref.esr / scale;
    out.leakageCurrent = ref.leakageCurrent * scale;
    return out;
}

} // namespace capy::power::parts
