# Empty compiler generated dependencies file for bench_fig08_accuracy.
# This may be replaced when dependencies are built.
