/**
 * @file
 * Engine microbenchmarks (google-benchmark): event-queue throughput,
 * transient-solver primitives, power-system advancement, and a full
 * end-to-end application run. These gate the simulator's own
 * performance rather than reproducing a paper artifact.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "apps/ta.hh"
#include "power/parts.hh"
#include "power/power_system.hh"
#include "power/solver.hh"
#include "sim/logging.hh"
#include "sim/event.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"

using namespace capy;

namespace
{

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    sim::EventQueue q;
    double t = 0.0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            q.schedule(t + double(i % 7), [] {});
        while (!q.empty())
            q.runNext();
        t += 10.0;
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_SimulatorNestedChain(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulator s;
        int depth = 0;
        std::function<void()> chain = [&] {
            if (++depth < 1000)
                s.schedule(0.001, chain);
        };
        s.schedule(0.0, chain);
        s.run();
        benchmark::DoNotOptimize(depth);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorNestedChain);

void
BM_SolverAdvance(benchmark::State &state)
{
    power::Phase ph{5e-3, 7.5e-3, 2e5};
    double e = 0.001;
    for (auto _ : state) {
        e = power::advanceEnergy(e, ph, 0.01);
        if (e > 0.03)
            e = 0.001;
        benchmark::DoNotOptimize(e);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SolverAdvance);

void
BM_SolverCrossing(benchmark::State &state)
{
    power::Phase ph{5e-3, 7.5e-3, 2e5};
    for (auto _ : state) {
        double t = power::timeToEnergy(0.001, 0.02, ph);
        benchmark::DoNotOptimize(t);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SolverCrossing);

void
BM_PowerSystemChargeCycle(benchmark::State &state)
{
    for (auto _ : state) {
        power::PowerSystem::Spec spec;
        power::PowerSystem ps(
            spec,
            std::make_unique<power::RegulatedSupply>(10e-3, 3.3));
        ps.addBank("b", power::parts::edlc7_5mF());
        ps.advanceTo(ps.timeToFull() + 1.0);
        ps.setRailEnabled(true);
        ps.setRailLoad(20e-3);
        ps.advanceTo(ps.time() + ps.timeToBrownout());
        benchmark::DoNotOptimize(ps.storageVoltage());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PowerSystemChargeCycle);

void
BM_RngExponential(benchmark::State &state)
{
    sim::Rng rng(1);
    for (auto _ : state) {
        double v = rng.exponential(30.0);
        benchmark::DoNotOptimize(v);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngExponential);

void
BM_FullTempAlarmRun(benchmark::State &state)
{
    setQuiet(true);
    sim::Rng rng(5, 0x7a);
    auto sched = env::EventSchedule::poissonCount(rng, 10, 600.0, 30.0);
    for (auto _ : state) {
        auto m = apps::runTempAlarm(core::Policy::CapyP, sched, 5,
                                    600.0);
        benchmark::DoNotOptimize(m.summary.correct);
    }
    // Simulated seconds per wall second is the figure of merit.
    state.SetItemsProcessed(state.iterations() * 600);
}
BENCHMARK(BM_FullTempAlarmRun)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
