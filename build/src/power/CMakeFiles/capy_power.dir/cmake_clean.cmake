file(REMOVE_RECURSE
  "CMakeFiles/capy_power.dir/bankswitch.cc.o"
  "CMakeFiles/capy_power.dir/bankswitch.cc.o.d"
  "CMakeFiles/capy_power.dir/booster.cc.o"
  "CMakeFiles/capy_power.dir/booster.cc.o.d"
  "CMakeFiles/capy_power.dir/capacitor.cc.o"
  "CMakeFiles/capy_power.dir/capacitor.cc.o.d"
  "CMakeFiles/capy_power.dir/federated.cc.o"
  "CMakeFiles/capy_power.dir/federated.cc.o.d"
  "CMakeFiles/capy_power.dir/harvester.cc.o"
  "CMakeFiles/capy_power.dir/harvester.cc.o.d"
  "CMakeFiles/capy_power.dir/parts.cc.o"
  "CMakeFiles/capy_power.dir/parts.cc.o.d"
  "CMakeFiles/capy_power.dir/power_system.cc.o"
  "CMakeFiles/capy_power.dir/power_system.cc.o.d"
  "CMakeFiles/capy_power.dir/solver.cc.o"
  "CMakeFiles/capy_power.dir/solver.cc.o.d"
  "libcapy_power.a"
  "libcapy_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capy_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
