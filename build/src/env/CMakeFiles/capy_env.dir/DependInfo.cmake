
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/env/events.cc" "src/env/CMakeFiles/capy_env.dir/events.cc.o" "gcc" "src/env/CMakeFiles/capy_env.dir/events.cc.o.d"
  "/root/repo/src/env/light.cc" "src/env/CMakeFiles/capy_env.dir/light.cc.o" "gcc" "src/env/CMakeFiles/capy_env.dir/light.cc.o.d"
  "/root/repo/src/env/pendulum.cc" "src/env/CMakeFiles/capy_env.dir/pendulum.cc.o" "gcc" "src/env/CMakeFiles/capy_env.dir/pendulum.cc.o.d"
  "/root/repo/src/env/scoring.cc" "src/env/CMakeFiles/capy_env.dir/scoring.cc.o" "gcc" "src/env/CMakeFiles/capy_env.dir/scoring.cc.o.d"
  "/root/repo/src/env/thermal.cc" "src/env/CMakeFiles/capy_env.dir/thermal.cc.o" "gcc" "src/env/CMakeFiles/capy_env.dir/thermal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/power/CMakeFiles/capy_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/capy_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
