/**
 * @file
 * Extension bench (paper §8 future work): automatic allocation of
 * capacitors to banks from task energy requirements, compared against
 * the paper's hand provisioning of §6.1. The allocator chooses
 * catalog parts minimizing volume subject to capacity, ESR/boot
 * feasibility, and reactivity, and every plan is verified by
 * simulation.
 */

#include <cstdio>

#include "apps/boards.hh"
#include "apps/experiment.hh"
#include "bench_util.hh"
#include "core/allocate.hh"
#include "dev/mcu.hh"
#include "dev/peripheral.hh"
#include "dev/radio.hh"
#include "power/parts.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace capy;
using namespace capy::bench;
using namespace capy::core;

namespace
{

struct AppModes
{
    const char *app;
    double harvest;
    std::vector<ModeRequirement> modes;
    double handVolume;  ///< mm^3 of the paper's §6.1 banks
};

std::vector<AppModes>
appCatalog()
{
    auto mcu = dev::msp430fr5969();
    const auto ble = dev::bleRadio();
    const auto apds = dev::periph::apds9960Gesture();
    const auto tmp = dev::periph::tmp36();

    // Hand-provisioned volumes from the parts the paper lists.
    double ta_hand = power::parallelCompose(
                         {power::parts::x5r100uF().parallel(3),
                          power::parts::tant100uF()})
                         .volume +
                     power::parallelCompose(
                         {power::parts::tant1000uF(),
                          power::parts::edlc7_5mF()})
                         .volume;
    double grc_hand =
        power::parallelCompose({power::parts::x5r100uF().parallel(4),
                                power::parts::tant330uF()})
            .volume +
        power::parts::edlc7_5mF().parallel(6).volume;

    return {
        AppModes{
            "TempAlarm", apps::taHarvestPower(),
            {ModeRequirement{"sample",
                             TaskEnergy{mcu.activePower +
                                            tmp.activePower,
                                        10e-3 + mcu.bootTime},
                             true, 10.0},
             ModeRequirement{"alarm-tx",
                             TaskEnergy{ble.txPower,
                                        txDuration(ble, 25) +
                                            mcu.bootTime},
                             false}},
            ta_hand},
        AppModes{
            "GestureFast", apps::grcHarvestPower(),
            {ModeRequirement{"proximity",
                             TaskEnergy{mcu.activePower + 0.12e-3,
                                        2e-3 + mcu.bootTime},
                             true, 1.0},
             ModeRequirement{
                 "gesture+tx",
                 TaskEnergy{
                     (mcu.activePower + apds.activePower) * 0.23 +
                         ble.txPower * 0.77,
                     apds.warmupTime + apds.minActiveTime +
                         txDuration(ble, 8) + mcu.bootTime},
                 true}},
            grc_hand},
    };
}

} // namespace

int
main()
{
    setQuiet(true);
    banner("Extension (paper §8)",
           "automatic capacitor-to-bank allocation");

    power::PowerSystem::Spec spec;
    auto catalog = power::parts::all();

    // Allocation + simulation verification per app are independent
    // jobs; fan them out on the shared sweep pool and print from the
    // ordered results (byte-identical at any CAPY_JOBS).
    struct Outcome
    {
        AllocationPlan plan;
        bool verified = false;
    };
    const auto app_cases = appCatalog();
    auto outcomes = apps::sweepPool().mapItems(
        app_cases, [&spec, &catalog](const AppModes &am) {
            Outcome out;
            out.plan =
                allocateBanks(am.modes, spec, catalog, am.harvest);
            out.verified = out.plan.feasible &&
                           verifyAllocation(out.plan, am.modes, spec,
                                            am.harvest);
            return out;
        });

    bool all_verified = true;
    for (std::size_t ai = 0; ai < app_cases.size(); ++ai) {
        const AppModes &am = app_cases[ai];
        const auto &plan = outcomes[ai].plan;
        std::printf("%s (harvest %.2f mW):\n", am.app,
                    am.harvest * 1e3);
        if (!plan.feasible) {
            std::printf("  INFEASIBLE\n");
            all_verified = false;
            continue;
        }
        sim::Table t({"mode", "bank", "parts", "C (mF)", "active C "
                      "(mF)", "est. charge (s)", "reactive"});
        for (std::size_t i = 0; i < plan.banks.size(); ++i) {
            const auto &b = plan.banks[i];
            t.addRow({b.modeName,
                      b.hardwired ? "base (hard-wired)" : "switched",
                      b.unitCount
                          ? strfmt("%d x %s", b.unitCount,
                                   b.unit.part.c_str())
                          : "(covered by base)",
                      sim::cell(b.composition.capacitance * 1e3, 3),
                      sim::cell(plan.activeCapacitance(i) * 1e3, 3),
                      sim::cell(b.chargeTime, 3),
                      am.modes[i].reactive ? "yes" : "no"});
        }
        t.print();
        bool ok = outcomes[ai].verified;
        std::printf("  total volume: %.0f mm^3 (hand-provisioned "
                    "§6.1: %.0f mm^3); switch area: %.0f mm^2; "
                    "verified by simulation: %s\n\n",
                    plan.totalVolume, am.handVolume,
                    plan.totalSwitchArea, ok ? "yes" : "NO");
        all_verified &= ok;

        shapeCheck(plan.feasible, "allocation found for every app");
        shapeCheck(plan.totalVolume <= 1.5 * am.handVolume,
                   "automatic allocation is no bulkier than ~1.5x the "
                   "paper's hand provisioning");
        // The reactive base mode must honor its recharge bound.
        for (std::size_t i = 0; i < plan.banks.size(); ++i) {
            if (plan.banks[i].hardwired) {
                shapeCheck(plan.banks[i].chargeTime <=
                               am.modes[i].maxChargeTime,
                           "the reactive base mode's recharge time "
                           "honours its bound");
            }
        }
    }
    shapeCheck(all_verified,
               "every produced plan passes simulation verification");
    return finish();
}
