/**
 * @file
 * Tests for the environment layer: event schedules, the pendulum and
 * thermal rigs, light sources, and the detection scoreboard.
 */

#include <gtest/gtest.h>

#include "env/events.hh"
#include "env/light.hh"
#include "env/pendulum.hh"
#include "env/scoring.hh"
#include "env/thermal.hh"

using namespace capy;
using namespace capy::env;

TEST(EventSchedule, SortsAndIdsEvents)
{
    EventSchedule s({5.0, 1.0, 3.0});
    ASSERT_EQ(s.size(), 3u);
    EXPECT_DOUBLE_EQ(s.at(0).time, 1.0);
    EXPECT_DOUBLE_EQ(s.at(2).time, 5.0);
    EXPECT_EQ(s.at(1).id, 1);
    EXPECT_DOUBLE_EQ(s.lastTime(), 5.0);
}

TEST(EventSchedule, PoissonCountExact)
{
    sim::Rng rng(5);
    EventSchedule s = EventSchedule::poissonCount(rng, 50, 7200.0);
    EXPECT_EQ(s.size(), 50u);
    EXPECT_LT(s.lastTime(), 7200.0);
    EXPECT_GT(s.at(0).time, 0.0);
}

TEST(EventSchedule, SeededFactoriesMatchExplicitRng)
{
    // Worker-side generation contract: a (seed, stream) factory call
    // reproduces exactly what a caller-thread Rng would have drawn.
    sim::Rng rng(42, 7);
    EventSchedule a =
        EventSchedule::poissonCount(rng, 50, 7200.0, 60.0);
    EventSchedule b =
        EventSchedule::poissonCountSeeded(42, 7, 50, 7200.0, 60.0);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_DOUBLE_EQ(a.at(i).time, b.at(i).time);

    sim::Rng rng2(9, 1);
    EventSchedule c = EventSchedule::poisson(rng2, 30.0, 600.0);
    EventSchedule d =
        EventSchedule::poissonSeeded(9, 1, 30.0, 600.0);
    ASSERT_EQ(c.size(), d.size());
    for (std::size_t i = 0; i < c.size(); ++i)
        EXPECT_DOUBLE_EQ(c.at(i).time, d.at(i).time);
}

TEST(EventSchedule, SeededFactoriesArePureFunctionsOfSeed)
{
    EventSchedule a =
        EventSchedule::poissonCountSeeded(1, 2, 20, 600.0);
    EventSchedule b =
        EventSchedule::poissonCountSeeded(1, 2, 20, 600.0);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_DOUBLE_EQ(a.at(i).time, b.at(i).time);

    EventSchedule other =
        EventSchedule::poissonCountSeeded(3, 2, 20, 600.0);
    bool differs = false;
    for (std::size_t i = 0; i < other.size(); ++i)
        differs |= other.at(i).time != a.at(i).time;
    EXPECT_TRUE(differs);
}

TEST(EventSchedule, EventCoveringWindows)
{
    EventSchedule s({10.0, 20.0});
    // Window [9.8, 10.2) overlaps event 0's span [10, 10.6).
    EXPECT_EQ(s.eventCovering(9.8, 0.4, 0.6), 0);
    // Instantaneous query inside the span.
    EXPECT_EQ(s.eventCovering(10.3, 0.0, 0.6), 0);
    // After the span ends.
    EXPECT_EQ(s.eventCovering(10.7, 0.1, 0.6), -1);
    EXPECT_EQ(s.eventCovering(19.99, 0.1, 0.6), 1);
    EXPECT_EQ(s.eventCovering(5.0, 1.0, 0.6), -1);
}

TEST(EventSchedule, EventsBetween)
{
    EventSchedule s({10.0, 20.0, 30.0});
    auto ids = s.eventsBetween(15.0, 35.0);
    EXPECT_EQ(ids, (std::vector<int>{1, 2}));
    EXPECT_TRUE(s.eventsBetween(31.0, 40.0).empty());
}

TEST(Pendulum, ProximityDuringSwingOnly)
{
    EventSchedule s({100.0});
    Pendulum p(s);
    EXPECT_FALSE(p.objectPresent(99.9));
    EXPECT_TRUE(p.objectPresent(100.1));
    EXPECT_TRUE(p.objectPresent(100.5));
    EXPECT_FALSE(p.objectPresent(100.7));
    EXPECT_EQ(p.eventAt(100.3), 0);
    EXPECT_EQ(p.eventAt(99.0), -1);
}

TEST(Pendulum, FieldElevatedDuringSwing)
{
    EventSchedule s({50.0});
    Pendulum p(s);
    EXPECT_GT(p.fieldStrength(50.2), 0.5);
    EXPECT_LT(p.fieldStrength(40.0), 0.2);
}

TEST(Pendulum, EarlyWindowDecodes)
{
    EventSchedule s({100.0});
    Pendulum::Spec spec;
    spec.pDecodeFail = 0.0;
    spec.pMisclassify = 0.0;
    Pendulum p(s, spec);
    sim::Rng rng(1);
    int id = -2;
    auto r = p.senseGesture(100.05, 0.25, rng, &id);
    EXPECT_EQ(r, Pendulum::GestureResult::Decoded);
    EXPECT_EQ(id, 0);
}

TEST(Pendulum, LateWindowMisclassifies)
{
    EventSchedule s({100.0});
    Pendulum::Spec spec;
    spec.pDecodeFail = 0.0;
    spec.pMisclassify = 0.0;
    Pendulum p(s, spec);
    sim::Rng rng(1);
    int id = -2;
    auto r = p.senseGesture(100.4, 0.25, rng, &id);
    EXPECT_EQ(r, Pendulum::GestureResult::Misclassified);
    EXPECT_EQ(id, 0);
}

TEST(Pendulum, NoOverlapNoGesture)
{
    EventSchedule s({100.0});
    Pendulum p(s);
    sim::Rng rng(1);
    int id = -2;
    auto r = p.senseGesture(200.0, 0.25, rng, &id);
    EXPECT_EQ(r, Pendulum::GestureResult::NoGesture);
    EXPECT_EQ(id, -1);
}

TEST(Pendulum, InherentImperfectionRates)
{
    // With many events, the decode-failure and misclassification
    // rates should approximate the configured probabilities.
    std::vector<sim::Time> times;
    for (int i = 0; i < 2000; ++i)
        times.push_back(10.0 * i);
    EventSchedule s(times);
    Pendulum p(s);
    sim::Rng rng(77);
    int decoded = 0, mis = 0, none = 0;
    for (int i = 0; i < 2000; ++i) {
        auto r = p.senseGesture(10.0 * i + 0.05, 0.25, rng, nullptr);
        decoded += r == Pendulum::GestureResult::Decoded;
        mis += r == Pendulum::GestureResult::Misclassified;
        none += r == Pendulum::GestureResult::NoGesture;
    }
    EXPECT_NEAR(none / 2000.0, 0.05, 0.02);
    EXPECT_NEAR(mis / 2000.0, 0.03 * 0.95, 0.02);
    EXPECT_GT(decoded, 1800);
}

TEST(ThermalRig, InBandBetweenEvents)
{
    EventSchedule s({1000.0});
    ThermalRig rig(s);
    for (double t = 0.0; t < 900.0; t += 37.0) {
        EXPECT_FALSE(rig.outOfRange(t)) << "t=" << t;
        EXPECT_GT(rig.temperature(t), rig.spec().bandLo);
        EXPECT_LT(rig.temperature(t), rig.spec().bandHi);
    }
}

TEST(ThermalRig, ExcursionLeavesBand)
{
    EventSchedule s({1000.0});
    ThermalRig rig(s);
    // Mid-excursion: at the peak hold.
    double mid = 1000.0 + rig.spec().rampTime +
                 rig.spec().holdTime / 2.0;
    EXPECT_TRUE(rig.outOfRange(mid));
    EXPECT_NEAR(rig.temperature(mid), rig.spec().peakTemp, 1e-9);
    EXPECT_EQ(rig.alarmEventAt(mid), 0);
    // After the excursion.
    EXPECT_FALSE(rig.outOfRange(1000.0 + rig.excursionDuration() + 1));
}

TEST(ThermalRig, OutOfRangeDurationConsistent)
{
    EventSchedule s({1000.0});
    ThermalRig rig(s);
    double dur = rig.outOfRangeDuration();
    EXPECT_GT(dur, rig.spec().holdTime);
    EXPECT_LT(dur, rig.excursionDuration());
    // Sampled check: count out-of-range time numerically.
    double counted = 0.0, dt = 0.01;
    for (double t = 995.0; t < 1035.0; t += dt)
        counted += rig.outOfRange(t) ? dt : 0.0;
    EXPECT_NEAR(counted, dur, 0.1);
}

TEST(Light, PwmHalogenConstantFraction)
{
    PwmHalogen h(0.42);
    auto f = h.illumination();
    EXPECT_DOUBLE_EQ(f(0.0), 0.42);
    EXPECT_DOUBLE_EQ(f(1e6), 0.42);
}

TEST(Light, OrbitSunlitAndEclipse)
{
    OrbitLight orbit;
    double lit = orbit.spec().orbitPeriod - orbit.spec().eclipseDuration;
    EXPECT_TRUE(orbit.sunlit(lit * 0.5));
    EXPECT_FALSE(orbit.sunlit(lit + 1.0));
    // Next orbit repeats.
    EXPECT_TRUE(orbit.sunlit(orbit.spec().orbitPeriod + lit * 0.5));
    auto f = orbit.illumination();
    EXPECT_DOUBLE_EQ(f(lit * 0.5), 1.0);
    EXPECT_DOUBLE_EQ(f(lit + 1.0), 0.0);
}

TEST(Scoreboard, DefaultsToMissed)
{
    EventSchedule s({1.0, 2.0});
    Scoreboard sb(s);
    auto sum = sb.summarize();
    EXPECT_EQ(sum.total, 2u);
    EXPECT_EQ(sum.missed, 2u);
    EXPECT_DOUBLE_EQ(sum.fracCorrect, 0.0);
}

TEST(Scoreboard, MonotoneUpgrades)
{
    EventSchedule s({10.0});
    Scoreboard sb(s);
    sb.recordDetection(0);
    EXPECT_EQ(sb.outcome(0), Outcome::ProximityOnly);
    sb.recordMisclassified(0);
    EXPECT_EQ(sb.outcome(0), Outcome::Misclassified);
    sb.recordReport(0, 12.5);
    EXPECT_EQ(sb.outcome(0), Outcome::Correct);
    // Downgrades are ignored.
    sb.recordDetection(0);
    sb.recordMisclassified(0);
    EXPECT_EQ(sb.outcome(0), Outcome::Correct);
    auto sum = sb.summarize();
    EXPECT_EQ(sum.correct, 1u);
    EXPECT_NEAR(sum.latency.mean(), 2.5, 1e-12);
}

TEST(Scoreboard, InvalidIdsIgnored)
{
    EventSchedule s({10.0});
    Scoreboard sb(s);
    sb.recordDetection(-1);
    sb.recordReport(7, 1.0);
    EXPECT_EQ(sb.summarize().missed, 1u);
}

TEST(Scoreboard, SampleIntervalClassification)
{
    EventSchedule s({10.0, 100.0});
    Scoreboard sb(s);
    sb.recordSample(0.5);
    sb.recordSample(0.8);    // back-to-back
    sb.recordSample(50.0);   // contains event 0 (missed)
    sb.recordReport(1, 101.0);
    sb.recordSample(150.0);  // contains event 1 (correct)
    auto ivs = sb.sampleIntervals(1.0);
    ASSERT_EQ(ivs.size(), 3u);
    EXPECT_TRUE(ivs[0].backToBack);
    EXPECT_FALSE(ivs[1].backToBack);
    EXPECT_TRUE(ivs[1].containsMissed);
    EXPECT_FALSE(ivs[2].containsMissed);
}

TEST(Scoreboard, OutcomeNames)
{
    EXPECT_STREQ(outcomeName(Outcome::Correct), "correct");
    EXPECT_STREQ(outcomeName(Outcome::Missed), "missed");
    EXPECT_STREQ(outcomeName(Outcome::ProximityOnly), "proximity-only");
    EXPECT_STREQ(outcomeName(Outcome::Misclassified), "misclassified");
}
