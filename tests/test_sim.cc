/**
 * @file
 * Unit tests for the simulation kernel: event queue ordering and
 * cancellation, simulator clock semantics, RNG distributions,
 * statistics accumulators, and traces.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <vector>

#include "sim/event.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

using namespace capy;
using namespace capy::sim;

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(3.0, [&] { order.push_back(3); });
    q.schedule(1.0, [&] { order.push_back(1); });
    q.schedule(2.0, [&] { order.push_back(2); });
    while (!q.empty())
        q.runNext();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsRunFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5.0, [&order, i] { order.push_back(i); });
    while (!q.empty())
        q.runNext();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[size_t(i)], i);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool ran = false;
    EventId id = q.schedule(1.0, [&] { ran = true; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelExecutedEventReturnsFalse)
{
    EventQueue q;
    EventId id = q.schedule(1.0, [] {});
    q.runNext();
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, DoubleCancelReturnsFalse)
{
    EventQueue q;
    EventId id = q.schedule(1.0, [] {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelInvalidIdReturnsFalse)
{
    EventQueue q;
    EXPECT_FALSE(q.cancel(kInvalidEvent));
    EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, CancelDoesNotDisturbOtherEvents)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(1.0, [&] { order.push_back(1); });
    EventId id = q.schedule(2.0, [&] { order.push_back(2); });
    q.schedule(3.0, [&] { order.push_back(3); });
    q.cancel(id);
    while (!q.empty())
        q.runNext();
    EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, PendingCountTracksLifecycle)
{
    EventQueue q;
    EventId a = q.schedule(1.0, [] {});
    q.schedule(2.0, [] {});
    EXPECT_EQ(q.pending(), 2u);
    q.cancel(a);
    EXPECT_EQ(q.pending(), 1u);
    q.runNext();
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_EQ(q.executed(), 1u);
}

TEST(EventQueue, CancelledSlotIsRecycledWithFreshIdentity)
{
    EventQueue q;
    bool b_ran = false;
    EventId a = q.schedule(1.0, [] {});
    EXPECT_TRUE(q.cancel(a));
    EventId b = q.schedule(2.0, [&] { b_ran = true; });
    // The slot is reused but the handle generation differs, so the
    // old handle neither matches nor can cancel the new event.
    EXPECT_NE(a, b);
    EXPECT_FALSE(q.isPending(a));
    EXPECT_TRUE(q.isPending(b));
    EXPECT_FALSE(q.cancel(a));
    EXPECT_TRUE(q.isPending(b));
    q.runNext();
    EXPECT_TRUE(b_ran);
    EXPECT_LE(q.slotCapacity(), 1u);
}

TEST(EventQueue, HeavyCancelTrafficRetainsNoTombstones)
{
    // A long-lived simulator that schedules and cancels a timeout
    // over and over (the device-model retimer pattern) must keep its
    // bookkeeping bounded and exact: one slot, zero pending.
    EventQueue q;
    for (int i = 0; i < 10000; ++i) {
        EventId id = q.schedule(double(i), [] {});
        EXPECT_TRUE(q.cancel(id));
        EXPECT_EQ(q.pending(), 0u);
        EXPECT_TRUE(q.empty());
    }
    EXPECT_LE(q.slotCapacity(), 1u);
    EXPECT_EQ(q.executed(), 0u);
    // The queue still works normally afterwards.
    bool ran = false;
    q.schedule(1.0, [&] { ran = true; });
    EXPECT_EQ(q.pending(), 1u);
    q.runNext();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, PendingBookkeepingStaysExactUnderInterleaving)
{
    EventQueue q;
    std::vector<EventId> live;
    std::size_t expected = 0;
    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 10; ++i) {
            live.push_back(q.schedule(double(round * 10 + i), [] {}));
            ++expected;
        }
        // Cancel every other handle from this round.
        for (int i = 0; i < 10; i += 2) {
            EXPECT_TRUE(q.cancel(live[live.size() - 10 + size_t(i)]));
            --expected;
        }
        // Run two events.
        for (int i = 0; i < 2 && !q.empty(); ++i) {
            q.runNext();
            --expected;
        }
        EXPECT_EQ(q.pending(), expected);
    }
    while (!q.empty())
        q.runNext();
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, SequentialChainReusesOneSlot)
{
    EventQueue q;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 200)
            q.schedule(double(count), chain);
    };
    q.schedule(0.0, chain);
    while (!q.empty())
        q.runNext();
    EXPECT_EQ(count, 200);
    // Each event's slot retires before the next is scheduled.
    EXPECT_LE(q.slotCapacity(), 2u);
}

TEST(EventQueue, CancelFromCallbackOfSimultaneousEvent)
{
    EventQueue q;
    bool second_ran = false;
    EventId second = 0;
    q.schedule(1.0, [&] { EXPECT_TRUE(q.cancel(second)); });
    second = q.schedule(1.0, [&] { second_ran = true; });
    while (!q.empty())
        q.runNext();
    EXPECT_FALSE(second_ran);
    EXPECT_EQ(q.executed(), 1u);
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, ExecutedExcludesCancelledEvents)
{
    EventQueue q;
    EventId a = q.schedule(1.0, [] {});
    q.schedule(2.0, [] {});
    EventId c = q.schedule(3.0, [] {});
    q.cancel(a);
    q.cancel(c);
    while (!q.empty())
        q.runNext();
    EXPECT_EQ(q.executed(), 1u);
}

TEST(EventQueue, MoveOnlyCallbackCaptures)
{
    // Callback does not require copyable callables the way
    // std::function does.
    EventQueue q;
    auto payload = std::make_unique<int>(41);
    int seen = 0;
    q.schedule(1.0, [p = std::move(payload), &seen] { seen = *p + 1; });
    q.runNext();
    EXPECT_EQ(seen, 42);
}

TEST(Callback, InlineAndHeapCallablesBothInvoke)
{
    int x = 0;
    Callback small([&x] { ++x; });
    EXPECT_TRUE(static_cast<bool>(small));
    small();
    EXPECT_EQ(x, 1);

    // Oversized capture forces the heap fallback path.
    struct Big
    {
        double pad[16];
    } big{};
    big.pad[0] = 2.0;
    Callback large([&x, big] { x += int(big.pad[0]); });
    large();
    EXPECT_EQ(x, 3);

    // Moving transfers the callable and empties the source.
    Callback moved = std::move(small);
    EXPECT_FALSE(static_cast<bool>(small));
    moved();
    EXPECT_EQ(x, 4);
}

TEST(Callback, HeapFallbackIsCounted)
{
    // The debug counter (exposed through EventQueue stats) must tick
    // only on the heap path; delta-based so test order is irrelevant.
    std::uint64_t before = EventQueue::callbackHeapFallbacks();
    int x = 0;
    Callback small([&x] { ++x; });
    small();
    EXPECT_EQ(EventQueue::callbackHeapFallbacks(), before);

    struct Big
    {
        double pad[16];
    } big{};
    big.pad[0] = 1.0;
    Callback large([&x, big] { x += int(big.pad[0]); });
    large();
    EXPECT_EQ(EventQueue::callbackHeapFallbacks(), before + 1);

    // Moving an already-constructed heap callback is a relocation,
    // not a new fallback.
    Callback moved = std::move(large);
    moved();
    EXPECT_EQ(EventQueue::callbackHeapFallbacks(), before + 1);
}

TEST(Callback, TypicalEventCapturesFitInline)
{
    // The captures the simulator schedules on the hot path (a `this`
    // pointer plus a couple of words) must not allocate.
    struct Dev
    {
        void tick() {}
    } dev;
    double when = 1.0;
    auto cb = [&dev, when] {
        dev.tick();
        (void)when;
    };
    static_assert(Callback::fitsInline<decltype(cb)>());
}

TEST(EventQueue, CallbackMaySchedule)
{
    EventQueue q;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            q.schedule(double(depth), chain);
    };
    q.schedule(0.0, chain);
    while (!q.empty())
        q.runNext();
    EXPECT_EQ(depth, 5);
}

TEST(Simulator, ClockAdvancesWithEvents)
{
    Simulator s;
    double seen = -1.0;
    s.schedule(2.5, [&] { seen = s.now(); });
    s.run();
    EXPECT_DOUBLE_EQ(seen, 2.5);
    EXPECT_DOUBLE_EQ(s.now(), 2.5);
}

TEST(Simulator, RunUntilAdvancesClockToLimit)
{
    Simulator s;
    int count = 0;
    s.schedule(1.0, [&] { ++count; });
    s.schedule(5.0, [&] { ++count; });
    s.runUntil(3.0);
    EXPECT_EQ(count, 1);
    EXPECT_DOUBLE_EQ(s.now(), 3.0);
    s.run();
    EXPECT_EQ(count, 2);
}

TEST(Simulator, RunUntilIncludesBoundaryEvents)
{
    Simulator s;
    bool ran = false;
    s.schedule(3.0, [&] { ran = true; });
    s.runUntil(3.0);
    EXPECT_TRUE(ran);
}

TEST(Simulator, StopHaltsProcessing)
{
    Simulator s;
    int count = 0;
    s.schedule(1.0, [&] {
        ++count;
        s.stop();
    });
    s.schedule(2.0, [&] { ++count; });
    s.run();
    EXPECT_EQ(count, 1);
    s.run();
    EXPECT_EQ(count, 2);
}

TEST(Simulator, NestedSchedulingUsesCurrentTime)
{
    Simulator s;
    double inner_time = -1.0;
    s.schedule(1.0, [&] {
        s.schedule(2.0, [&] { inner_time = s.now(); });
    });
    s.run();
    EXPECT_DOUBLE_EQ(inner_time, 3.0);
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next32(), b.next32());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next32() == b.next32();
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng r(11);
    SummaryStats s;
    for (int i = 0; i < 100000; ++i)
        s.add(r.uniform());
    EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, ExponentialMeanMatches)
{
    Rng r(13);
    SummaryStats s;
    for (int i = 0; i < 100000; ++i)
        s.add(r.exponential(30.0));
    EXPECT_NEAR(s.mean(), 30.0, 1.0);
    EXPECT_GT(s.min(), 0.0);
}

TEST(Rng, NormalMomentsMatch)
{
    Rng r(17);
    SummaryStats s;
    for (int i = 0; i < 100000; ++i)
        s.add(r.normal(5.0, 2.0));
    EXPECT_NEAR(s.mean(), 5.0, 0.05);
    EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    Rng r(19);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        auto v = r.uniformInt(3, 7);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 7u);
        saw_lo |= v == 3;
        saw_hi |= v == 7;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(23);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, PoissonArrivalsSortedWithinHorizon)
{
    Rng r(29);
    auto arr = poissonArrivals(r, 10.0, 1000.0);
    ASSERT_FALSE(arr.empty());
    for (size_t i = 1; i < arr.size(); ++i)
        EXPECT_GT(arr[i], arr[i - 1]);
    EXPECT_LT(arr.back(), 1000.0);
    // Expect roughly horizon/mean events.
    EXPECT_NEAR(double(arr.size()), 100.0, 40.0);
}

TEST(Rng, PoissonArrivalsRespectStartAfter)
{
    Rng r(31);
    auto arr = poissonArrivals(r, 5.0, 500.0, 100.0);
    ASSERT_FALSE(arr.empty());
    EXPECT_GT(arr.front(), 100.0);
}

TEST(SummaryStats, BasicMoments)
{
    SummaryStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SummaryStats, MergeEqualsCombined)
{
    SummaryStats a, b, all;
    Rng r(37);
    for (int i = 0; i < 1000; ++i) {
        double v = r.normal(0, 1);
        (i % 2 ? a : b).add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SummaryStats, EmptyIsZero)
{
    SummaryStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Histogram, BinsAndBounds)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-1.0);
    h.add(0.0);
    h.add(0.5);
    h.add(9.99);
    h.add(10.0);
    h.add(25.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_DOUBLE_EQ(h.binLo(3), 3.0);
    EXPECT_DOUBLE_EQ(h.binHi(3), 4.0);
}

TEST(Histogram, QuantilesExact)
{
    Histogram h(0.0, 100.0, 10);
    for (int i = 1; i <= 99; ++i)
        h.add(double(i));
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1e-9);
    EXPECT_NEAR(h.quantile(0.0), 1.0, 1e-9);
    EXPECT_NEAR(h.quantile(1.0), 99.0, 1e-9);
    EXPECT_NEAR(h.mean(), 50.0, 1e-9);
}

TEST(Histogram, QuantileCacheInvalidatedByAdds)
{
    // quantile() sorts once and caches; an interleaved add() must
    // invalidate the cached view, not serve stale percentiles.
    Histogram h(0.0, 100.0, 10);
    for (int i = 1; i <= 9; ++i)
        h.add(double(i));
    EXPECT_NEAR(h.quantile(0.5), 5.0, 1e-9);
    EXPECT_NEAR(h.quantile(1.0), 9.0, 1e-9);
    h.add(50.0);
    EXPECT_NEAR(h.quantile(1.0), 50.0, 1e-9);
    EXPECT_NEAR(h.quantile(0.0), 1.0, 1e-9);
}

TEST(Histogram, SampleCapBoundsRetentionNotBinning)
{
    Histogram h(0.0, 1000.0, 10);
    h.capSamples(100);
    for (int i = 0; i < 1000; ++i)
        h.add(double(i));
    // Counters see every sample; only retention is bounded.
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_EQ(h.data().size(), 100u);
    EXPECT_EQ(h.sampleCap(), 100u);
    for (std::size_t b = 0; b < h.numBins(); ++b)
        EXPECT_EQ(h.binCount(b), 100u);
    // The reservoir is a uniform draw, so order statistics stay
    // near the true values.
    EXPECT_NEAR(h.quantile(0.5), 500.0, 150.0);
    EXPECT_NEAR(h.mean(), 500.0, 120.0);
}

TEST(Histogram, SampleCapIsDeterministic)
{
    // The reservoir uses a private fixed-seed generator: identical
    // add streams retain identical samples on every run/thread.
    auto run = [] {
        Histogram h(0.0, 1.0, 4);
        h.capSamples(32);
        for (int i = 0; i < 500; ++i)
            h.add(double(i) * 1e-3);
        return h.data();
    };
    EXPECT_EQ(run(), run());
}

TEST(Histogram, LateCapShrinksRetainedSet)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 200; ++i)
        h.add(double(i % 10));
    EXPECT_EQ(h.data().size(), 200u);
    h.capSamples(50);
    EXPECT_EQ(h.data().size(), 50u);
    EXPECT_EQ(h.count(), 200u);
    h.add(3.0);
    EXPECT_EQ(h.data().size(), 50u);
    EXPECT_EQ(h.count(), 201u);
}

TEST(Table, AlignedOutputContainsCells)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22222"});
    std::string s = t.str();
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("22222"), std::string::npos);
    EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Cells, Formatting)
{
    EXPECT_EQ(cell(std::uint64_t{42}), "42");
    EXPECT_EQ(cell(-3), "-3");
    EXPECT_EQ(percentCell(0.756), "75.6%");
    EXPECT_EQ(cell(1.5), "1.5");
}

TEST(TimeSeries, RecordAndInterpolate)
{
    TimeSeries ts("v");
    ts.record(0.0, 1.0);
    ts.record(10.0, 3.0);
    EXPECT_DOUBLE_EQ(ts.at(5.0), 2.0);
    EXPECT_DOUBLE_EQ(ts.at(-1.0), 1.0);
    EXPECT_DOUBLE_EQ(ts.at(20.0), 3.0);
    EXPECT_DOUBLE_EQ(ts.lastValue(), 3.0);
}

TEST(TimeSeries, CsvHasHeaderAndRows)
{
    TimeSeries ts("volts");
    ts.record(1.0, 2.0);
    std::string csv = ts.csv();
    EXPECT_NE(csv.find("time,volts"), std::string::npos);
    EXPECT_NE(csv.find("1,2"), std::string::npos);
}

TEST(SpanTrace, AccumulatesByLabel)
{
    SpanTrace st;
    st.open(0.0, "charge");
    st.close(5.0);
    st.open(5.0, "run");
    st.close(7.0);
    st.open(7.0, "charge");
    st.close(10.0);
    EXPECT_DOUBLE_EQ(st.totalFor("charge"), 8.0);
    EXPECT_DOUBLE_EQ(st.totalFor("run"), 2.0);
    EXPECT_EQ(st.countFor("charge"), 2u);
    EXPECT_FALSE(st.isOpen());
}

TEST(SpanTrace, OpenLabelVisible)
{
    SpanTrace st;
    st.open(1.0, "busy");
    EXPECT_TRUE(st.isOpen());
    EXPECT_EQ(st.openLabel(), "busy");
    st.close(2.0);
}

TEST(Logging, StrfmtFormats)
{
    EXPECT_EQ(strfmt("%d-%s", 7, "x"), "7-x");
    EXPECT_EQ(strfmt("%.2f", 1.234), "1.23");
}

TEST(Logging, WarnCountIncrements)
{
    setQuiet(true);
    unsigned long before = warnCount();
    capy_warn("test warning %d", 1);
    EXPECT_EQ(warnCount(), before + 1);
    setQuiet(false);
}
