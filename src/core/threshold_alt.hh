/**
 * @file
 * The voltage-thresholding alternative to switched banks (§5.2):
 * reconfigurable energy storage by setting the top voltage V_top to
 * which a single fixed capacitor charges, implemented in the paper's
 * prototype with an EEPROM-backed digital potentiometer and a voltage
 * supervisor. The paper rejects it for Capybara because it occupies
 * twice the area, leaks 1.5x more, wears out the EEPROM, and has the
 * worst cold start; this module captures those costs so the
 * mechanism-comparison ablation (bench_ablation_mechanism) can
 * reproduce the comparison quantitatively.
 */

#ifndef CAPY_CORE_THRESHOLD_ALT_HH
#define CAPY_CORE_THRESHOLD_ALT_HH

#include <cstdint>
#include <string>

#include "dev/nvmem.hh"
#include "power/power_system.hh"

namespace capy::core
{

/** Cost model of one capacity-reconfiguration mechanism. */
struct MechanismSpec
{
    std::string name;
    /** Board area per reconfigurable element, mm^2. */
    double areaPerModule = 0.0;
    /** Standby leakage per module, A. */
    double leakageCurrent = 0.0;
    /** Reconfiguration (write) endurance; 0 = unlimited. */
    std::uint64_t writeEndurance = 0;
    /**
     * Minimum storage voltage before any usable energy accumulates
     * (drives cold-start time): C-control charges a small default
     * bank quickly; voltage mechanisms must lift the whole fixed
     * capacitor past the output booster's start voltage.
     */
    bool smallDefaultBank = false;
};

/** Capybara's switched-bank (C-control) mechanism (§5.2, Fig. 6b). */
MechanismSpec switchedBankMechanism();

/** V_top control via EEPROM potentiometer + supervisor (§5.2). */
MechanismSpec vtopThresholdMechanism();

/** V_bottom control via the MCU's built-in comparator (§5.2). */
MechanismSpec vbottomThresholdMechanism();

/**
 * A V_top-controlled power system wrapper: one fixed bank whose
 * effective charge target is set per mode, with EEPROM write
 * accounting. Functionally equivalent to DEBS-style burst scaling.
 */
class VtopController
{
  public:
    /**
     * @param ps power system with a single fixed bank.
     * @param nv EEPROM accounting device (write endurance applies).
     */
    VtopController(power::PowerSystem &ps, dev::NvMemory *nv = nullptr);

    /**
     * Set the charge threshold for the next operating cycle.
     * Each change writes the potentiometer's EEPROM.
     */
    void setThreshold(double v_top);

    double threshold() const { return currentThreshold; }
    std::uint64_t eepromWrites() const { return writes; }

  private:
    power::PowerSystem &powerSystem;
    dev::NvCell<double> nvThreshold;
    double currentThreshold;
    std::uint64_t writes = 0;
};

} // namespace capy::core

#endif // CAPY_CORE_THRESHOLD_ALT_HH
