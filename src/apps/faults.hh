/**
 * @file
 * Application-level fault-injection harness: one object that wires a
 * sim::FaultPlan (the adversarial failure schedule), the device's
 * injectPowerFailure() entry point, and an rt::CrashAuditor together
 * for an application run, and condenses the outcome into a
 * FaultReport that rides along in RunMetrics.
 *
 * The app entry points (runCorrSense, runGestureRemote, runTempAlarm,
 * runCapySat) accept an optional FaultSpec; the crash-sweep driver
 * (tools/crash_sweep) exhausts single-failure-point specs against an
 * uninterrupted oracle run.
 */

#ifndef CAPY_APPS_FAULTS_HH
#define CAPY_APPS_FAULTS_HH

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "dev/device.hh"
#include "dev/nvmem.hh"
#include "rt/audit.hh"
#include "rt/checkpoint.hh"
#include "sim/fault.hh"

namespace capy::rt
{
class Kernel;
} // namespace capy::rt

namespace capy::apps
{

/** What to inject and what to audit during an application run. */
struct FaultSpec
{
    /** Failure schedule; empty() = audit only, no injection. */
    sim::FaultPlan plan;
    /** Storage treatment of each injected failure. */
    dev::Device::FailureKind kind =
        dev::Device::FailureKind::Collapse;
    /** Attach the crash-consistency auditor. */
    bool audit = true;
    /** Include latch-retention checks in the audit. */
    bool watchLatches = true;
    /**
     * Deliberately break the NV journal recovery path (CRC checks
     * skipped on read). The run should then FAIL its audit — this is
     * the fixture proving the auditor catches a broken recovery path,
     * never a mode for real experiments.
     */
    bool breakRecovery = false;
};

/** Condensed outcome of a faulted (or audit-only) run. */
struct FaultReport
{
    std::uint64_t attempts = 0;  ///< injection attempts
    std::uint64_t fired = 0;     ///< attempts that hit a powered device
    std::uint64_t outagesAudited = 0;
    std::uint64_t checksRun = 0;
    std::uint64_t violations = 0;
    /** Formatted violation list ("" when clean). */
    std::string violationText;
    /** Powered [up, down] intervals (see CrashAuditor::activeSpans);
     *  the crash-sweep driver aims time-indexed failures at these. */
    std::vector<std::pair<double, double>> activeSpans;

    bool clean() const { return violations == 0; }
};

/**
 * Wires injection + audit onto one device for the duration of a run.
 * Construct after the device exists, attach the kernel-specific
 * watches, run the simulation, then call finish().
 */
class FaultHarness
{
  public:
    /**
     * @param device the device to inject into and audit.
     * @param spec what to inject/audit.
     * @param nv the NV accounting device backing the software's
     *        journaled cells (needed for spec.breakRecovery).
     */
    FaultHarness(dev::Device &device, const FaultSpec &spec,
                 dev::NvMemory *nv = nullptr);

    FaultHarness(const FaultHarness &) = delete;
    FaultHarness &operator=(const FaultHarness &) = delete;

    /** Attach Chain-kernel checks (no-op when audit is off). */
    void watchKernel(const rt::Kernel &kernel);

    /** Attach checkpoint-kernel checks (no-op when audit is off). */
    void watchCheckpoint(const rt::CheckpointKernel &kernel);

    /** Direct auditor access; valid only when auditing(). */
    rt::CrashAuditor &auditor() { return *aud; }
    bool auditing() const { return aud.has_value(); }

    /** Run a final audit pass and condense the outcome. */
    FaultReport finish();

  private:
    std::optional<rt::CrashAuditor> aud;
    std::optional<sim::FaultInjector> injector;
};

/** End state of a standalone checkpoint crash workload. */
struct CheckpointCrashMetrics
{
    bool finished = false;
    double progress = 0.0;
    rt::CheckpointKernel::Stats kernel;
    dev::Device::Stats device;
    std::uint64_t tornCommits = 0;
    std::uint64_t tornRecoveries = 0;
    std::uint64_t simEvents = 0;
    FaultReport faults;
};

/**
 * Run a long sequential computation under the checkpointing kernel on
 * a small harvested buffer — the workload whose multi-word NV commits
 * make torn writes reachable. The crash-sweep driver and the fault
 * property tests share this rig.
 *
 * @param faults injection/audit spec; nullptr = uninterrupted oracle.
 * @param total_work seconds of compute to commit.
 * @param horizon simulated run length, s.
 */
CheckpointCrashMetrics runCheckpointCrashWorkload(
    const FaultSpec *faults, double total_work = 2.0,
    double horizon = 600.0);

} // namespace capy::apps

#endif // CAPY_APPS_FAULTS_HH
