#include "power/power_system.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "power/solver.hh"
#include "sim/logging.hh"

namespace capy::power
{

namespace
{

/** Voltage tolerance for boundary/fullness comparisons. */
constexpr double kVTol = 1e-6;

/** Time below which a step counts as a stall. */
constexpr double kTimeTol = 1e-12;

constexpr double kInf = std::numeric_limits<double>::infinity();

} // namespace

double
PowerSystem::Node::voltage() const
{
    if (!valid || capacitance <= 0.0)
        return 0.0;
    return std::sqrt(2.0 * energy / capacitance);
}

double
PowerSystem::Node::energyAt(double v) const
{
    return 0.5 * capacitance * v * v;
}

PowerSystem::PowerSystem(Spec system_spec,
                         std::unique_ptr<Harvester> harvester_in)
    : spec(system_spec), harvester(std::move(harvester_in)),
      chargeCeiling(kInf)
{
    capy_assert(harvester != nullptr, "power system needs a harvester");
    capy_assert(spec.maxStorageVoltage > spec.output.minInputStart,
                "storage target %g V below output booster start %g V: "
                "the device could never boot",
                spec.maxStorageVoltage, spec.output.minInputStart);
}

int
PowerSystem::addBank(const std::string &name, const CapacitorSpec &cap)
{
    banks.push_back(BankState{CapacitorBank(name, cap), std::nullopt});
    invalidateNode();
    return static_cast<int>(banks.size()) - 1;
}

int
PowerSystem::addSwitchedBank(const std::string &name,
                             const CapacitorSpec &cap,
                             const SwitchSpec &sw)
{
    banks.push_back(BankState{CapacitorBank(name, cap),
                              BankSwitch(sw, lastTime)});
    invalidateNode();
    return static_cast<int>(banks.size()) - 1;
}

const CapacitorBank &
PowerSystem::bank(int idx) const
{
    capy_assert(idx >= 0 && idx < numBanks(), "bank index %d", idx);
    return banks[static_cast<std::size_t>(idx)].bank;
}

CapacitorBank &
PowerSystem::bankForTest(int idx)
{
    capy_assert(idx >= 0 && idx < numBanks(), "bank index %d", idx);
    // The caller may mutate bank energy through this handle.
    invalidateNode();
    return banks[static_cast<std::size_t>(idx)].bank;
}

const BankSwitch *
PowerSystem::bankSwitch(int idx) const
{
    capy_assert(idx >= 0 && idx < numBanks(), "bank index %d", idx);
    const auto &sw = banks[static_cast<std::size_t>(idx)].sw;
    return sw ? &*sw : nullptr;
}

bool
PowerSystem::bankActive(int idx) const
{
    capy_assert(idx >= 0 && idx < numBanks(), "bank index %d", idx);
    const BankState &bs = banks[static_cast<std::size_t>(idx)];
    return bs.sw ? bs.sw->closed() : true;
}

const PowerSystem::Node &
PowerSystem::activeNode() const
{
    if (nodeDirty) {
        ++nodeMissCount;
        nodeCache = snapshotActive();
        nodeDirty = false;
    } else {
        ++nodeHitCount;
    }
    return nodeCache;
}

void
PowerSystem::invalidateNode() const
{
    nodeDirty = true;
    topDirty = true;
    invalidateQueries();
}

void
PowerSystem::invalidateQueries() const
{
    queryMemoCount = 0;
    queryMemoNext = 0;
}

PowerSystem::CacheStats
PowerSystem::cacheStats() const
{
    return {nodeHitCount,  nodeMissCount,  queryHitCount,
            queryMissCount, expMemo.hits(), expMemo.misses()};
}

void
PowerSystem::invalidateCachesForTest() const
{
    invalidateNode();
}

PowerSystem::Node
PowerSystem::snapshotActive() const
{
    Node node;
    double inv_leak = 0.0;
    double inv_esr = 0.0;
    for (int i = 0; i < numBanks(); ++i) {
        if (!bankActive(i))
            continue;
        const CapacitorBank &b = bank(i);
        node.energy += b.energy();
        node.capacitance += b.capacitance();
        double leak_r = b.spec().leakageResistance();
        if (std::isfinite(leak_r) && leak_r > 0.0)
            inv_leak += 1.0 / leak_r;
        if (b.esr() > 0.0)
            inv_esr += 1.0 / b.esr();
        else
            inv_esr = kInf;
    }
    node.leakRes = inv_leak > 0.0 ? 1.0 / inv_leak : kInf;
    node.esr = (inv_esr > 0.0 && std::isfinite(inv_esr))
                   ? 1.0 / inv_esr
                   : 0.0;
    node.valid = node.capacitance > 0.0;
    return node;
}

void
PowerSystem::writebackActive(const Node &node)
{
    if (!node.valid)
        return;
    for (int i = 0; i < numBanks(); ++i) {
        if (!bankActive(i))
            continue;
        BankState &bs = banks[static_cast<std::size_t>(i)];
        bs.bank.setEnergy(node.energy * bs.bank.capacitance() /
                          node.capacitance);
    }
}

double
PowerSystem::topVoltage() const
{
    // Cached: the target changes only on reconfiguration and ceiling
    // control calls, but phaseAt() asks on every phase iteration.
    if (!topDirty)
        return topCache;
    double top = std::min(spec.maxStorageVoltage, chargeCeiling);
    for (int i = 0; i < numBanks(); ++i) {
        if (bankActive(i) && bank(i).spec().ratedVoltage > 0.0)
            top = std::min(top, bank(i).spec().ratedVoltage);
    }
    topCache = top;
    topDirty = false;
    return top;
}

PowerSystem::PhaseInfo
PowerSystem::phaseAt(const Node &node, double v, sim::Time t) const
{
    double vh = limitedVoltage(spec.limiter, harvester->voltage(t));
    double ph = harvester->power(t);
    double vtop = topVoltage();
    double pd = (railOn ? storageDrawPower(spec.output, loadPower)
                        : 0.0) +
                spec.systemQuiescentPower;

    PhaseInfo info;

    // Voltage levels at which the net power changes: the input
    // booster's cold-start threshold, the bypass diode cutoff, and
    // the effective charge target.
    double bounds[3] = {spec.input.coldStartVoltage,
                        spec.input.bypassEnabled
                            ? vh - spec.input.bypassDiodeDrop
                            : -1.0,
                        vtop};
    info.boundAbove = vtop;
    info.boundBelow = 0.0;
    for (double b : bounds) {
        if (b > v + kVTol)
            info.boundAbove = std::min(info.boundAbove, b);
        if (b < v - kVTol && b > 0.0)
            info.boundBelow = std::max(info.boundBelow, b);
    }
    // Never integrate above the charge target.
    info.boundAbove = std::min(info.boundAbove, vtop);

    if (v >= vtop - kVTol) {
        double pc = inputChargePower(spec.input, ph, vh, vtop);
        double leak_p = std::isfinite(node.leakRes)
                            ? vtop * vtop / node.leakRes
                            : 0.0;
        if (pc >= pd + leak_p) {
            // Limiter shunts the excess; the node holds at the top.
            info.pinned = true;
            info.power = 0.0;
            return info;
        }
        info.power = pc - pd;
        return info;
    }

    double pc = inputChargePower(spec.input, ph, vh, v);
    info.power = pc - pd;
    return info;
}

void
PowerSystem::stepNode(Node &node, sim::Time t0, double dt,
                      EnergyStats *acc) const
{
    double remaining = dt;
    int stalls = 0;
    const double pd = (railOn ? storageDrawPower(spec.output, loadPower)
                              : 0.0) +
                      spec.systemQuiescentPower;

    for (int guard = 0; remaining > kTimeTol; ++guard) {
        double v = node.voltage();
        PhaseInfo info = phaseAt(node, v, t0);
        if (guard >= 64) {
            // Many alternating micro-phases: the node is chattering
            // around a converter boundary (e.g. charging just below
            // the cold-start threshold, discharging just above it).
            // Physically it pins there; hold for the remainder.
            if (acc) {
                double leak_p = std::isfinite(node.leakRes)
                                    ? v * v / node.leakRes
                                    : 0.0;
                acc->harvestedIn += (pd + leak_p) * remaining;
                acc->drainedOut += pd * remaining;
                acc->leaked += leak_p * remaining;
            }
            return;
        }

        if (info.pinned) {
            // Held at the top by the limiter: harvest covers the load
            // and leakage; the rest is shunted.
            double vtop = topVoltage();
            node.energy = node.energyAt(vtop);
            if (acc) {
                double leak_p = std::isfinite(node.leakRes)
                                    ? vtop * vtop / node.leakRes
                                    : 0.0;
                acc->harvestedIn += (pd + leak_p) * remaining;
                acc->drainedOut += pd * remaining;
                acc->leaked += leak_p * remaining;
            }
            return;
        }

        Phase phase{info.power, node.capacitance, node.leakRes};
        double einf = steadyStateEnergy(phase);
        bool rising = std::isinf(einf) ? info.power > 0.0
                                       : einf > node.energy;
        double e_bound =
            node.energyAt(rising ? info.boundAbove : info.boundBelow);
        double tb = timeToEnergy(node.energy, e_bound, phase);

        double step = std::min(remaining, tb);
        if (step <= kTimeTol) {
            // Parked against a boundary the next phase pushes back
            // into: hold position (physically the node sits at the
            // boundary with the converter modes fighting to a
            // standstill).
            if (++stalls >= 2) {
                if (acc) {
                    // Net power is ~0 while parked; harvest covers
                    // drain and leakage.
                    double leak_p =
                        std::isfinite(node.leakRes)
                            ? v * v / node.leakRes
                            : 0.0;
                    acc->harvestedIn += (pd + leak_p) * remaining;
                    acc->drainedOut += pd * remaining;
                    acc->leaked += leak_p * remaining;
                }
                return;
            }
            node.energy = e_bound;
            continue;
        }
        stalls = 0;

        double e0 = node.energy;
        node.energy = advanceEnergy(e0, phase, step, &expMemo);
        if (step == tb && std::isfinite(tb))
            node.energy = e_bound;  // land exactly on the boundary

        if (acc) {
            double pc = info.power + pd;
            acc->harvestedIn += pc * step;
            acc->drainedOut += pd * step;
            acc->leaked += info.power * step - (node.energy - e0);
        }
        remaining -= step;
    }
}

void
PowerSystem::decayInactive(double dt)
{
    for (int i = 0; i < numBanks(); ++i) {
        if (bankActive(i))
            continue;
        BankState &bs = banks[static_cast<std::size_t>(i)];
        double leak_r = bs.bank.spec().leakageResistance();
        Phase phase{0.0, bs.bank.capacitance(), leak_r};
        double e0 = bs.bank.energy();
        double e1 = advanceEnergy(e0, phase, dt);
        bs.bank.setEnergy(e1);
        energyStats.leaked += e0 - e1;
    }
}

bool
PowerSystem::updateLatches(sim::Time t)
{
    bool reverted = false;
    for (auto &bs : banks) {
        if (!bs.sw)
            continue;
        bool before = bs.sw->closed();
        bs.sw->update(t, railOn);
        if (bs.sw->closed() != before)
            reverted = true;
    }
    return reverted;
}

void
PowerSystem::rebuildAfterReconfig()
{
    invalidateNode();
    std::vector<CapacitorBank *> active;
    for (int i = 0; i < numBanks(); ++i) {
        if (bankActive(i))
            active.push_back(&banks[static_cast<std::size_t>(i)].bank);
    }
    if (active.size() > 1)
        equalizeParallel(active);
    wasFull = isFull();
}

void
PowerSystem::recordTrace()
{
    if (voltTrace)
        voltTrace->record(lastTime, storageVoltage());
}

void
PowerSystem::advanceTo(sim::Time t)
{
    capy_assert(t >= lastTime, "advanceTo(%g) behind clock %g", t,
                lastTime);
    int guard = 0;
    while (true) {
        capy_assert(++guard < 1000000,
                    "advanceTo failed to make progress at t=%g",
                    lastTime);
        double dt_max = t - lastTime;

        // Bound the interval by the earliest latch reversion (only
        // decaying while unpowered) and harvester condition changes.
        if (!railOn) {
            sim::Time exp = nextLatchExpiry();
            if (std::isfinite(exp) && exp < lastTime + dt_max)
                dt_max = std::max(0.0, exp - lastTime);
        }
        sim::Time hb = harvester->nextChange(lastTime);
        if (std::isfinite(hb) && hb < lastTime + dt_max)
            dt_max = std::max(0.0, hb - lastTime);

        if (dt_max > 0.0) {
            Node node = activeNode();
            if (node.valid) {
                stepNode(node, lastTime, dt_max, &energyStats);
                writebackActive(node);
                // The cache must reflect the bank writeback exactly
                // (the sum of per-bank energies, not the pre-split
                // total), so rebuild lazily rather than storing node.
                nodeDirty = true;
            }
            decayInactive(dt_max);
            lastTime += dt_max;
            // The clock moved: relative predictive queries are stale
            // even if no charge moved (harvester conditions changed).
            invalidateQueries();
        }

        if (updateLatches(lastTime))
            rebuildAfterReconfig();

        bool full_now = isFull();
        if (full_now && !wasFull) {
            ++energyStats.chargeCompletions;
            for (auto &bs : banks) {
                if (!bs.sw || bs.sw->closed())
                    bs.bank.recordCycle();
            }
        }
        wasFull = full_now;
        recordTrace();

        if (lastTime >= t)
            break;
    }
}

void
PowerSystem::commandSwitch(int idx, bool closed)
{
    capy_assert(idx >= 0 && idx < numBanks(), "bank index %d", idx);
    capy_assert(railOn, "switch commanded while the rail is off");
    BankState &bs = banks[static_cast<std::size_t>(idx)];
    capy_assert(bs.sw.has_value(), "bank %d ('%s') is hard-wired", idx,
                bs.bank.name().c_str());
    bs.sw->command(closed, lastTime, railOn);
    rebuildAfterReconfig();
    recordTrace();
}

void
PowerSystem::setRailLoad(double watts)
{
    capy_assert(watts >= 0.0, "negative rail load %g", watts);
    if (loadPower != watts)
        invalidateQueries();
    loadPower = watts;
}

void
PowerSystem::setRailEnabled(bool on)
{
    if (railOn == on)
        return;
    railOn = on;
    if (!on)
        loadPower = 0.0;
    // Latch replenishment state changed; refresh latches at this time
    // (a reversion here changes the active set).
    updateLatches(lastTime);
    invalidateNode();
}

void
PowerSystem::setChargeCeiling(double v)
{
    capy_assert(v > spec.output.minInputStart,
                "charge ceiling %g V below booster start %g V", v,
                spec.output.minInputStart);
    chargeCeiling = v;
    topDirty = true;
    invalidateQueries();
    wasFull = isFull();
}

double
PowerSystem::collapseToBrownout()
{
    Node node = activeNode();
    if (!node.valid)
        return 0.0;
    // Land just below the floor so the rail cannot restart without a
    // real recharge phase (mirrors the revert-threshold hysteresis).
    double floor_v = brownoutVoltageNow() * (1.0 - 1e-9);
    double floor_e = node.energyAt(std::max(floor_v, 0.0));
    if (node.energy <= floor_e)
        return 0.0;
    double drained = node.energy - floor_e;
    node.energy = floor_e;
    writebackActive(node);
    invalidateNode();
    energyStats.faultDrained += drained;
    recordTrace();
    return drained;
}

void
PowerSystem::clearChargeCeiling()
{
    chargeCeiling = kInf;
    topDirty = true;
    invalidateQueries();
    wasFull = isFull();
}

double
PowerSystem::storageVoltage() const
{
    return activeNode().voltage();
}

double
PowerSystem::activeCapacitance() const
{
    return activeNode().capacitance;
}

double
PowerSystem::activeEsr() const
{
    return activeNode().esr;
}

double
PowerSystem::activeEnergy() const
{
    return activeNode().energy;
}

double
PowerSystem::brownoutVoltageNow() const
{
    return brownoutVoltage(spec.output, loadPower, activeEsr());
}

double
PowerSystem::startupVoltage(double rail_load) const
{
    return startVoltage(spec.output, rail_load, activeEsr());
}

bool
PowerSystem::isFull() const
{
    const Node &node = activeNode();
    return node.valid && node.voltage() >= topVoltage() - kVTol;
}

sim::Time
PowerSystem::timeToVoltage(double target_v) const
{
    capy_assert(target_v >= 0.0, "negative target voltage %g",
                target_v);
    // The device layer re-queries the same targets (top voltage,
    // brown-out floor) between control calls far more often than the
    // underlying state changes; memoize per-target until the clock or
    // conditions move.
    for (std::size_t i = 0; i < queryMemoCount; ++i) {
        if (queryMemo[i].target == target_v) {
            ++queryHitCount;
            return queryMemo[i].result;
        }
    }
    ++queryMissCount;
    sim::Time result = computeTimeToVoltage(target_v);
    if (queryMemoCount < kQueryMemoSlots) {
        queryMemo[queryMemoCount++] = {target_v, result};
    } else {
        queryMemo[queryMemoNext] = {target_v, result};
        queryMemoNext = (queryMemoNext + 1) % kQueryMemoSlots;
    }
    return result;
}

sim::Time
PowerSystem::computeTimeToVoltage(double target_v) const
{
    Node node = activeNode();
    if (!node.valid)
        return kNever;
    double v0 = node.voltage();
    if (std::abs(v0 - target_v) <= kVTol)
        return 0.0;
    double e_target = node.energyAt(target_v);

    double total = 0.0;
    sim::Time t_abs = lastTime;
    for (int iter = 0; iter < 100000; ++iter) {
        sim::Time hb = harvester->nextChange(t_abs);
        double seg = std::isfinite(hb) ? hb - t_abs : kInf;

        // Within a segment the stepNode phase machinery applies, but
        // we need the crossing of e_target. Add it by walking phases
        // manually with the target as an extra stop.
        double remaining = std::isfinite(seg) ? seg : 1e9;
        bool segment_has_change = std::isfinite(seg);
        int stalls = 0;
        for (int guard = 0; remaining > kTimeTol; ++guard) {
            double v = node.voltage();
            PhaseInfo info = phaseAt(node, v, t_abs);
            if (guard >= 64) {
                // Boundary chatter (see stepNode): the node pins at
                // this voltage for the rest of the segment.
                if (std::abs(v - target_v) <= kVTol)
                    return total;
                if (!segment_has_change)
                    return kNever;
                total += remaining;
                t_abs += remaining;
                remaining = 0.0;
                break;
            }
            if (info.pinned) {
                // Node parked at the top for the rest of the segment.
                node.energy = node.energyAt(topVoltage());
                if (std::abs(node.voltage() - target_v) <= kVTol)
                    return total;
                if (!segment_has_change)
                    return kNever;
                total += remaining;
                t_abs += remaining;
                remaining = 0.0;
                break;
            }
            Phase phase{info.power, node.capacitance, node.leakRes};
            double einf = steadyStateEnergy(phase);
            bool rising = std::isinf(einf) ? info.power > 0.0
                                           : einf > node.energy;
            double e_bound = node.energyAt(
                rising ? info.boundAbove : info.boundBelow);
            double tb = timeToEnergy(node.energy, e_bound, phase);
            double tt = timeToEnergy(node.energy, e_target, phase);
            if (tt <= std::min({tb, remaining}))
                return total + tt;
            double step = std::min(remaining, tb);
            if (step <= kTimeTol) {
                if (++stalls >= 2) {
                    // Parked against a boundary for the segment.
                    if (!segment_has_change)
                        return kNever;
                    total += remaining;
                    t_abs += remaining;
                    remaining = 0.0;
                    break;
                }
                node.energy = e_bound;
                continue;
            }
            stalls = 0;
            if (std::isinf(step)) {
                // No boundary: the phase runs out the segment.
                node.energy = advanceEnergy(node.energy, phase,
                                            remaining, &expMemo);
                if (!segment_has_change)
                    return kNever;  // steady state short of target
                total += remaining;
                t_abs += remaining;
                remaining = 0.0;
                break;
            }
            node.energy =
                advanceEnergy(node.energy, phase, step, &expMemo);
            if (step == tb && std::isfinite(tb))
                node.energy = e_bound;
            total += step;
            t_abs += step;
            remaining -= step;
        }
        if (total > 1e8)
            return kNever;
    }
    return kNever;
}

sim::Time
PowerSystem::timeToFull() const
{
    return timeToVoltage(topVoltage());
}

sim::Time
PowerSystem::timeToBrownout() const
{
    double floor_v = brownoutVoltageNow();
    double v = storageVoltage();
    if (v <= floor_v + kVTol)
        return 0.0;
    return timeToVoltage(floor_v);
}

sim::Time
PowerSystem::nextLatchExpiry() const
{
    if (railOn)
        return kNever;
    sim::Time earliest = kNever;
    for (const auto &bs : banks) {
        if (!bs.sw || bs.sw->atDefault())
            continue;
        earliest = std::min(earliest, bs.sw->expiryTime(lastTime));
    }
    return earliest;
}

double
PowerSystem::totalSwitchArea() const
{
    double area = 0.0;
    for (const auto &bs : banks)
        if (bs.sw)
            area += bs.sw->spec().area;
    return area;
}

double
PowerSystem::totalCapacitorVolume() const
{
    double vol = 0.0;
    for (const auto &bs : banks)
        vol += bs.bank.spec().volume;
    return vol;
}

} // namespace capy::power
