# Empty dependencies file for bench_fig02_fixed_capacity.
# This may be replaced when dependencies are built.
