#include "apps/csr.hh"

#include "dev/peripheral.hh"
#include "env/pendulum.hh"
#include "power/units.hh"
#include "rt/channel.hh"

namespace capy::apps
{

using namespace capy::literals;

RunMetrics
runCorrSense(core::Policy policy, const env::EventSchedule &schedule,
             std::uint64_t seed, double horizon,
             const FaultSpec *faults)
{
    sim::Simulator simulator;
    Board board = makeBoard(simulator, AppBoard::CorrSense, policy);
    env::Pendulum pendulum(schedule);
    env::Scoreboard sb(schedule);
    dev::Radio radio(dev::bleRadio());
    sim::Rng rng(seed, 0x3c);
    dev::NvMemory fram("fram");

    rt::Channel<int> magEvent(&fram, -1);
    rt::Channel<int> dataFresh(&fram, 0);

    rt::App app;
    const auto mag_spec = dev::periph::magnetometer();
    const auto prox = dev::periph::apds9960Proximity();
    const auto led_spec = dev::periph::led();
    const auto ble = dev::bleRadio();

    rt::Task *mag = nullptr;
    rt::Task *distance = nullptr;
    rt::Task *led = nullptr;
    rt::Task *radio_tx = nullptr;

    radio_tx = app.addTask(
        "radio_tx", txDuration(ble, 8), 0.0,
        [&](rt::Kernel &k) -> const rt::Task * {
            if (radio.attemptDelivery(rng)) {
                if (dataFresh.get())
                    sb.recordReport(magEvent.get(), k.now());
                else
                    sb.recordMisclassified(magEvent.get());
            }
            return mag;
        });
    // Host sleeps during the radio session.
    radio_tx->absolutePower = ble.txPower;

    led = app.addTask("led", led_spec.minActiveTime,
                      led_spec.activePower,
                      [&](rt::Kernel &) -> const rt::Task * {
                          return radio_tx;
                      });

    // 32 distance samples back-to-back on the proximity engine.
    const double dist_dur =
        prox.warmupTime + 32.0 * prox.minActiveTime;
    distance = app.addTask(
        "distance", dist_dur, prox.activePower,
        [&](rt::Kernel &k) -> const rt::Task * {
            // Distance data is only meaningful if the magnet was
            // still overhead during the sampling window.
            int still = pendulum.eventAt(k.now() - dist_dur / 2.0);
            dataFresh.set(still == magEvent.get() ? 1 : 0);
            return led;
        });

    mag = app.addTask(
        "magnetometer", 3_ms + mag_spec.warmupTime,
        mag_spec.activePower,
        [&](rt::Kernel &k) -> const rt::Task * {
            sim::Time t = k.now();
            sb.recordSample(t);
            if (pendulum.fieldStrength(t) > 0.5) {
                int ev = pendulum.eventAt(t);
                sb.recordDetection(ev);
                magEvent.set(ev);
                return distance;
            }
            return mag;
        });
    app.setEntry(mag);

    rt::Kernel kernel(*board.device, app, &fram);
    core::Runtime runtime(kernel, board.registry, policy, &fram);
    // §6.1.3: the magnetometer pre-charges the burst bank; tasks
    // (2)-(4) execute immediately and atomically after the event.
    runtime.annotate(mag, core::Annotation::preburst(board.bigMode,
                                                     board.smallMode));
    runtime.annotate(distance, core::Annotation::burst(board.bigMode));
    runtime.annotate(led, core::Annotation::burst(board.bigMode));
    runtime.annotate(radio_tx, core::Annotation::burst(board.bigMode));
    runtime.install();

    std::optional<FaultHarness> harness;
    if (faults) {
        harness.emplace(*board.device, *faults, &fram);
        harness->watchKernel(kernel);
    }

    kernel.start();
    simulator.runUntil(horizon);

    RunMetrics out;
    collectMetrics(out, sb, *board.device, kernel, runtime, radio);
    if (harness)
        out.faults = harness->finish();
    return out;
}

} // namespace capy::apps
