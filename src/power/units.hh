/**
 * @file
 * SI quantities as plain doubles with user-defined literals for
 * readable constants (e.g. 330_uF, 10_mW, 250_ms). All library code
 * stores SI base units: volts, farads, amps, watts, joules, seconds,
 * ohms; volume in cubic millimetres and area in square millimetres
 * (board-level quantities).
 */

#ifndef CAPY_POWER_UNITS_HH
#define CAPY_POWER_UNITS_HH

namespace capy
{

inline namespace literals
{

// Voltage
constexpr double operator""_V(long double v) { return double(v); }
constexpr double operator""_V(unsigned long long v) { return double(v); }
constexpr double operator""_mV(long double v) { return double(v) * 1e-3; }
constexpr double operator""_mV(unsigned long long v)
{ return double(v) * 1e-3; }

// Capacitance
constexpr double operator""_F(long double v) { return double(v); }
constexpr double operator""_mF(long double v) { return double(v) * 1e-3; }
constexpr double operator""_mF(unsigned long long v)
{ return double(v) * 1e-3; }
constexpr double operator""_uF(long double v) { return double(v) * 1e-6; }
constexpr double operator""_uF(unsigned long long v)
{ return double(v) * 1e-6; }
constexpr double operator""_nF(long double v) { return double(v) * 1e-9; }
constexpr double operator""_nF(unsigned long long v)
{ return double(v) * 1e-9; }

// Current
constexpr double operator""_A(long double v) { return double(v); }
constexpr double operator""_mA(long double v) { return double(v) * 1e-3; }
constexpr double operator""_mA(unsigned long long v)
{ return double(v) * 1e-3; }
constexpr double operator""_uA(long double v) { return double(v) * 1e-6; }
constexpr double operator""_uA(unsigned long long v)
{ return double(v) * 1e-6; }
constexpr double operator""_nA(long double v) { return double(v) * 1e-9; }
constexpr double operator""_nA(unsigned long long v)
{ return double(v) * 1e-9; }

// Power
constexpr double operator""_W(long double v) { return double(v); }
constexpr double operator""_W(unsigned long long v) { return double(v); }
constexpr double operator""_mW(long double v) { return double(v) * 1e-3; }
constexpr double operator""_mW(unsigned long long v)
{ return double(v) * 1e-3; }
constexpr double operator""_uW(long double v) { return double(v) * 1e-6; }
constexpr double operator""_uW(unsigned long long v)
{ return double(v) * 1e-6; }

// Energy
constexpr double operator""_J(long double v) { return double(v); }
constexpr double operator""_mJ(long double v) { return double(v) * 1e-3; }
constexpr double operator""_mJ(unsigned long long v)
{ return double(v) * 1e-3; }
constexpr double operator""_uJ(long double v) { return double(v) * 1e-6; }
constexpr double operator""_uJ(unsigned long long v)
{ return double(v) * 1e-6; }
constexpr double operator""_nJ(long double v) { return double(v) * 1e-9; }
constexpr double operator""_nJ(unsigned long long v)
{ return double(v) * 1e-9; }
constexpr double operator""_pJ(long double v)
{ return double(v) * 1e-12; }
constexpr double operator""_pJ(unsigned long long v)
{ return double(v) * 1e-12; }

// Time
constexpr double operator""_s(long double v) { return double(v); }
constexpr double operator""_s(unsigned long long v) { return double(v); }
constexpr double operator""_ms(long double v) { return double(v) * 1e-3; }
constexpr double operator""_ms(unsigned long long v)
{ return double(v) * 1e-3; }
constexpr double operator""_us(long double v) { return double(v) * 1e-6; }
constexpr double operator""_us(unsigned long long v)
{ return double(v) * 1e-6; }
constexpr double operator""_minutes(long double v)
{ return double(v) * 60.0; }
constexpr double operator""_minutes(unsigned long long v)
{ return double(v) * 60.0; }

// Resistance
constexpr double operator""_Ohm(long double v) { return double(v); }
constexpr double operator""_Ohm(unsigned long long v)
{ return double(v); }
constexpr double operator""_mOhm(long double v)
{ return double(v) * 1e-3; }
constexpr double operator""_mOhm(unsigned long long v)
{ return double(v) * 1e-3; }
constexpr double operator""_kOhm(long double v)
{ return double(v) * 1e3; }
constexpr double operator""_kOhm(unsigned long long v)
{ return double(v) * 1e3; }
constexpr double operator""_MOhm(long double v)
{ return double(v) * 1e6; }
constexpr double operator""_MOhm(unsigned long long v)
{ return double(v) * 1e6; }

// Geometry (board-level)
constexpr double operator""_mm2(long double v) { return double(v); }
constexpr double operator""_mm2(unsigned long long v)
{ return double(v); }
constexpr double operator""_mm3(long double v) { return double(v); }
constexpr double operator""_mm3(unsigned long long v)
{ return double(v); }

} // namespace literals

} // namespace capy

#endif // CAPY_POWER_UNITS_HH
