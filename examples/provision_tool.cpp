/**
 * @file
 * Provisioning tool (§3, §6.1): given an application's tasks, find
 * the capacitor bank each energy mode needs — both analytically (with
 * derating) and by the paper's empirical method of running the task
 * on progressively larger banks until it completes.
 *
 * Usage: provision_tool [harvest_mW]
 */

#include <cstdio>
#include <cstdlib>

#include "core/allocate.hh"
#include "core/provision.hh"
#include "dev/peripheral.hh"
#include "dev/radio.hh"
#include "power/parts.hh"
#include "power/units.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace capy;
using namespace capy::core;
using namespace capy::literals;

int
main(int argc, char **argv)
{
    setQuiet(true);
    double harvest =
        (argc > 1 ? std::strtod(argv[1], nullptr) : 8.0) * 1e-3;
    auto mcu = dev::msp430fr5969();
    const auto ble = dev::bleRadio();
    const auto apds = dev::periph::apds9960Gesture();

    std::printf("provisioning at %.1f mW harvest, MCU %s "
                "(%.1f mW active)\n\n",
                harvest * 1e3, mcu.name.c_str(),
                mcu.activePower * 1e3);

    struct Candidate
    {
        const char *name;
        rt::Task task;
    };
    Candidate tasks[] = {
        {"temperature sample",
         rt::Task{"sense", 10_ms, 0.2_mW, 0.0, nullptr, 0.0}},
        {"gesture window",
         rt::Task{"gesture", apds.warmupTime + apds.minActiveTime,
                  apds.activePower, 0.0, nullptr, 0.0}},
        {"BLE alarm packet (25 B)",
         rt::Task{"radio_tx", txDuration(ble, 25), 0.0, ble.txPower,
                  nullptr, 0.0}},
    };

    power::PowerSystem::Spec spec;
    sim::Table t({"task", "rail energy (mJ)", "analytic C (uF)",
                  "trial result", "trial C (uF)",
                  "first charge (s)"});
    for (const auto &c : tasks) {
        TaskEnergy e = measureTaskEnergy(c.task, mcu);
        double analytic = requiredCapacitance(
            e, spec, power::parts::x5r100uF(), 1.2);
        ProvisionResult trial = provisionByTrial(
            c.task, mcu, spec, power::parts::tant1000uF(), harvest,
            64);
        t.addRow({c.name, sim::cell(e.railEnergy() * 1e3, 4),
                  sim::cell(analytic * 1e6, 4),
                  trial.feasible
                      ? strfmt("%d x 1000 uF", trial.unitCount)
                      : "infeasible",
                  trial.feasible ? sim::cell(trial.capacitance * 1e6)
                                 : "-",
                  trial.feasible && trial.chargeTime >= 0
                      ? sim::cell(trial.chargeTime, 3)
                      : "-"});
    }
    t.print();

    std::printf(
        "\nThe analytic column solves E_stored(V_top..V_brownout) * "
        "eta >= E_task\nwith 1.2x derating; the trial column "
        "replicates the paper's procedure:\nrun the task while "
        "progressively increasing the capacity until it\ncompletes "
        "(§6.1). The two should agree within a unit or two.\n");

    // --- Automatic bank allocation (§8 future work) ---
    std::printf("\nautomatic bank allocation across the whole part "
                "catalog:\n");
    std::vector<ModeRequirement> modes{
        ModeRequirement{"sense",
                        measureTaskEnergy(tasks[0].task, mcu), true,
                        10.0},
        ModeRequirement{"gesture",
                        measureTaskEnergy(tasks[1].task, mcu), true,
                        30.0},
        ModeRequirement{"radio",
                        measureTaskEnergy(tasks[2].task, mcu), false},
    };
    auto plan = allocateBanks(modes, spec, power::parts::all(),
                              harvest);
    if (!plan.feasible) {
        std::printf("  no feasible allocation found\n");
        return 1;
    }
    sim::Table alloc({"mode", "bank", "parts", "active C (uF)",
                      "est. recharge (s)"});
    for (std::size_t i = 0; i < plan.banks.size(); ++i) {
        const auto &b = plan.banks[i];
        alloc.addRow({b.modeName,
                      b.hardwired ? "base (hard-wired)" : "switched",
                      b.unitCount ? strfmt("%d x %s", b.unitCount,
                                           b.unit.part.c_str())
                                  : "(covered by base)",
                      sim::cell(plan.activeCapacitance(i) * 1e6, 4),
                      sim::cell(b.chargeTime, 3)});
    }
    alloc.print();
    bool ok = verifyAllocation(plan, modes, spec, harvest);
    std::printf("  total capacitor volume: %.0f mm^3; plan verified "
                "by simulation: %s\n",
                plan.totalVolume, ok ? "yes" : "NO");
    return ok ? 0 : 1;
}
