/**
 * @file
 * Export of recorded traces and statistics to CSV files (plus a
 * convenience gnuplot script emitter), so simulator output can feed
 * external plotting and analysis tools.
 */

#ifndef CAPY_SIM_EXPORT_HH
#define CAPY_SIM_EXPORT_HH

#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/trace.hh"

namespace capy::sim
{

/**
 * Write a time series as two-column CSV ("time,<name>").
 * @retval false the file could not be opened.
 */
bool writeCsv(const TimeSeries &series, const std::string &path);

/**
 * Write several series into one CSV, step-aligned on the union of
 * their timestamps ("time,<name1>,<name2>,...").
 */
bool writeCsv(const std::vector<const TimeSeries *> &series,
              const std::string &path);

/** Write a span trace as "start,end,duration,label" rows. */
bool writeCsv(const SpanTrace &spans, const std::string &path);

/** Write a histogram as "bin_lo,bin_hi,count" rows (with underflow
 *  and overflow rows marked -inf/+inf). */
bool writeCsv(const Histogram &hist, const std::string &path);

/**
 * A minimal gnuplot script that plots the first data column of
 * @p csv_path against time. Returned as text; write it next to the
 * CSV and run `gnuplot <file>`.
 */
std::string gnuplotScript(const std::string &csv_path,
                          const std::string &title,
                          const std::string &ylabel);

} // namespace capy::sim

#endif // CAPY_SIM_EXPORT_HH
