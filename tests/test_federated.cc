/**
 * @file
 * Tests for the UFoP-style federated storage cascade.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <new>

#include "power/federated.hh"
#include "power/parts.hh"
#include "power/solver.hh"
#include "sim/logging.hh"

using namespace capy;
using namespace capy::power;

namespace
{

/** Global heap-allocation counter for the zero-alloc assertions. */
std::uint64_t g_newCalls = 0;

} // namespace

void *
operator new(std::size_t size)
{
    ++g_newCalls;
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace
{

std::unique_ptr<FederatedStorage>
makeFederation(double harvest_mw = 5.0)
{
    FederatedStorage::Spec spec;
    auto fs = std::make_unique<FederatedStorage>(
        spec,
        std::make_unique<RegulatedSupply>(harvest_mw * 1e-3, 3.3));
    fs->addNode("mcu", parts::x5r100uF().parallel(4));
    fs->addNode("sensor", parts::x5r100uF().parallel(2));
    fs->addNode("radio", parts::edlc7_5mF());
    return fs;
}

} // namespace

TEST(Federated, CascadeChargesInPriorityOrder)
{
    auto fs = makeFederation();
    // MCU node fills first; radio node must still be empty then.
    sim::Time t_mcu = fs->timeToNodeFull(0);
    ASSERT_TRUE(std::isfinite(t_mcu));
    fs->advanceTo(t_mcu + 1e-3);
    EXPECT_TRUE(fs->nodeFull(0));
    EXPECT_FALSE(fs->nodeFull(2));
    EXPECT_LT(fs->nodeVoltage(2), 0.5);

    // Then the sensor node, then the radio node.
    sim::Time t_sensor = fs->timeToNodeFull(1);
    sim::Time t_radio = fs->timeToNodeFull(2);
    ASSERT_TRUE(std::isfinite(t_sensor));
    ASSERT_TRUE(std::isfinite(t_radio));
    EXPECT_LT(t_sensor, t_radio);
    fs->advanceTo(fs->time() + t_radio + 1.0);
    EXPECT_TRUE(fs->allFull());
}

TEST(Federated, LoadsDrainOnlyTheirNode)
{
    auto fs = makeFederation();
    fs->advanceTo(fs->timeToNodeFull(2) + 1.0);
    ASSERT_TRUE(fs->allFull());
    // Stop charging influence by loading the radio node heavily.
    fs->setNodeLoad(2, 20e-3);
    double v_sensor_before = fs->nodeVoltage(1);
    fs->advanceTo(fs->time() + 1.0);
    EXPECT_LT(fs->nodeVoltage(2), 2.9);
    EXPECT_NEAR(fs->nodeVoltage(1), v_sensor_before, 0.05)
        << "the sensor node is isolated from the radio load";
}

TEST(Federated, BrownoutPrediction)
{
    auto fs = makeFederation(0.0);  // no harvest
    fs->nodeForTest(0).setVoltage(3.0);
    fs->setNodeLoad(0, 22e-3);
    sim::Time t_bo = fs->timeToAnyBrownout();
    ASSERT_TRUE(std::isfinite(t_bo));
    fs->advanceTo(t_bo);
    EXPECT_NEAR(fs->nodeVoltage(0), fs->nodeBrownoutVoltage(0), 5e-3);
}

TEST(Federated, NoLoadNoBrownout)
{
    auto fs = makeFederation();
    EXPECT_TRUE(std::isinf(fs->timeToAnyBrownout()));
}

TEST(Federated, ChargingStallsOnLoadedEarlyNode)
{
    // A permanent load on the MCU node that exceeds the harvest means
    // the cascade never advances to the radio node: the tragedy of
    // the coulombs.
    auto fs = makeFederation(1.0);
    fs->setNodeLoad(0, 5e-3);  // draw more than 1 mW harvest
    fs->advanceTo(600.0);
    EXPECT_FALSE(fs->nodeFull(0));
    EXPECT_LT(fs->nodeVoltage(2), 0.2)
        << "the radio node starves behind the loaded MCU node";
}

TEST(Federated, StrandedEnergyIsInaccessible)
{
    // Once charged, the radio node's energy cannot serve other nodes:
    // with no harvest, the MCU node dies while the radio node keeps
    // nearly all its charge.
    auto fs = makeFederation();
    fs->advanceTo(fs->timeToNodeFull(2) + 1.0);
    ASSERT_TRUE(fs->allFull());
    // Lights out; MCU keeps working.
    FederatedStorage::Spec spec;
    // (no harvester swap API: emulate darkness with a heavy MCU load
    // against the small node)
    fs->setNodeLoad(0, 22e-3);
    fs->advanceTo(fs->time() + fs->timeToAnyBrownout() + 0.5);
    EXPECT_LT(fs->nodeVoltage(0), 1.3);
    EXPECT_GT(fs->node(2).energy(),
              0.8 * fs->node(2).energyAtVoltage(3.0))
        << "the radio node's energy is stranded";
}

TEST(Federated, TimeToNodeFullAllocatesNothing)
{
    // The peek must work on pre-sized scratch state: no heap traffic
    // per query (the old implementation copied the node vector).
    auto fs = makeFederation();
    fs->advanceTo(5.0);
    std::uint64_t before = g_newCalls;
    sim::Time t2 = fs->timeToNodeFull(2);
    for (int i = 0; i < 8; ++i)
        (void)fs->timeToNodeFull(i % 3);
    EXPECT_EQ(g_newCalls, before)
        << "timeToNodeFull heap-allocated during the peek";
    ASSERT_TRUE(std::isfinite(t2));
    // And the peek must not disturb the live state.
    double v0 = fs->nodeVoltage(0);
    (void)fs->timeToNodeFull(2);
    EXPECT_EQ(fs->nodeVoltage(0), v0);
}

TEST(Federated, TotalStoredEnergyAccounting)
{
    auto fs = makeFederation();
    EXPECT_NEAR(fs->totalStoredEnergy(), 0.0, 1e-12);
    fs->advanceTo(fs->timeToNodeFull(2) + 1.0);
    double expected = fs->node(0).energyAtVoltage(3.0) +
                      fs->node(1).energyAtVoltage(3.0) +
                      fs->node(2).energyAtVoltage(3.0);
    EXPECT_NEAR(fs->totalStoredEnergy(), expected, expected * 1e-3);
}
