#include "core/threshold_alt.hh"

#include "power/bankswitch.hh"
#include "sim/logging.hh"

namespace capy::core
{

MechanismSpec
switchedBankMechanism()
{
    // One switch module is 80 mm^2 (§6.5); its standby draw is the
    // latch leakage, V_full / R_leak ~ 55 nA for the prototype values.
    power::SwitchSpec sw;
    return MechanismSpec{
        .name = "switched-banks (C control)",
        .areaPerModule = sw.area,
        .leakageCurrent = sw.latchFullVoltage / sw.latchLeakRes,
        .writeEndurance = 0,
        .smallDefaultBank = true,
    };
}

MechanismSpec
vtopThresholdMechanism()
{
    // §5.2: twice the area and 1.5x the leakage of the switch module,
    // with EEPROM potentiometer write endurance limiting lifetime.
    MechanismSpec base = switchedBankMechanism();
    return MechanismSpec{
        .name = "V_top threshold (EEPROM potentiometer)",
        .areaPerModule = 2.0 * base.areaPerModule,
        .leakageCurrent = 1.5 * base.leakageCurrent,
        .writeEndurance = 100000,
        .smallDefaultBank = false,
    };
}

MechanismSpec
vbottomThresholdMechanism()
{
    // Uses the MCU's built-in comparator: no extra area or leakage,
    // but the capacitor must always charge to the full top voltage,
    // giving the worst cold start (§5.2).
    return MechanismSpec{
        .name = "V_bottom threshold (MCU comparator)",
        .areaPerModule = 0.0,
        .leakageCurrent = 0.0,
        .writeEndurance = 0,
        .smallDefaultBank = false,
    };
}

VtopController::VtopController(power::PowerSystem &ps, dev::NvMemory *nv)
    : powerSystem(ps),
      nvThreshold(nv, ps.systemSpec().maxStorageVoltage),
      currentThreshold(ps.systemSpec().maxStorageVoltage)
{}

void
VtopController::setThreshold(double v_top)
{
    capy_assert(v_top > 0.0, "bad threshold %g", v_top);
    if (v_top == currentThreshold)
        return;
    currentThreshold = v_top;
    nvThreshold.set(v_top);
    ++writes;
    powerSystem.setChargeCeiling(v_top);
}

} // namespace capy::core
