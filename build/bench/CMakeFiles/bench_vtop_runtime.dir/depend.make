# Empty dependencies file for bench_vtop_runtime.
# This may be replaced when dependencies are built.
