#include "env/events.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace capy::env
{

EventSchedule::EventSchedule(std::vector<sim::Time> times)
{
    std::sort(times.begin(), times.end());
    list.reserve(times.size());
    for (std::size_t i = 0; i < times.size(); ++i)
        list.push_back(EnvEvent{static_cast<int>(i), times[i]});
}

EventSchedule
EventSchedule::poisson(sim::Rng &rng, double mean_interval,
                       double horizon, double start_after)
{
    return EventSchedule(
        sim::poissonArrivals(rng, mean_interval, horizon, start_after));
}

EventSchedule
EventSchedule::poissonCount(sim::Rng &rng, std::size_t count,
                            double horizon, double start_after)
{
    capy_assert(count >= 1, "need at least one event");
    capy_assert(horizon > start_after, "empty horizon");
    // Draw `count` exponential gaps, then scale so the last event
    // lands at ~95% of the horizon.
    std::vector<sim::Time> times;
    times.reserve(count);
    double t = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
        t += rng.exponential(1.0);
        times.push_back(t);
    }
    double span = horizon - start_after;
    double scale = 0.95 * span / times.back();
    for (auto &v : times)
        v = start_after + v * scale;
    return EventSchedule(std::move(times));
}

EventSchedule
EventSchedule::poissonSeeded(std::uint64_t seed, std::uint64_t stream,
                             double mean_interval, double horizon,
                             double start_after)
{
    sim::Rng rng(seed, stream);
    return poisson(rng, mean_interval, horizon, start_after);
}

EventSchedule
EventSchedule::poissonCountSeeded(std::uint64_t seed,
                                  std::uint64_t stream,
                                  std::size_t count, double horizon,
                                  double start_after)
{
    sim::Rng rng(seed, stream);
    return poissonCount(rng, count, horizon, start_after);
}

const EnvEvent &
EventSchedule::at(std::size_t i) const
{
    capy_assert(i < list.size(), "event index %zu of %zu", i,
                list.size());
    return list[i];
}

sim::Time
EventSchedule::lastTime() const
{
    capy_assert(!list.empty(), "empty schedule");
    return list.back().time;
}

int
EventSchedule::eventCovering(sim::Time t, double dur, double span) const
{
    for (const EnvEvent &e : list) {
        if (e.time >= t + dur)
            break;  // sorted: nothing later can overlap
        if (t < e.time + span && e.time < t + dur)
            return e.id;
    }
    return -1;
}

std::vector<int>
EventSchedule::eventsBetween(sim::Time t0, sim::Time t1) const
{
    std::vector<int> out;
    for (const EnvEvent &e : list) {
        if (e.time >= t1)
            break;
        if (e.time > t0)
            out.push_back(e.id);
    }
    return out;
}

} // namespace capy::env
