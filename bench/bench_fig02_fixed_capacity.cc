/**
 * @file
 * Reproduces Fig. 2: execution with a fixed-capacity energy buffer.
 *
 * The application tries to collect a 15-sample time series and then
 * transmit it by radio. With a small buffer it samples reactively
 * (short recharges) but can never complete the transmission; with a
 * large buffer it completes the transmission but spends long spans
 * charging and samples in clumps.
 */

#include <cstdio>
#include <memory>

#include "apps/boards.hh"
#include "bench_util.hh"
#include "dev/device.hh"
#include "dev/peripheral.hh"
#include "dev/radio.hh"
#include "power/parts.hh"
#include "power/units.hh"
#include "rt/channel.hh"
#include "rt/kernel.hh"
#include "sim/logging.hh"
#include "sim/runner.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

using namespace capy;
using namespace capy::bench;
using namespace capy::literals;

namespace
{

struct FixedRun
{
    std::uint64_t samples = 0;
    std::uint64_t packets = 0;
    std::uint64_t txAborts = 0;
    std::size_t chargeSpans = 0;
    double chargeMean = 0.0;
    double chargeMax = 0.0;
    double onFraction = 0.0;
    sim::TimeSeries volts{"V"};
};

FixedRun
run(const power::CapacitorSpec &bank, double horizon)
{
    FixedRun out;
    sim::Simulator simulator;
    power::PowerSystem::Spec spec;
    auto ps = std::make_unique<power::PowerSystem>(
        spec, std::make_unique<power::RegulatedSupply>(
                  apps::grcHarvestPower(), 3.3));
    ps->addBank("fixed", bank);
    // The strip chart reads 60 coarse columns; no need to retain
    // every internal step of the voltage trajectory.
    out.volts.capPoints(65536);
    ps->attachVoltageTrace(&out.volts);
    dev::Device device(simulator, std::move(ps), dev::msp430fr5969(),
                       dev::Device::PowerMode::Intermittent);

    const auto tmp36 = dev::periph::tmp36();
    const auto ble = dev::bleRadio();
    dev::NvMemory fram;
    rt::Channel<int> count(&fram, 0);

    rt::App app;
    rt::Task *sense = nullptr;
    rt::Task *tx = nullptr;
    tx = app.addTask("radio_tx", txDuration(ble, 25), 0.0,
                     [&](rt::Kernel &) -> const rt::Task * {
                         ++out.packets;
                         count.set(0);
                         return sense;
                     });
    tx->absolutePower = ble.txPower;
    sense = app.addTask(
        "sense", 8_ms + tmp36.warmupTime, tmp36.activePower,
        [&](rt::Kernel &) -> const rt::Task * {
            ++out.samples;
            count.set(count.get() + 1);
            return count.get() >= 15 ? tx : sense;
        });
    app.setEntry(sense);

    rt::Kernel kernel(device, app, &fram);
    kernel.start();
    simulator.runUntil(horizon);

    for (const auto &s : device.spans().spans()) {
        if (s.label != "charging")
            continue;
        ++out.chargeSpans;
        out.chargeMean += s.duration();
        if (s.duration() > out.chargeMax)
            out.chargeMax = s.duration();
    }
    if (out.chargeSpans)
        out.chargeMean /= double(out.chargeSpans);
    out.onFraction = device.stats().timeOn / horizon;
    out.txAborts = device.stats().workloadsAborted;
    return out;
}

void
printTimeline(const FixedRun &r, double horizon, const char *label)
{
    // Coarse voltage strip chart: one column per horizon/60 seconds.
    std::printf("  %s voltage (0..3 V, %g s per column):\n    ", label,
                horizon / 60.0);
    for (int i = 0; i < 60; ++i) {
        double t = horizon * (double(i) + 0.5) / 60.0;
        double v = r.volts.empty() ? 0.0 : r.volts.at(t);
        const char *glyph = v < 0.75   ? "_"
                            : v < 1.5  ? "."
                            : v < 2.25 ? "-"
                                       : "^";
        std::printf("%s", glyph);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    setQuiet(true);
    banner("Figure 2", "execution with a fixed-capacity energy buffer");
    std::printf(
        "workload: collect 15 sensor samples, then transmit by radio\n"
        "harvester: regulated %.1f mW bench supply\n\n",
        apps::grcHarvestPower() * 1e3);

    const double horizon = 600.0;
    // Low capacity: the paper's small GRC bank (ceramic + tantalum).
    auto low_bank = power::parallelCompose(
        {power::parts::x5r100uF().parallel(4),
         power::parts::tant330uF()});
    // High capacity: the paper's fixed worst-case GRC bank.
    auto high_bank = power::parallelCompose(
        {power::parts::x5r100uF().parallel(4),
         power::parts::tant330uF(),
         power::parts::edlc7_5mF().parallel(9)});

    const power::CapacitorSpec banks[2] = {low_bank, high_bank};
    sim::BatchRunner pool;
    auto runs = pool.map(2, [&](std::size_t i) {
        return run(banks[i], horizon);
    });
    const FixedRun &low = runs[0];
    const FixedRun &high = runs[1];

    sim::Table t({"capacity", "C (mF)", "samples", "complete packets",
                  "failed tx attempts", "charge spans", "mean charge (s)",
                  "max charge (s)", "on fraction"});
    t.addRow({"low", sim::cell(low_bank.capacitance * 1e3),
              sim::cell(low.samples), sim::cell(low.packets),
              sim::cell(low.txAborts), sim::cell(std::uint64_t(low.chargeSpans)),
              sim::cell(low.chargeMean, 3), sim::cell(low.chargeMax, 3),
              sim::cell(low.onFraction, 3)});
    t.addRow({"high", sim::cell(high_bank.capacitance * 1e3),
              sim::cell(high.samples), sim::cell(high.packets),
              sim::cell(high.txAborts), sim::cell(std::uint64_t(high.chargeSpans)),
              sim::cell(high.chargeMean, 3), sim::cell(high.chargeMax, 3),
              sim::cell(high.onFraction, 3)});
    t.print();
    std::printf("\n");
    printTimeline(low, horizon, "low capacity ");
    printTimeline(high, horizon, "high capacity");
    std::printf("\n");

    shapeCheck(low.packets == 0,
               "low capacity buffers insufficient energy to ever "
               "complete the radio packet");
    shapeCheck(low.txAborts > 0,
               "low capacity repeatedly attempts and fails the packet");
    shapeCheck(high.packets >= 1,
               "high capacity completes packets");
    shapeCheck(high.chargeMean > 10.0 * low.chargeMean,
               "high capacity spends much longer recharging per span");
    shapeCheck(low.chargeSpans > 4 * high.chargeSpans,
               "low capacity charges in many short spans (reactive "
               "sampling)");
    return finish();
}
