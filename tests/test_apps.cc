/**
 * @file
 * End-to-end application tests: run the paper's three applications
 * (plus CapySat) at reduced scale under each power-system policy and
 * check the qualitative results the evaluation reports — who wins,
 * and why.
 */

#include <gtest/gtest.h>

#include "apps/capysat.hh"
#include "apps/csr.hh"
#include "apps/grc.hh"
#include "apps/ta.hh"
#include "env/events.hh"

using namespace capy;
using namespace capy::apps;
using namespace capy::core;

namespace
{

env::EventSchedule
shortTaSchedule(std::uint64_t seed)
{
    sim::Rng rng(seed, 0x7a);
    return env::EventSchedule::poissonCount(rng, 12, 1800.0, 60.0);
}

env::EventSchedule
shortGrcSchedule(std::uint64_t seed)
{
    sim::Rng rng(seed, 0x9c);
    return env::EventSchedule::poissonCount(rng, 20, 600.0, 30.0);
}

} // namespace

TEST(TempAlarmApp, ContinuousPowerDetectsNearlyEverything)
{
    auto sched = shortTaSchedule(1);
    RunMetrics m = runTempAlarm(Policy::Continuous, sched, 1, 1800.0);
    EXPECT_GE(m.summary.fracCorrect, 0.85);
    EXPECT_EQ(m.device.powerFailures, 0u);
    EXPECT_GT(m.samples, 1000u);
}

TEST(TempAlarmApp, CapybaraBeatsFixedOnAccuracy)
{
    auto sched = shortTaSchedule(2);
    RunMetrics fixed = runTempAlarm(Policy::Fixed, sched, 2, 1800.0);
    RunMetrics capy_p = runTempAlarm(Policy::CapyP, sched, 2, 1800.0);
    RunMetrics capy_r = runTempAlarm(Policy::CapyR, sched, 2, 1800.0);
    // The headline claim: reconfigurability detects more events.
    EXPECT_GT(capy_p.summary.fracCorrect,
              fixed.summary.fracCorrect);
    EXPECT_GT(capy_r.summary.fracCorrect,
              fixed.summary.fracCorrect);
    EXPECT_GE(capy_p.summary.fracCorrect, 0.6);
}

TEST(TempAlarmApp, PrechargeSlashesReportLatency)
{
    auto sched = shortTaSchedule(3);
    RunMetrics capy_r = runTempAlarm(Policy::CapyR, sched, 3, 1800.0);
    RunMetrics capy_p = runTempAlarm(Policy::CapyP, sched, 3, 1800.0);
    ASSERT_GT(capy_r.summary.correct, 0u);
    ASSERT_GT(capy_p.summary.correct, 0u);
    // Capy-R pays the big-bank charge on the critical path (~64 s in
    // the paper); Capy-P pays ~2.5 s.
    EXPECT_GT(capy_r.summary.latency.mean(),
              4.0 * capy_p.summary.latency.mean());
    EXPECT_LT(capy_p.summary.latency.mean(), 20.0);
}

TEST(TempAlarmApp, CapybaraSamplesDenserThanFixed)
{
    auto sched = shortTaSchedule(4);
    RunMetrics fixed = runTempAlarm(Policy::Fixed, sched, 4, 1800.0);
    RunMetrics capy_p = runTempAlarm(Policy::CapyP, sched, 4, 1800.0);
    // Fig. 11: with a fixed worst-case bank, samples come in batches
    // separated by long charge intervals; Capybara's small-bank
    // cycles spread samples across time. Compare coverage, not raw
    // counts: the number of non-back-to-back gaps (each a distinct
    // sampling opportunity window) and the mean charge interval.
    auto non_b2b = [](const RunMetrics &m) {
        std::size_t n = 0;
        for (const auto &iv : m.intervals)
            n += !iv.backToBack;
        return n;
    };
    EXPECT_GT(non_b2b(capy_p), 5u * non_b2b(fixed));
    // Fixed charge intervals are much longer on average.
    EXPECT_GT(fixed.chargeSpanMean, 2.0 * capy_p.chargeSpanMean);
}

TEST(TempAlarmApp, BurstsActuallyUsed)
{
    auto sched = shortTaSchedule(5);
    RunMetrics m = runTempAlarm(Policy::CapyP, sched, 5, 1800.0);
    EXPECT_GT(m.runtime.burstActivations, 0u);
    EXPECT_GT(m.runtime.prechargePhases, 0u);
    EXPECT_GT(m.runtime.prechargeSkips, 0u);
}

TEST(GestureApp, ContinuousPowerIsAccurate)
{
    auto sched = shortGrcSchedule(11);
    RunMetrics m = runGestureRemote(GrcVariant::Fast,
                                    Policy::Continuous, sched, 11,
                                    600.0);
    EXPECT_GE(m.summary.fracCorrect, 0.8);
}

TEST(GestureApp, FixedMissesMostGestures)
{
    auto sched = shortGrcSchedule(12);
    RunMetrics fixed = runGestureRemote(GrcVariant::Fast,
                                        Policy::Fixed, sched, 12,
                                        600.0);
    RunMetrics capy_p = runGestureRemote(GrcVariant::Fast,
                                         Policy::CapyP, sched, 12,
                                         600.0);
    // Paper: Fixed detects ~18%, Capy-P ~75%.
    EXPECT_LT(fixed.summary.fracCorrect, 0.5);
    EXPECT_GT(capy_p.summary.fracCorrect,
              fixed.summary.fracCorrect * 1.5);
}

TEST(GestureApp, CapyRUnsuitableForGestures)
{
    // §6.2: Capy-R incurs a charging delay between proximity and
    // gesture recognition, during which the motion completes.
    auto sched = shortGrcSchedule(13);
    RunMetrics capy_r = runGestureRemote(GrcVariant::Fast,
                                         Policy::CapyR, sched, 13,
                                         600.0);
    EXPECT_LE(capy_r.summary.correct, 1u);
}

TEST(GestureApp, CompactVariantWorksToo)
{
    auto sched = shortGrcSchedule(14);
    RunMetrics m = runGestureRemote(GrcVariant::Compact, Policy::CapyP,
                                    sched, 14, 600.0);
    EXPECT_GT(m.summary.fracCorrect, 0.3);
    EXPECT_GT(m.runtime.burstActivations, 0u);
}

TEST(GestureApp, VariantNames)
{
    EXPECT_STREQ(grcVariantName(GrcVariant::Fast), "GestureFast");
    EXPECT_STREQ(grcVariantName(GrcVariant::Compact),
                 "GestureCompact");
}

TEST(CorrSenseApp, CapybaraDetectsMostEvents)
{
    auto sched = shortGrcSchedule(21);
    RunMetrics fixed = runCorrSense(Policy::Fixed, sched, 21, 600.0);
    RunMetrics capy_p = runCorrSense(Policy::CapyP, sched, 21, 600.0);
    // Paper: Fixed ~56%, Capybara >= 89%.
    EXPECT_GT(capy_p.summary.fracCorrect, fixed.summary.fracCorrect);
    EXPECT_GE(capy_p.summary.fracCorrect, 0.6);
}

TEST(CorrSenseApp, ReportsAreTimely)
{
    auto sched = shortGrcSchedule(22);
    RunMetrics m = runCorrSense(Policy::CapyP, sched, 22, 600.0);
    ASSERT_GT(m.summary.correct, 0u);
    // Distance + LED + TX ~ 0.5 s after the event.
    EXPECT_LT(m.summary.latency.mean(), 5.0);
}

TEST(CapySat, CollectsAndTransmits)
{
    CapySatResult r = runCapySat(1.0, 31);
    EXPECT_GT(r.samples, 100u);
    EXPECT_GT(r.packets, 10u);
    EXPECT_GT(r.packetsDelivered, 0u);
    EXPECT_GE(r.packets, r.packetsDelivered);
}

TEST(CapySat, SplitterSavesArea)
{
    CapySatResult r = runCapySat(0.5, 32);
    EXPECT_NEAR(r.splitterArea / r.switchArea, 0.2, 1e-9);
    // Storage fits the 1.7x1.7 inch board: well under 500 mm^3.
    EXPECT_LT(r.capacitorVolume, 100.0);
}

TEST(CapySat, EclipseSuppressesActivity)
{
    CapySatResult r = runCapySat(2.0, 33);
    // Most activity happens sunlit; the banks cannot carry full-rate
    // operation through a 36-minute eclipse.
    EXPECT_LT(double(r.samplesInEclipse),
              0.5 * double(r.samples - r.samplesInEclipse));
}
