file(REMOVE_RECURSE
  "CMakeFiles/test_allocate.dir/test_allocate.cc.o"
  "CMakeFiles/test_allocate.dir/test_allocate.cc.o.d"
  "test_allocate"
  "test_allocate.pdb"
  "test_allocate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_allocate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
