/**
 * @file
 * The capacitor-bank switch of Fig. 6(b): a P-channel MOSFET high-side
 * switch whose state is held by a latch capacitor while the device is
 * unpowered. The latch leaks; once it decays below threshold the
 * switch reverts to its default state — open for the normally-open
 * (NO) variant, closed for normally-closed (NC). While the device is
 * powered, a replenishment circuit keeps the latch charged.
 */

#ifndef CAPY_POWER_BANKSWITCH_HH
#define CAPY_POWER_BANKSWITCH_HH

#include "sim/event.hh"

namespace capy::power
{

/** Default (state-loss) behaviour of a bank switch (§5.2). */
enum class SwitchKind
{
    NormallyOpen,    ///< reverts to disconnected: fast recharge,
                     ///< but a too-small default may strand tasks
    NormallyClosed,  ///< reverts to all-connected: slow recharge,
                     ///< but guaranteed completion on first boot
};

/** Human-readable kind name. */
const char *switchKindName(SwitchKind kind);

/** Electrical/mechanical parameters of one switch module. */
struct SwitchSpec
{
    SwitchKind kind = SwitchKind::NormallyOpen;
    /** Latch capacitor, F (prototype: 4.7 uF). */
    double latchCapacitance = 4.7e-6;
    /** Effective leakage resistance discharging the latch, ohm. */
    double latchLeakRes = 44e6;
    /** Latch voltage when freshly charged. */
    double latchFullVoltage = 2.4;
    /** Latch voltage below which the commanded state is lost. */
    double latchThreshold = 1.0;
    /** Board area of one switch module, mm^2 (§6.5: 80 mm^2). */
    double area = 80.0;
};

/**
 * One bank switch instance. Time advances explicitly via update();
 * commands are only legal while the device is powered (the MCU drives
 * the latch through a GPIO).
 */
class BankSwitch
{
  public:
    explicit BankSwitch(SwitchSpec spec, sim::Time t0 = 0.0);

    const SwitchSpec &spec() const { return switchSpec; }

    /** Electrical state: is the bank connected? */
    bool closed() const { return isClosed; }

    /** Whether the current state is the kind's default state. */
    bool atDefault() const;

    /**
     * Command the switch into @p close via the GPIO interface.
     * Requires the device to be powered (latch needs drive).
     */
    void command(bool close, sim::Time t, bool device_powered);

    /**
     * Advance latch state to time @p t. While @p device_powered the
     * replenishment circuit keeps the latch full; while unpowered the
     * latch decays and the switch reverts to default once the latch
     * falls below threshold.
     */
    void update(sim::Time t, bool device_powered);

    /**
     * Absolute time at which the switch would revert if it stays
     * unpowered; kNever when at default or the latch is already full
     * of margin. Call after update().
     */
    sim::Time expiryTime(sim::Time now) const;

    /** Analytic retention time R C ln(Vfull / Vthreshold). */
    double retentionTime() const;

    /** Number of reversion (state-loss) events observed. */
    std::uint64_t reversions() const { return numReversions; }

  private:
    bool defaultClosed() const;

    SwitchSpec switchSpec;
    bool isClosed;
    double latchVoltage = 0.0;
    sim::Time lastUpdate;
    std::uint64_t numReversions = 0;
};

} // namespace capy::power

#endif // CAPY_POWER_BANKSWITCH_HH
