/**
 * @file
 * Coverage for remaining public API surface: simulator event handles,
 * RNG ranges, span accessors, parts composition edge cases, device
 * abort reporting, and schedule generators.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "dev/device.hh"
#include "env/events.hh"
#include "power/parts.hh"
#include "power/power_system.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "sim/trace.hh"

using namespace capy;
using namespace capy::sim;

TEST(SimulatorMisc, IsPendingTracksHandles)
{
    Simulator s;
    EventId id = s.schedule(5.0, [] {});
    EXPECT_TRUE(s.isPending(id));
    EXPECT_EQ(s.pendingEvents(), 1u);
    s.cancel(id);
    EXPECT_FALSE(s.isPending(id));
    EXPECT_EQ(s.pendingEvents(), 0u);
}

TEST(SimulatorMisc, EventsExecutedCounter)
{
    Simulator s;
    for (int i = 0; i < 5; ++i)
        s.schedule(double(i), [] {});
    s.run();
    EXPECT_EQ(s.eventsExecuted(), 5u);
}

TEST(RngMisc, UniformRangeRespected)
{
    Rng r(3);
    for (int i = 0; i < 1000; ++i) {
        double v = r.uniform(-2.0, 3.0);
        EXPECT_GE(v, -2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(RngMisc, StreamsAreIndependent)
{
    Rng a(42, 1), b(42, 2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next32() == b.next32();
    EXPECT_LT(same, 5);
}

TEST(SpanTraceMisc, OpenStartAccessor)
{
    SpanTrace st;
    st.open(3.5, "x");
    EXPECT_DOUBLE_EQ(st.openStart(), 3.5);
    st.close(4.0);
}

TEST(PartsMisc, ParallelOfOneIsIdentityExceptName)
{
    auto p = power::parts::x5r100uF();
    auto q = p.parallel(1);
    EXPECT_DOUBLE_EQ(q.capacitance, p.capacitance);
    EXPECT_DOUBLE_EQ(q.esr, p.esr);
    EXPECT_DOUBLE_EQ(q.volume, p.volume);
    EXPECT_NE(q.part, p.part);  // "x1" suffix
}

TEST(PartsMisc, ComposeSingle)
{
    auto c = power::parallelCompose({power::parts::tant330uF()});
    EXPECT_DOUBLE_EQ(c.capacitance, 330e-6);
    EXPECT_DOUBLE_EQ(c.esr, power::parts::tant330uF().esr);
}

TEST(DeviceMisc, AbortReportingMatchesWorkload)
{
    Simulator s;
    power::PowerSystem::Spec spec;
    auto ps = std::make_unique<power::PowerSystem>(
        spec,
        std::make_unique<power::RegulatedSupply>(10e-3, 3.3));
    ps->addBank("b", power::parts::x5r100uF().parallel(4));
    dev::Device d(s, std::move(ps), dev::msp430fr5969(),
                  dev::Device::PowerMode::Intermittent);
    bool checked = false;
    d.setHooks({.onBoot =
                    [&] {
                        d.runWorkload(30e-3, 100.0, [] {});
                    },
                .onPowerFail =
                    [&] {
                        if (checked)
                            return;
                        checked = true;
                        const auto &a = d.lastAbortedWorkload();
                        EXPECT_DOUBLE_EQ(a.railPower, 30e-3);
                        EXPECT_GT(a.elapsed, 0.0);
                        EXPECT_LT(a.elapsed, 100.0);
                        s.stop();
                    }});
    d.start();
    s.runUntil(60.0);
    EXPECT_TRUE(checked);
}

TEST(EventScheduleMisc, PlainPoissonFactory)
{
    Rng rng(5);
    auto sched = env::EventSchedule::poisson(rng, 10.0, 500.0, 50.0);
    ASSERT_FALSE(sched.empty());
    EXPECT_GT(sched.at(0).time, 50.0);
    EXPECT_LT(sched.lastTime(), 500.0);
    for (std::size_t i = 1; i < sched.size(); ++i)
        EXPECT_GT(sched.at(i).time, sched.at(i - 1).time);
}

TEST(PowerSystemMisc, HarvesterRefAndSpecAccessors)
{
    power::PowerSystem::Spec spec;
    spec.prechargePenaltyVoltage = 0.4;
    power::PowerSystem ps(
        spec, std::make_unique<power::RegulatedSupply>(5e-3, 3.3));
    EXPECT_EQ(ps.harvesterRef().name(), "regulated-supply");
    EXPECT_DOUBLE_EQ(ps.systemSpec().prechargePenaltyVoltage, 0.4);
    EXPECT_EQ(ps.numBanks(), 0);
}

TEST(PowerSystemMisc, RfHarvesterChargesOnlyViaBooster)
{
    // RF rectified voltage 1.2 V: the bypass diode stops conducting
    // almost immediately; the booster must lift the rest.
    power::PowerSystem::Spec spec;
    power::PowerSystem ps(
        spec, std::make_unique<power::RfHarvester>(500e-6, 1.2));
    ps.addBank("b", power::parts::x5r100uF());
    sim::Time t = ps.timeToFull();
    ASSERT_TRUE(std::isfinite(t));
    ps.advanceTo(t + 0.1);
    EXPECT_TRUE(ps.isFull());
    // Without the booster (bypass only, which cuts off at ~0.9 V),
    // full charge to 3 V would be impossible; sanity-check that the
    // node indeed passed the diode cutoff.
    EXPECT_GT(ps.storageVoltage(), 1.2);
}

TEST(McuMisc, Cc2650Spec)
{
    auto m = dev::cc2650();
    EXPECT_EQ(m.name, "CC2650");
    EXPECT_GT(m.activePower, 0.0);
    EXPECT_NEAR(m.energyPerOp(), 8.5e-9, 1e-9);
}
