file(REMOVE_RECURSE
  "CMakeFiles/capy_core.dir/allocate.cc.o"
  "CMakeFiles/capy_core.dir/allocate.cc.o.d"
  "CMakeFiles/capy_core.dir/energy_mode.cc.o"
  "CMakeFiles/capy_core.dir/energy_mode.cc.o.d"
  "CMakeFiles/capy_core.dir/provision.cc.o"
  "CMakeFiles/capy_core.dir/provision.cc.o.d"
  "CMakeFiles/capy_core.dir/runtime.cc.o"
  "CMakeFiles/capy_core.dir/runtime.cc.o.d"
  "CMakeFiles/capy_core.dir/threshold_alt.cc.o"
  "CMakeFiles/capy_core.dir/threshold_alt.cc.o.d"
  "CMakeFiles/capy_core.dir/vtop_runtime.cc.o"
  "CMakeFiles/capy_core.dir/vtop_runtime.cc.o.d"
  "libcapy_core.a"
  "libcapy_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capy_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
