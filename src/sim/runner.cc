#include "sim/runner.hh"

#include <algorithm>
#include <cstdlib>

#include "sim/logging.hh"

namespace capy::sim
{

unsigned
BatchRunner::defaultThreads()
{
    if (const char *env = std::getenv("CAPY_JOBS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1 && v <= 4096)
            return unsigned(v);
        capy_warn("ignoring invalid CAPY_JOBS value '%s'", env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

BatchRunner::BatchRunner(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreads();
    workers.reserve(threads - 1);
    for (unsigned i = 1; i < threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

BatchRunner::~BatchRunner()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        capy_assert(batchSize == 0,
                    "BatchRunner destroyed with a batch in flight");
        shuttingDown = true;
    }
    wake.notify_all();
    for (auto &w : workers)
        w.join();
}

std::size_t
BatchRunner::chunkFor(std::size_t n, unsigned pool)
{
    // One lock round-trip per chunk instead of per job. Large sweeps
    // of tiny jobs (provisioning grids, seed sweeps of sub-ms runs)
    // otherwise spend comparable time in the mutex as in the jobs.
    // Claiming contiguous index runs changes only which thread runs a
    // job, never its index, so results stay byte-stable: placement is
    // index-ordered and jobs share no state.
    if (pool <= 1)
        return n;  // serial: claim the whole batch in one go
    std::size_t chunk = n / (std::size_t(pool) * 4);
    return std::clamp<std::size_t>(chunk, 1, 1024);
}

void
BatchRunner::runChunk(std::unique_lock<std::mutex> &lock)
{
    std::size_t begin = nextIndex;
    std::size_t end = std::min(begin + chunkSize, batchSize);
    nextIndex = end;
    const std::function<void(std::size_t)> *fn = body;
    lock.unlock();
    // Capture every failure in the chunk; lowest index still wins in
    // forEach's deterministic rethrow.
    std::vector<std::pair<std::size_t, std::exception_ptr>> errs;
    for (std::size_t i = begin; i < end; ++i) {
        try {
            (*fn)(i);
        } catch (...) {
            errs.emplace_back(i, std::current_exception());
        }
    }
    lock.lock();
    for (auto &e : errs)
        errors.push_back(std::move(e));
    remaining -= end - begin;
    if (remaining == 0)
        batchDone.notify_all();
}

void
BatchRunner::workerLoop()
{
    std::unique_lock<std::mutex> lock(mtx);
    for (;;) {
        wake.wait(lock, [this] {
            return shuttingDown || nextIndex < batchSize;
        });
        if (shuttingDown)
            return;
        while (nextIndex < batchSize)
            runChunk(lock);
    }
}

void
BatchRunner::forEach(std::size_t n,
                     const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    std::unique_lock<std::mutex> lock(mtx);
    capy_assert(batchSize == 0,
                "BatchRunner batches may not be nested");
    body = &fn;
    batchSize = n;
    nextIndex = 0;
    remaining = n;
    chunkSize = chunkFor(n, threads());
    errors.clear();
    if (!workers.empty())
        wake.notify_all();
    // The submitting thread is a full pool member.
    while (nextIndex < batchSize)
        runChunk(lock);
    batchDone.wait(lock, [this] { return remaining == 0; });
    batchSize = 0;
    body = nullptr;
    if (!errors.empty()) {
        auto it = std::min_element(
            errors.begin(), errors.end(),
            [](const auto &a, const auto &b) {
                return a.first < b.first;
            });
        std::exception_ptr err = it->second;
        errors.clear();
        lock.unlock();
        std::rethrow_exception(err);
    }
}

} // namespace capy::sim
