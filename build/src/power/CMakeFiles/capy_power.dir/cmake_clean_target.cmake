file(REMOVE_RECURSE
  "libcapy_power.a"
)
