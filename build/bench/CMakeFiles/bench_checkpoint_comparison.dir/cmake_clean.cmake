file(REMOVE_RECURSE
  "CMakeFiles/bench_checkpoint_comparison.dir/bench_checkpoint_comparison.cc.o"
  "CMakeFiles/bench_checkpoint_comparison.dir/bench_checkpoint_comparison.cc.o.d"
  "bench_checkpoint_comparison"
  "bench_checkpoint_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_checkpoint_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
