#include "sim/fault.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace capy::sim
{

FaultPlan
FaultPlan::atTimes(std::vector<Time> when)
{
    FaultPlan plan;
    std::sort(when.begin(), when.end());
    plan.times = std::move(when);
    return plan;
}

FaultPlan
FaultPlan::atEvent(std::uint64_t k)
{
    capy_assert(k > 0, "event indices are 1-based");
    FaultPlan plan;
    plan.everyNthEvent = 1;
    plan.eventOffset = k - 1;
    plan.maxAttempts = 1;
    return plan;
}

FaultPlan
FaultPlan::everyNth(std::uint64_t n, std::uint64_t offset)
{
    capy_assert(n > 0, "everyNth(0)");
    FaultPlan plan;
    plan.everyNthEvent = n;
    plan.eventOffset = offset;
    return plan;
}

FaultPlan
FaultPlan::poisson(std::uint64_t seed, double mean_interval,
                   Time horizon, Time start_after)
{
    capy_assert(mean_interval > 0.0, "mean interval %g", mean_interval);
    Rng rng(seed, 0xfa17);
    FaultPlan plan;
    plan.times =
        poissonArrivals(rng, mean_interval, horizon, start_after);
    return plan;
}

FaultInjector::FaultInjector(Simulator &simulator, FaultPlan plan_in,
                             Action action_in)
    : sim(simulator), plan(std::move(plan_in)),
      action(std::move(action_in))
{
    capy_assert(action != nullptr, "injector needs an action");
    for (Time t : plan.times) {
        if (t < sim.now())
            continue;  // pre-start instants can never fire
        sim.scheduleAt(t, [this] { attempt(); });
    }
    if (plan.everyNthEvent > 0) {
        sim.setPostEventHook([this] { onEventExecuted(); });
    }
}

FaultInjector::~FaultInjector()
{
    if (plan.everyNthEvent > 0)
        sim.setPostEventHook({});
}

void
FaultInjector::onEventExecuted()
{
    std::uint64_t executed = sim.eventsExecuted();
    if (executed <= plan.eventOffset)
        return;
    if ((executed - plan.eventOffset) % plan.everyNthEvent != 0)
        return;
    attempt();
}

void
FaultInjector::attempt()
{
    if (numAttempts >= plan.maxAttempts)
        return;
    ++numAttempts;
    if (action()) {
        ++numFired;
        whenFired.push_back(sim.now());
    }
}

} // namespace capy::sim
