#include "apps/experiment.hh"

#include <algorithm>

namespace capy::apps
{

env::EventSchedule
taSchedule(std::uint64_t seed)
{
    // Leave the cold-start period event-free, as the rigs do.
    return env::EventSchedule::poissonCountSeeded(
        seed, 0x7a, kTaEvents, kTaHorizon, 60.0);
}

env::EventSchedule
grcSchedule(std::uint64_t seed)
{
    return env::EventSchedule::poissonCountSeeded(
        seed, 0x9c, kGrcEvents, kGrcHorizon, 30.0);
}

void
collectMetrics(RunMetrics &out, const env::Scoreboard &sb,
               const dev::Device &device, const rt::Kernel &kernel,
               const core::Runtime &runtime, const dev::Radio &radio)
{
    out.policy = runtime.policy();
    out.summary = sb.summarize();
    out.intervals = sb.sampleIntervals();
    out.device = device.stats();
    out.kernel = kernel.stats();
    out.runtime = runtime.stats();
    out.packetsSent = radio.packetsSent();
    out.packetsLost = radio.packetsLost();
    out.samples = sb.samples().size();
    out.simEvents = device.simulator().eventsExecuted();

    double total = 0.0;
    for (const auto &span : device.spans().spans()) {
        if (span.label != "charging")
            continue;
        ++out.chargeSpans;
        total += span.duration();
        out.chargeSpanMax = std::max(out.chargeSpanMax,
                                     span.duration());
    }
    out.chargeSpanMean =
        out.chargeSpans ? total / double(out.chargeSpans) : 0.0;

    const auto &ps = device.powerSystem();
    for (int i = 0; i < ps.numBanks(); ++i) {
        out.bankCycles.emplace_back(ps.bank(i).name(),
                                    ps.bank(i).cyclesUsed());
    }
    out.taskEnergy = kernel.energyByTask();
}

sim::BatchRunner &
sweepPool()
{
    static sim::BatchRunner pool;
    return pool;
}

std::vector<RunMetrics>
runMetricsBatch(const std::vector<MetricsJob> &jobs)
{
    return sweepPool().map(jobs.size(),
                           [&](std::size_t i) { return jobs[i](); });
}

std::uint64_t
bankCyclesFor(const RunMetrics &m, const std::string &bank_name)
{
    for (const auto &[name, cycles] : m.bankCycles)
        if (name == bank_name)
            return cycles;
    return 0;
}

} // namespace capy::apps
