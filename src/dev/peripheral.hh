/**
 * @file
 * Peripheral (sensor/actuator) power models and the board catalog.
 * A task that exercises a peripheral pays its active power for the
 * task's duration plus the warm-up time; what a sensor *reads* comes
 * from the environment layer via a source callback.
 */

#ifndef CAPY_DEV_PERIPHERAL_HH
#define CAPY_DEV_PERIPHERAL_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/event.hh"

namespace capy::dev
{

/** Static parameters of one peripheral. */
struct PeripheralSpec
{
    std::string name;
    /** Rail power while active, W. */
    double activePower = 0.0;
    /** Initialization/warm-up time before useful output, s. */
    double warmupTime = 0.0;
    /** Minimum time the peripheral must stay on per use, s. */
    double minActiveTime = 0.0;
};

/** Catalog of the peripherals the paper's applications use. */
namespace periph
{

/** APDS-9960 gesture engine (250 ms minimum gesture window, §6.1.1). */
PeripheralSpec apds9960Gesture();

/** APDS-9960 proximity engine (cheap single-shot proximity check). */
PeripheralSpec apds9960Proximity();

/** Discrete phototransistor + ADC sampling. */
PeripheralSpec phototransistor();

/** TMP36-class analog temperature sensor + ADC. */
PeripheralSpec tmp36();

/** LIS3MDL-class magnetometer. */
PeripheralSpec magnetometer();

/** Indicator LED held on for a visibility window. */
PeripheralSpec led();

/** Accelerometer (CapySat attitude sensing). */
PeripheralSpec accelerometer();

/** Gyroscope (CapySat attitude sensing). */
PeripheralSpec gyroscope();

} // namespace periph

/** Total active power of a set of peripherals, W. */
double totalActivePower(const std::vector<PeripheralSpec> &specs);

/** Longest warm-up among a set of peripherals, s. */
double maxWarmup(const std::vector<PeripheralSpec> &specs);

/**
 * A sensor binds a peripheral spec to an environment signal; read()
 * samples the signal at a given simulated time and counts usage.
 */
class Sensor
{
  public:
    using Source = std::function<double(sim::Time)>;

    Sensor(PeripheralSpec sensor_spec, Source source_fn);

    const PeripheralSpec &spec() const { return sensorSpec; }

    /** Sample the bound environment signal at time @p t. */
    double read(sim::Time t);

    std::uint64_t samplesTaken() const { return numSamples; }

  private:
    PeripheralSpec sensorSpec;
    Source source;
    std::uint64_t numSamples = 0;
};

} // namespace capy::dev

#endif // CAPY_DEV_PERIPHERAL_HH
