/**
 * @file
 * Input and output boost-converter models plus the input voltage
 * limiter (§5.1 of the paper).
 *
 * The input booster charges the storage node from weak or low-voltage
 * harvesters. Below its cold-start threshold it can only trickle
 * charge — unless the bypass optimization conducts the harvester
 * directly into the capacitors through a keeper diode, which is what
 * gives the paper's >=10x cold-start speedup.
 *
 * The output booster generates a stable rail from a sagging capacitor
 * voltage, extracting energy down to a brown-out floor. Equivalent
 * series resistance (ESR) raises that floor: drawing power P from a
 * capacitor at voltage V pulls the booster input down to V - I*ESR
 * with I = P/V, so high-ESR supercapacitors strand more energy.
 */

#ifndef CAPY_POWER_BOOSTER_HH
#define CAPY_POWER_BOOSTER_HH

namespace capy::power
{

/** Input boost converter between harvester and storage node. */
struct InputBoosterSpec
{
    /** Conversion efficiency once running. */
    double efficiency = 0.80;
    /** Storage-node voltage above which the converter operates. */
    double coldStartVoltage = 1.0;
    /**
     * Fraction of harvester power that reaches storage during
     * cold start without the bypass (the slow trickle phase).
     */
    double coldStartFraction = 0.02;
    /** Whether the bypass diode path is populated. */
    bool bypassEnabled = true;
    /** Forward drop of the bypass keeper diode. */
    double bypassDiodeDrop = 0.3;
    /** Transfer efficiency of the direct bypass path. */
    double bypassEfficiency = 0.90;
    /** Converter quiescent draw while operating, W. */
    double quiescentPower = 10e-6;
};

/**
 * Power delivered into the storage node.
 *
 * @param spec converter configuration.
 * @param p_harvest power available from the harvester, W.
 * @param v_harvest harvester output voltage (post-limiter), V.
 * @param v_storage current storage-node voltage, V.
 */
double inputChargePower(const InputBoosterSpec &spec, double p_harvest,
                        double v_harvest, double v_storage);

/** Output boost converter between storage node and the load rail. */
struct OutputBoosterSpec
{
    /** Conversion efficiency. */
    double efficiency = 0.85;
    /** Regulated output rail, V. */
    double railVoltage = 2.4;
    /** Minimum input voltage to start the converter. */
    double minInputStart = 1.6;
    /** Minimum input voltage to keep running (brown-out floor). */
    double minInputRun = 1.1;
    /** Converter quiescent draw while enabled, W. */
    double quiescentPower = 15e-6;
};

/**
 * Power drawn from the storage node to serve @p rail_load watts at the
 * rail (conversion loss plus quiescent draw).
 */
double storageDrawPower(const OutputBoosterSpec &spec, double rail_load);

/**
 * Storage voltage below which the converter browns out while serving
 * @p rail_load watts through series resistance @p esr. Closed form of
 * V - (P_in/V) * esr = minInputRun.
 */
double brownoutVoltage(const OutputBoosterSpec &spec, double rail_load,
                       double esr);

/**
 * Storage voltage required to start the converter under @p rail_load
 * watts through @p esr (same droop equation against minInputStart).
 */
double startVoltage(const OutputBoosterSpec &spec, double rail_load,
                    double esr);

/**
 * Input voltage limiter between harvester and booster: clamps the
 * harvester voltage seen downstream so series-stacked panels cannot
 * exceed component ratings.
 */
struct LimiterSpec
{
    /** Maximum voltage passed downstream. */
    double clampVoltage = 5.0;
};

/** Harvester voltage after the limiter. */
double limitedVoltage(const LimiterSpec &spec, double v_harvest);

} // namespace capy::power

#endif // CAPY_POWER_BOOSTER_HH
