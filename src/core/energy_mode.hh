/**
 * @file
 * Energy modes (§4.1): named identifiers that map software-visible
 * energy requirements onto subsets of the hardware's switched
 * capacitor banks, plus the task annotations (`config`, `burst`,
 * `preburst`) programmers attach to tasks.
 */

#ifndef CAPY_CORE_ENERGY_MODE_HH
#define CAPY_CORE_ENERGY_MODE_HH

#include <string>
#include <vector>

namespace capy::core
{

/** Identifier of an energy mode; index into the ModeRegistry. */
using ModeId = int;

/** "No mode" sentinel. */
inline constexpr ModeId kNoMode = -1;

/**
 * The mapping from energy modes to hardware configurations. A mode
 * names the set of *switched* banks that must be active; hard-wired
 * banks are always active and are not listed.
 */
class ModeRegistry
{
  public:
    /**
     * Define a mode.
     * @param name human-readable mode name (e.g. "sample", "radio").
     * @param switched_banks PowerSystem bank indices that must be
     *        active (closed) in this mode; all other switched banks
     *        are deactivated.
     */
    ModeId define(std::string name, std::vector<int> switched_banks);

    std::size_t count() const { return modes.size(); }
    const std::string &name(ModeId id) const;
    const std::vector<int> &banks(ModeId id) const;

    /** Look up a mode by name; kNoMode when absent. */
    ModeId find(const std::string &name) const;

  private:
    struct Mode
    {
        std::string modeName;
        std::vector<int> bankSet;
    };

    const Mode &get(ModeId id) const;

    std::vector<Mode> modes;
};

/** Kind of energy annotation on a task (§4). */
enum class AnnKind
{
    None,      ///< intermittent task with no declared requirement
    Config,    ///< config(mode): reconfigure + charge before running
    Burst,     ///< burst(mode): activate pre-charged banks, run now
    Preburst,  ///< preburst(bmode, emode): charge a future burst's
               ///< banks off the critical path, then run in emode
};

const char *annKindName(AnnKind kind);

/** An energy annotation attached to a task. */
struct Annotation
{
    AnnKind kind = AnnKind::None;
    /** Config/Burst: the task's mode. Preburst: the execution mode
     *  (emode). */
    ModeId mode = kNoMode;
    /** Preburst only: the burst mode charged ahead of time (bmode). */
    ModeId burstMode = kNoMode;

    /** config(mode) */
    static Annotation config(ModeId m);
    /** burst(mode) */
    static Annotation burst(ModeId m);
    /** preburst(bmode, emode) */
    static Annotation preburst(ModeId bmode, ModeId emode);
};

} // namespace capy::core

#endif // CAPY_CORE_ENERGY_MODE_HH
