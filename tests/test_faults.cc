/**
 * @file
 * Tests for the adversarial fault-injection subsystem: the FaultPlan
 * grammar and FaultInjector, torn multi-word NV commits through the
 * two-slot journal, device-level failure injection and its stats
 * accounting, latch retention across injected failures, crash audits
 * over every application workload, and byte-stability of faulted
 * sweeps across thread counts.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "apps/capysat.hh"
#include "apps/csr.hh"
#include "apps/faults.hh"
#include "apps/grc.hh"
#include "apps/ta.hh"
#include "dev/mcu.hh"
#include "dev/nvmem.hh"
#include "power/parts.hh"
#include "power/power_system.hh"
#include "power/solver.hh"
#include "rt/audit.hh"
#include "rt/checkpoint.hh"
#include "sim/fault.hh"
#include "sim/simulator.hh"

using namespace capy;
using namespace capy::apps;
using namespace capy::dev;
using namespace capy::power;

namespace
{

struct FaultRig
{
    sim::Simulator sim;
    std::unique_ptr<Device> device;

    explicit FaultRig(CapacitorSpec bank = parts::edlc7_5mF(),
                      double harvest_mw = 10.0)
    {
        PowerSystem::Spec spec;
        auto ps = std::make_unique<PowerSystem>(
            spec,
            std::make_unique<RegulatedSupply>(harvest_mw * 1e-3, 3.3));
        ps->addBank("b", bank);
        device = std::make_unique<Device>(
            sim, std::move(ps), msp430fr5969(),
            Device::PowerMode::Intermittent);
    }
};

} // namespace

// --- FaultPlan / FaultInjector -------------------------------------

TEST(FaultPlan, AtTimesFiresAtExactlyThoseInstants)
{
    sim::Simulator sim;
    int fired = 0;
    sim::FaultInjector inj(sim,
                           sim::FaultPlan::atTimes({1.0, 2.5, 4.0}),
                           [&] {
                               ++fired;
                               return true;
                           });
    sim.runUntil(10.0);
    EXPECT_EQ(inj.attempts(), 3u);
    EXPECT_EQ(inj.fired(), 3u);
    ASSERT_EQ(inj.firedTimes().size(), 3u);
    EXPECT_DOUBLE_EQ(inj.firedTimes()[0], 1.0);
    EXPECT_DOUBLE_EQ(inj.firedTimes()[1], 2.5);
    EXPECT_DOUBLE_EQ(inj.firedTimes()[2], 4.0);
    EXPECT_EQ(fired, 3);
}

TEST(FaultPlan, UnpoweredAttemptsCountButDoNotFire)
{
    sim::Simulator sim;
    sim::FaultInjector inj(sim, sim::FaultPlan::atTimes({1.0, 2.0}),
                           [] { return false; });
    sim.runUntil(5.0);
    EXPECT_EQ(inj.attempts(), 2u);
    EXPECT_EQ(inj.fired(), 0u);
    EXPECT_TRUE(inj.firedTimes().empty());
}

TEST(FaultPlan, EveryNthEventHonoursOffsetAndCap)
{
    sim::Simulator sim;
    // A self-rescheduling tick provides a stream of events.
    std::function<void()> tick = [&] {
        if (sim.now() < 20.0)
            sim.schedule(1.0, [&] { tick(); });
    };
    sim.schedule(1.0, [&] { tick(); });

    sim::FaultPlan plan = sim::FaultPlan::everyNth(3, 2);
    plan.maxAttempts = 4;
    sim::FaultInjector inj(sim, plan, [] { return true; });
    sim.runUntil(30.0);
    // Attempts after executed events 5, 8, 11, 14 and never again.
    EXPECT_EQ(inj.attempts(), 4u);
    EXPECT_EQ(inj.fired(), 4u);
}

TEST(FaultPlan, PoissonIsAPureFunctionOfItsArguments)
{
    sim::FaultPlan a = sim::FaultPlan::poisson(7, 5.0, 100.0, 1.0);
    sim::FaultPlan b = sim::FaultPlan::poisson(7, 5.0, 100.0, 1.0);
    sim::FaultPlan c = sim::FaultPlan::poisson(8, 5.0, 100.0, 1.0);
    ASSERT_FALSE(a.times.empty());
    EXPECT_EQ(a.times, b.times);
    EXPECT_NE(a.times, c.times);
    for (double t : a.times) {
        EXPECT_GE(t, 1.0);
        EXPECT_LT(t, 100.0);
    }
}

// --- Torn multi-word NV commits ------------------------------------

TEST(NvJournal, CommitAndRecoverRoundTrip)
{
    NvMemory mem("fram");
    NvJournaledCell<double> cell(&mem, -1.0);
    EXPECT_DOUBLE_EQ(cell.get(), -1.0) << "reset value before commit";
    cell.set(2.5);
    EXPECT_DOUBLE_EQ(cell.get(), 2.5);
    cell.set(3.5);
    EXPECT_DOUBLE_EQ(cell.get(), 3.5);
    EXPECT_EQ(cell.commits(), 2u);
    auto st = cell.auditState();
    EXPECT_GE(st.active, 0);
    EXPECT_FALSE(st.torn);
}

TEST(NvJournal, TornCommitAtEveryWordBoundaryIsRecovered)
{
    // A commit interrupted after any strict prefix of its words must
    // be detected and the previous committed value recovered.
    for (std::size_t words = 0;; ++words) {
        NvMemory mem("fram");
        NvJournaledCell<double> cell(&mem, 0.0);
        cell.set(1.0);
        cell.set(2.0);
        if (words >= cell.slotWords())
            break;
        cell.tearSet(9.0, words);
        EXPECT_DOUBLE_EQ(cell.get(), 2.0)
            << "torn at word " << words;
        EXPECT_EQ(cell.tornWrites(), 1u);
        EXPECT_EQ(mem.tornCommits(), 1u);
        EXPECT_DOUBLE_EQ(cell.auditRecover(), 2.0);
        // The next real commit heals the journal.
        cell.set(3.0);
        EXPECT_DOUBLE_EQ(cell.get(), 3.0);
    }
}

TEST(NvJournal, FullLengthTearDegeneratesToCommit)
{
    NvMemory mem("fram");
    NvJournaledCell<double> cell(&mem, 0.0);
    cell.set(1.0);
    cell.tearSet(5.0, cell.slotWords());
    EXPECT_DOUBLE_EQ(cell.get(), 5.0);
    EXPECT_EQ(cell.tornWrites(), 0u);
    EXPECT_EQ(mem.tornCommits(), 0u);
}

TEST(NvJournal, TearWithNewerSeqCountsARecovery)
{
    NvMemory mem("fram");
    NvJournaledCell<double> cell(&mem, 0.0);
    cell.set(1.0);
    // All words but the CRC land: the torn slot carries the newest
    // sequence number but fails verification — the canonical case the
    // journal protocol exists for.
    cell.tearSet(9.0, cell.slotWords() - 1);
    EXPECT_DOUBLE_EQ(cell.get(), 1.0);
    EXPECT_EQ(mem.tornRecoveries(), 1u);
    auto st = cell.auditState();
    EXPECT_TRUE(st.torn);
}

TEST(NvJournal, BrokenRecoveryFixtureBelievesTornSlot)
{
    NvMemory mem("fram");
    NvJournaledCell<double> cell(&mem, 0.0);
    cell.set(1.0);
    cell.tearSet(9.0, cell.slotWords() - 1);

    mem.disableRecoveryForTest(true);
    // The CRC-skipping reader returns the phantom (uncommitted)
    // value; the protocol-correct audit recovery does not. This
    // divergence is exactly what the auditor's recovery-integrity
    // check detects.
    EXPECT_DOUBLE_EQ(cell.peek(), 9.0);
    EXPECT_DOUBLE_EQ(cell.auditRecover(), 1.0);
    mem.disableRecoveryForTest(false);
    EXPECT_DOUBLE_EQ(cell.peek(), 1.0);
}

// --- Device-level injection ----------------------------------------

TEST(InjectFailure, InvisibleToAnUnpoweredDevice)
{
    FaultRig rig;
    EXPECT_FALSE(rig.device->injectPowerFailure())
        << "not started yet";
    rig.device->start();
    // Immediately after start the device is still charging.
    EXPECT_TRUE(rig.device->isCharging());
    EXPECT_FALSE(rig.device->injectPowerFailure());
    EXPECT_EQ(rig.device->stats().injectedFailures, 0u);
    EXPECT_EQ(rig.device->stats().powerFailures, 0u);
}

TEST(InjectFailure, CollapseDrainsStorageGlitchKeepsIt)
{
    for (auto kind : {Device::FailureKind::Collapse,
                      Device::FailureKind::Glitch}) {
        FaultRig rig;
        bool injected = false, hit = false;
        double v_before = 0.0, v_after = 0.0, drained = 0.0;
        rig.device->setHooks(Device::Hooks{
            .onBoot =
                [&] {
                    if (injected)
                        return;
                    // A long doomed workload keeps the device loaded;
                    // the injection preempts it one second in, well
                    // before the physics' own brownout.
                    rig.device->runWorkload(
                        rig.device->mcu().activePower, 1000.0, [] {});
                    rig.sim.schedule(1.0, [&] {
                        if (injected)
                            return;
                        injected = true;
                        auto &ps = rig.device->powerSystem();
                        ps.advanceTo(rig.sim.now());
                        v_before = ps.storageVoltage();
                        hit = rig.device->injectPowerFailure(kind);
                        // Sampled at the failure instant: the bank
                        // recharges right after.
                        v_after = ps.storageVoltage();
                        drained = ps.stats().faultDrained;
                    });
                },
            .onPowerFail = [] {},
        });
        rig.device->start();
        rig.sim.runUntil(8.0);

        ASSERT_TRUE(hit);
        if (kind == Device::FailureKind::Collapse) {
            EXPECT_LT(v_after, v_before);
            EXPECT_GT(drained, 0.0);
        } else {
            EXPECT_NEAR(v_after, v_before, 1e-9);
            EXPECT_DOUBLE_EQ(drained, 0.0);
        }
        EXPECT_EQ(rig.device->stats().injectedFailures, 1u);
        EXPECT_GE(rig.device->stats().powerFailures, 1u);
    }
}

TEST(InjectFailure, BackToBackBootFailuresAccountExactlyOnce)
{
    // Kill the device during the boot window, repeatedly: every
    // injected failure must count as exactly one power failure AND
    // one boot failure, and the eventual successful boot as one boot.
    FaultRig rig;
    int boots = 0;
    rig.device->setHooks(Device::Hooks{
        .onBoot = [&] { ++boots; },
        .onPowerFail = [] {},
    });
    // The charge-complete event leaves the device mid-boot, so an
    // attempt after every executed event strikes the boot window.
    sim::FaultPlan plan = sim::FaultPlan::everyNth(1);
    plan.maxAttempts = 4;
    sim::FaultInjector inj(
        rig.sim, plan, [&] { return rig.device->injectPowerFailure(); });
    rig.device->start();
    rig.sim.runUntil(300.0);

    const auto &st = rig.device->stats();
    EXPECT_EQ(inj.fired(), 4u);
    EXPECT_EQ(st.injectedFailures, 4u);
    EXPECT_EQ(st.bootFailures, 4u)
        << "each injection struck the boot window";
    EXPECT_EQ(st.powerFailures, 4u)
        << "boot failures are power failures, counted once";
    EXPECT_EQ(st.boots, 1u);
    EXPECT_EQ(boots, 1);
    EXPECT_TRUE(rig.device->isOn());
}

TEST(InjectFailure, PreemptingPredictedBrownoutCountsOneAbort)
{
    // Physics pre-counts an abort when it schedules a brownout for a
    // workload it knows cannot finish; injecting first must not count
    // the same aborted workload twice.
    FaultRig rig;
    bool injected = false, hit = false;
    rig.device->setHooks(Device::Hooks{
        .onBoot =
            [&] {
                if (injected)
                    return;
                // 10 mW harvest vs 22 mW draw: a 1000 s workload is
                // doomed at schedule time, so the abort is counted
                // when the physics schedules the brownout.
                rig.device->runWorkload(
                    rig.device->mcu().activePower, 1000.0, [] {});
                rig.sim.schedule(1.0, [&] {
                    if (injected)
                        return;
                    injected = true;
                    hit = rig.device->injectPowerFailure();
                });
            },
        .onPowerFail = [] {},
    });
    rig.device->start();
    rig.sim.runUntil(8.0);

    ASSERT_TRUE(hit) << "device must be mid-workload";
    EXPECT_EQ(rig.device->stats().workloadsAborted, 1u);
    EXPECT_EQ(rig.device->stats().injectedFailures, 1u);
}

// --- Crash audits over the application workloads -------------------

namespace
{

/** Poisson failure schedule spec used by the per-app property tests. */
FaultSpec
poissonSpec(std::uint64_t seed, double mean_interval, double horizon)
{
    FaultSpec spec;
    spec.plan =
        sim::FaultPlan::poisson(seed, mean_interval, horizon, 1.0);
    return spec;
}

} // namespace

TEST(CrashAudit, CsrSurvivesPoissonFailures)
{
    const double horizon = 120.0;
    FaultSpec spec = poissonSpec(11, 7.0, horizon);
    RunMetrics m = runCorrSense(core::Policy::CapyP, grcSchedule(1),
                                1, horizon, &spec);
    EXPECT_GT(m.faults.fired, 0u);
    EXPECT_GT(m.faults.outagesAudited, 0u);
    EXPECT_GT(m.faults.checksRun, 0u);
    EXPECT_TRUE(m.faults.clean()) << m.faults.violationText;
}

TEST(CrashAudit, GrcSurvivesEveryNthEventFailures)
{
    // GRC parks between sparse gesture events, so time-indexed
    // attempts mostly see an unpowered device; event-indexed
    // attempts strike exactly where the software is live.
    const double horizon = 120.0;
    FaultSpec spec;
    spec.plan = sim::FaultPlan::everyNth(37);
    RunMetrics m =
        runGestureRemote(GrcVariant::Compact, core::Policy::CapyP,
                         grcSchedule(2), 2, horizon, &spec);
    EXPECT_GT(m.faults.fired, 0u);
    EXPECT_GT(m.faults.outagesAudited, 0u);
    EXPECT_TRUE(m.faults.clean()) << m.faults.violationText;
}

TEST(CrashAudit, TaSurvivesEveryNthEventFailures)
{
    const double horizon = 120.0;
    FaultSpec spec;
    spec.plan = sim::FaultPlan::everyNth(23);
    RunMetrics m = runTempAlarm(core::Policy::CapyP, taSchedule(3), 3,
                                horizon, -1.0, &spec);
    EXPECT_GT(m.faults.fired, 0u);
    EXPECT_GT(m.faults.outagesAudited, 0u);
    EXPECT_TRUE(m.faults.clean()) << m.faults.violationText;
}

TEST(CrashAudit, CapySatSurvivesBusFaultsOnBothMcus)
{
    const double orbits = 0.05;
    FaultSpec spec;
    spec.plan = sim::FaultPlan::poisson(14, 60.0, 0.05 * 5550.0, 5.0);
    CapySatResult r = runCapySat(orbits, 1, &spec);
    EXPECT_GT(r.faults.fired, 0u);
    EXPECT_GT(r.faults.checksRun, 0u);
    EXPECT_TRUE(r.faults.clean()) << r.faults.violationText;
}

TEST(CrashAudit, LatchRetentionHoldsUnderDenseReconfigFailures)
{
    // CapyP reconfigures the switched banks between tasks; a dense
    // failure schedule lands outages inside and around those
    // reconfiguration windows, and the auditor independently
    // re-derives every latch's retention contract across each outage.
    const double horizon = 90.0;
    FaultSpec spec = poissonSpec(15, 3.0, horizon);
    spec.watchLatches = true;
    RunMetrics m = runCorrSense(core::Policy::CapyP, grcSchedule(4),
                                4, horizon, &spec);
    EXPECT_GT(m.faults.outagesAudited, 3u);
    EXPECT_TRUE(m.faults.clean()) << m.faults.violationText;
}

TEST(CrashAudit, CheckpointWorkloadSurvivesFrequentFailures)
{
    FaultSpec spec;
    spec.plan = sim::FaultPlan::poisson(16, 5.0, 300.0, 1.0);
    CheckpointCrashMetrics m =
        runCheckpointCrashWorkload(&spec, 4.0, 300.0);
    EXPECT_GT(m.faults.fired, 0u);
    EXPECT_TRUE(m.faults.clean()) << m.faults.violationText;
    // Progress survives every outage: committed work only grows.
    EXPECT_GE(m.progress, 0.0);
    EXPECT_LE(m.progress, 4.0 + 1e-9);
}

TEST(CrashAudit, UninterruptedOracleIsCleanAndCompletes)
{
    FaultSpec spec;  // audit only, no injection
    CheckpointCrashMetrics m =
        runCheckpointCrashWorkload(&spec, 2.0, 600.0);
    EXPECT_TRUE(m.finished);
    EXPECT_NEAR(m.progress, 2.0, 1e-9);
    EXPECT_TRUE(m.faults.clean()) << m.faults.violationText;
    EXPECT_EQ(m.faults.fired, 0u);
    EXPECT_FALSE(m.faults.activeSpans.empty());
}

TEST(CrashAudit, AuditorCatchesBrokenRecoveryPath)
{
    // Tear a commit with everything but the CRC written, then break
    // the read path: the auditor must flag the divergence between
    // what the software recovers and what the protocol allows.
    FaultRig rig(parts::edlc7_5mF(), 3.0);
    NvMemory fram("fram");
    rt::CheckpointKernel::Spec kspec;
    kspec.checkpointTime = 25e-3;
    rt::CheckpointKernel kernel(*rig.device, kspec, 100.0, 0.0, [] {},
                                &fram);
    rt::CrashAuditor auditor(*rig.device);
    auditor.watchCheckpoint(kernel);
    fram.disableRecoveryForTest(true);

    // A 1 ms probe grid watches for the checkpoint phase and injects
    // only after ~20 consecutive sightings — i.e. ~20 ms into the
    // 25 ms window — so the tear lands past the sequence-number word
    // with only the CRC still unwritten (the one torn image a
    // CRC-skipping reader believes).
    kernel.start();
    bool caught = false;
    int sightings = 0;
    for (double t = 0.5; t < 60.0; t += 1e-3) {
        rig.sim.schedule(t, [&] {
            if (caught)
                return;
            if (kernel.phase() !=
                rt::CheckpointKernel::Phase::Checkpoint) {
                sightings = 0;
                return;
            }
            if (++sightings < 20)
                return;
            sightings = 0;
            rig.device->injectPowerFailure();
            caught = !auditor.clean();
        });
    }
    rig.sim.runUntil(130.0);

    ASSERT_TRUE(caught) << "no probe landed late in a checkpoint "
                           "write; torn checkpoints: "
                        << kernel.stats().tornCheckpoints;
    auditor.checkNow();
    EXPECT_FALSE(auditor.clean())
        << "broken recovery path escaped the auditor";
    bool integrity = false;
    for (const auto &v : auditor.violations())
        integrity |= v.rule == "ckpt-recovery-integrity";
    EXPECT_TRUE(integrity) << auditor.report();
}

// --- Byte-stability of faulted sweeps across thread counts ---------

namespace
{

struct SweepOut
{
    int exitCode = -1;
    std::string output;
};

SweepOut
runCrashSweepWithJobs(const std::string &args, const char *jobs)
{
    SweepOut r;
    std::string cmd = std::string("CAPY_JOBS=") + jobs + " '" +
                      CAPY_CRASH_SWEEP_BIN "' " + args + " 2>&1";
    std::FILE *pipe = popen(cmd.c_str(), "r");
    if (pipe == nullptr)
        return r;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, pipe)) > 0)
        r.output.append(buf, got);
    int status = pclose(pipe);
    r.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return r;
}

} // namespace

TEST(CrashSweepDeterminism, ByteIdenticalAcrossThreadCounts)
{
    const std::string args = "--app ckpt --max-points 24 --verbose";
    SweepOut serial = runCrashSweepWithJobs(args, "1");
    SweepOut pooled = runCrashSweepWithJobs(args, "4");
    ASSERT_EQ(serial.exitCode, 0) << serial.output;
    ASSERT_EQ(pooled.exitCode, 0) << pooled.output;
    ASSERT_FALSE(serial.output.empty());
    EXPECT_EQ(serial.output, pooled.output);
    EXPECT_NE(serial.output.find("OK: sweep clean"),
              std::string::npos);
}

TEST(CrashSweepDeterminism, TimeIndexedSweepIsByteStableToo)
{
    const std::string args =
        "--app ckpt --time-points 400 --break-recovery "
        "--expect-caught";
    SweepOut serial = runCrashSweepWithJobs(args, "1");
    SweepOut pooled = runCrashSweepWithJobs(args, "4");
    ASSERT_EQ(serial.exitCode, 0) << serial.output;
    ASSERT_EQ(pooled.exitCode, 0) << pooled.output;
    EXPECT_EQ(serial.output, pooled.output);
}
