/**
 * @file
 * Closed-form transient solver for capacitor energy under piecewise-
 * constant conditions.
 *
 * Between simulation events a storage node sees a constant net power
 * P (harvest in minus load out) and a parallel leakage resistance R
 * across total capacitance C. Stored energy then obeys
 *
 *     dE/dt = P - V^2/R = P - 2E/(R C)
 *
 * a linear ODE with solution E(t) = Einf + (E0 - Einf) e^{-t/tau},
 * tau = R C / 2, Einf = P R C / 2. Both the trajectory and crossing
 * times for energy targets are available in closed form, which lets
 * the event-driven simulator jump directly to charge-complete and
 * brown-out instants without numeric integration.
 */

#ifndef CAPY_POWER_SOLVER_HH
#define CAPY_POWER_SOLVER_HH

#include <limits>

namespace capy::power
{

/** Positive infinity, used for "never" crossing times. */
inline constexpr double kNever = std::numeric_limits<double>::infinity();

/**
 * Constant-condition phase for the storage node.
 */
struct Phase
{
    double power = 0.0;        ///< net power into the node, W (can be <0)
    double capacitance = 0.0;  ///< total node capacitance, F
    /** Parallel leakage resistance, ohm; infinity = lossless. */
    double leakRes = std::numeric_limits<double>::infinity();
};

/**
 * Energy after @p dt seconds starting from @p e0 joules under @p ph.
 * Clamped at zero (a capacitor cannot hold negative energy; once
 * empty, negative net power has nothing left to remove).
 */
double advanceEnergy(double e0, const Phase &ph, double dt);

/**
 * Time for stored energy to reach @p target joules from @p e0 under
 * @p ph.
 *
 * @return 0 when already at the target (within one part in 1e12),
 *         kNever when the trajectory never reaches it, otherwise the
 *         positive crossing time in seconds.
 */
double timeToEnergy(double e0, double target, const Phase &ph);

/**
 * Asymptotic energy of the phase (P R C / 2); kNever for a lossless
 * phase with positive power.
 */
double steadyStateEnergy(const Phase &ph);

} // namespace capy::power

#endif // CAPY_POWER_SOLVER_HH
