/**
 * @file
 * Status and error reporting in the gem5 style.
 *
 * Two error channels with distinct purposes:
 *  - panic(): something happened that should never happen regardless of
 *    what the user does — a bug in this library. Calls std::abort().
 *  - fatal(): the simulation cannot continue because of a user error
 *    (bad configuration, invalid arguments). Exits with an error code.
 *
 * Two status channels:
 *  - warn(): functionality may not behave as the user expects; a likely
 *    place to look if strange behaviour follows.
 *  - inform(): normal operating messages with no connotation of error.
 */

#ifndef CAPY_SIM_LOGGING_HH
#define CAPY_SIM_LOGGING_HH

#include <string>

namespace capy
{

/** Render a printf-style format string to a std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort on an internal invariant violation (library bug). */
#define capy_panic(...) \
    ::capy::detail::panicImpl(__FILE__, __LINE__, \
                              ::capy::strfmt(__VA_ARGS__))

/** Exit on an unrecoverable user/configuration error. */
#define capy_fatal(...) \
    ::capy::detail::fatalImpl(__FILE__, __LINE__, \
                              ::capy::strfmt(__VA_ARGS__))

/** Warn about suspicious but non-fatal conditions. */
#define capy_warn(...) \
    ::capy::detail::warnImpl(::capy::strfmt(__VA_ARGS__))

/** Informational status message. */
#define capy_inform(...) \
    ::capy::detail::informImpl(::capy::strfmt(__VA_ARGS__))

/** Assert an invariant; panics with a message when violated. */
#define capy_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            capy_panic("assertion failed: %s — %s", #cond, \
                       ::capy::strfmt(__VA_ARGS__).c_str()); \
        } \
    } while (0)

/** Count of warnings emitted so far (for tests). */
unsigned long warnCount();

/** Suppress or re-enable warn()/inform() output (for tests/benches). */
void setQuiet(bool quiet);

} // namespace capy

#endif // CAPY_SIM_LOGGING_HH
