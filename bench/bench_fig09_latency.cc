/**
 * @file
 * Reproduces Fig. 9: report latency for detected events — the time
 * from the external event to the reception of the corresponding BLE
 * packet, for every application x power-system combination.
 *
 * The headline behaviours: Capy-R pays the large-bank charge on the
 * critical path (the paper's TA outlier at ~64 s), while Capy-P's
 * pre-charging keeps latency within ~1.5x of continuous power.
 */

#include <cstdio>
#include <vector>

#include "apps/csr.hh"
#include "apps/grc.hh"
#include "apps/ta.hh"
#include "bench_util.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace capy;
using namespace capy::apps;
using namespace capy::bench;
using namespace capy::core;

namespace
{

constexpr std::uint64_t kSeed = 20180324;

void
row(sim::Table &t, const char *app, Policy p, const RunMetrics &m)
{
    const auto &lat = m.summary.latency;
    if (lat.count() == 0) {
        t.addRow({app, policyName(p), "0", "-", "-", "-",
                  "(no events reported)"});
        return;
    }
    t.addRow({app, policyName(p), sim::cell(lat.count()),
              sim::cell(lat.mean(), 4), sim::cell(lat.min(), 4),
              sim::cell(lat.max(), 4), bar(lat.mean(), 45.0, 30)});
}

} // namespace

int
main()
{
    setQuiet(true);
    banner("Figure 9", "report latency for detected events");

    auto ts = taSchedule(kSeed);
    auto gs = grcSchedule(kSeed);

    const Policy pols[4] = {Policy::Continuous, Policy::Fixed,
                            Policy::CapyR, Policy::CapyP};

    // 16 independent runs dispatched as one parallel batch; results
    // return in submission order (4 per app, policy-major).
    std::vector<MetricsJob> jobs;
    for (int i = 0; i < 4; ++i) {
        Policy p = pols[i];
        jobs.push_back([&ts, p] { return runTempAlarm(p, ts, kSeed); });
        jobs.push_back([&gs, p] {
            return runGestureRemote(GrcVariant::Fast, p, gs, kSeed);
        });
        jobs.push_back([&gs, p] {
            return runGestureRemote(GrcVariant::Compact, p, gs, kSeed);
        });
        jobs.push_back([&gs, p] { return runCorrSense(p, gs, kSeed); });
    }
    auto results = runMetricsBatch(jobs);

    RunMetrics ta[4], gf[4], gc[4], cs[4];
    for (std::size_t i = 0; i < 4; ++i) {
        ta[i] = results[i * 4 + 0];
        gf[i] = results[i * 4 + 1];
        gc[i] = results[i * 4 + 2];
        cs[i] = results[i * 4 + 3];
    }

    sim::Table t({"app", "system", "reported", "mean (s)", "min (s)",
                  "max (s)", ""});
    for (int i = 0; i < 4; ++i)
        row(t, "TempAlarm", pols[i], ta[i]);
    for (int i = 0; i < 4; ++i)
        row(t, "GestureFast", pols[i], gf[i]);
    for (int i = 0; i < 4; ++i)
        row(t, "GestureCompact", pols[i], gc[i]);
    for (int i = 0; i < 4; ++i)
        row(t, "CorrSense", pols[i], cs[i]);
    t.print();

    enum { PWR, FIXED, CAPYR, CAPYP };
    double ta_r = ta[CAPYR].summary.latency.mean();
    double ta_p = ta[CAPYP].summary.latency.mean();
    double ta_pwr = ta[PWR].summary.latency.mean();

    shapeCheck(ta_r >= 5.0 * ta_p,
               "TA: Capy-R charges the big bank on the critical path "
               "(paper: 64 s) while Capy-P pre-charged it (paper: "
               "2.5 s)");
    shapeCheck(ta[CAPYR].summary.latency.max() >= 30.0,
               "TA: worst Capy-R report waits out a full large-bank "
               "charge");
    shapeCheck(ta_p <= 2.5 * ta_pwr,
               "TA: Capy-P response latency stays within ~1.5-2.5x "
               "of continuous power");
    shapeCheck(gf[CAPYP].summary.latency.mean() <=
                   1.5 * gf[PWR].summary.latency.mean(),
               "GRC-Fast: Capy-P latency within 1.5x of continuous "
               "power");
    shapeCheck(cs[CAPYP].summary.latency.mean() <=
                   1.5 * cs[PWR].summary.latency.mean(),
               "CSR: Capy-P latency within 1.5x of continuous power");
    shapeCheck(gf[FIXED].summary.latency.mean() <=
                   1.3 * gf[PWR].summary.latency.mean(),
               "GRC: the few events Fixed does catch report as fast "
               "as continuous power (no charge between detection and "
               "transmit)");
    shapeCheck(gc[CAPYP].summary.latency.mean() >=
                   0.9 * gf[CAPYP].summary.latency.mean(),
               "GRC-Compact's separate gesture and transmit tasks pay "
               "at least ~GRC-Fast's end-to-end latency");
    return finish();
}
