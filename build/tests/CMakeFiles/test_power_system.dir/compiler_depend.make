# Empty compiler generated dependencies file for test_power_system.
# This may be replaced when dependencies are built.
