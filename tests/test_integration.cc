/**
 * @file
 * Cross-layer integration tests: determinism of full application
 * runs, trace- and orbit-driven devices, experiment-driver helpers,
 * and end-to-end behaviours that span every library layer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "apps/csr.hh"
#include "apps/grc.hh"
#include "apps/ta.hh"
#include "dev/device.hh"
#include "env/light.hh"
#include "power/parts.hh"
#include "power/power_system.hh"
#include "rt/kernel.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

using namespace capy;
using namespace capy::apps;
using namespace capy::core;

namespace
{

env::EventSchedule
tinySchedule(std::uint64_t seed)
{
    sim::Rng rng(seed, 0x7a);
    return env::EventSchedule::poissonCount(rng, 8, 900.0, 60.0);
}

} // namespace

TEST(Integration, AppRunsAreDeterministic)
{
    auto sched = tinySchedule(9);
    RunMetrics a = runTempAlarm(Policy::CapyP, sched, 9, 900.0);
    RunMetrics b = runTempAlarm(Policy::CapyP, sched, 9, 900.0);
    EXPECT_EQ(a.summary.correct, b.summary.correct);
    EXPECT_EQ(a.samples, b.samples);
    EXPECT_EQ(a.device.boots, b.device.boots);
    EXPECT_EQ(a.runtime.reconfigurations, b.runtime.reconfigurations);
    EXPECT_DOUBLE_EQ(a.summary.latency.mean(),
                     b.summary.latency.mean());
}

TEST(Integration, DifferentSeedsDifferentSensorNoise)
{
    auto sched = tinySchedule(9);
    RunMetrics a = runGestureRemote(GrcVariant::Fast, Policy::CapyP,
                                    sched, 1, 900.0);
    RunMetrics b = runGestureRemote(GrcVariant::Fast, Policy::CapyP,
                                    sched, 2, 900.0);
    // Same events, different radio/sensor noise: totals equal,
    // details typically not.
    EXPECT_EQ(a.summary.total, b.summary.total);
}

TEST(Integration, BankCyclesReported)
{
    auto sched = tinySchedule(10);
    RunMetrics capy = runTempAlarm(Policy::CapyP, sched, 10, 900.0);
    EXPECT_GT(bankCyclesFor(capy, "small"), 0u);
    EXPECT_EQ(bankCyclesFor(capy, "no-such-bank"), 0u);
    ASSERT_EQ(capy.bankCycles.size(), 2u);

    RunMetrics fixed = runTempAlarm(Policy::Fixed, sched, 10, 900.0);
    ASSERT_EQ(fixed.bankCycles.size(), 1u);
    EXPECT_EQ(fixed.bankCycles[0].first, "fixed");
}

TEST(Integration, OrbitDrivenDeviceSleepsInEclipse)
{
    // A device on orbit light should boot many times while sunlit and
    // stall during eclipse.
    sim::Simulator simulator;
    env::OrbitLight orbit;
    power::PowerSystem::Spec spec;
    auto ps = std::make_unique<power::PowerSystem>(
        spec, std::make_unique<power::SolarArray>(
                  2, 10e-3, 2.5, orbit.illumination(),
                  orbit.changePeriod()));
    ps->addBank("b", power::parts::x5r100uF().parallel(4));
    dev::Device device(simulator, std::move(ps), dev::msp430fr5969(),
                       dev::Device::PowerMode::Intermittent);

    std::vector<double> boot_times;
    device.setHooks(
        {.onBoot =
             [&] {
                 boot_times.push_back(simulator.now());
                 device.runWorkload(22e-3, 0.05,
                                    [&] { device.powerDown(); });
             },
         .onPowerFail = nullptr});
    device.start();
    simulator.runUntil(orbit.spec().orbitPeriod);

    ASSERT_GT(boot_times.size(), 10u);
    int lit = 0, dark = 0;
    for (double t : boot_times)
        (orbit.sunlit(t) ? lit : dark)++;
    EXPECT_GT(lit, 10);
    // The small bank cannot carry repeated boots through a 36 min
    // eclipse; at most a couple of residual boots right after sunset.
    EXPECT_LT(dark, lit / 5);
}

TEST(Integration, TraceDrivenDayNightCycle)
{
    // A synthetic "day": strong morning, cloudy noon dip, dark night.
    sim::Simulator simulator;
    power::PowerSystem::Spec spec;
    auto ps = std::make_unique<power::PowerSystem>(
        spec,
        std::make_unique<power::TraceHarvester>(
            power::TraceHarvester(
                {{0.0, 6e-3}, {100.0, 1e-3}, {200.0, 6e-3},
                 {300.0, 0.0}},
                3.3, false)));
    ps->addBank("b", power::parts::x5r100uF().parallel(4));
    dev::Device device(simulator, std::move(ps), dev::msp430fr5969(),
                       dev::Device::PowerMode::Intermittent);

    int boots_by_phase[4] = {0, 0, 0, 0};
    device.setHooks(
        {.onBoot =
             [&] {
                 int phase =
                     std::min(3, int(simulator.now() / 100.0));
                 ++boots_by_phase[phase];
                 device.runWorkload(22e-3, 0.02,
                                    [&] { device.powerDown(); });
             },
         .onPowerFail = nullptr});
    device.start();
    simulator.runUntil(500.0);

    EXPECT_GT(boots_by_phase[0], boots_by_phase[1])
        << "cloudy dip slows the boot rate";
    EXPECT_GT(boots_by_phase[2], boots_by_phase[1])
        << "afternoon recovery speeds it up again";
    EXPECT_LE(boots_by_phase[3], 1) << "night: nothing left to boot "
                                       "on";
}

TEST(Integration, CsrMisclassifiedWhenChainRunsLate)
{
    // Force staleness: Capy-R recharges between detection and the
    // distance scan, so CSR reports carry stale data and score as
    // misclassified, not correct.
    auto sched = tinySchedule(11);
    RunMetrics capy_r = runCorrSense(Policy::CapyR, sched, 11, 900.0);
    EXPECT_EQ(capy_r.summary.correct, 0u);
    EXPECT_GT(capy_r.summary.misclassified +
                  capy_r.summary.proximityOnly +
                  capy_r.summary.missed,
              0u);
}

TEST(Integration, HigherLossRadioLowersAccuracyOnly)
{
    // With the same schedule, radio loss (seed-dependent) can only
    // reduce "correct"; detection (proximity) is unaffected.
    auto sched = tinySchedule(12);
    RunMetrics m = runGestureRemote(GrcVariant::Compact, Policy::CapyP,
                                    sched, 12, 900.0);
    EXPECT_EQ(m.summary.total, sched.size());
    EXPECT_GE(m.packetsSent, m.summary.correct);
}

TEST(Integration, ContinuousPolicyNeverCharges)
{
    auto sched = tinySchedule(13);
    RunMetrics m = runTempAlarm(Policy::Continuous, sched, 13, 900.0);
    EXPECT_EQ(m.chargeSpans, 0u);
    EXPECT_EQ(m.device.powerFailures, 0u);
    EXPECT_EQ(m.runtime.reconfigurations, 0u);
}

TEST(Integration, FixedPolicySingleBank)
{
    auto sched = tinySchedule(14);
    RunMetrics m = runTempAlarm(Policy::Fixed, sched, 14, 900.0);
    EXPECT_EQ(m.runtime.burstActivations, 0u);
    EXPECT_EQ(m.runtime.prechargePhases, 0u);
    EXPECT_EQ(m.runtime.rechargePauses, 0u)
        << "no reconfiguration -> no voluntary pauses; only natural "
           "brown-outs";
    EXPECT_GT(m.device.powerFailures, 0u);
}

TEST(Integration, ScheduleBuildersMatchPaperScale)
{
    auto ts = taSchedule(1);
    auto gs = grcSchedule(1);
    EXPECT_EQ(ts.size(), kTaEvents);
    EXPECT_EQ(gs.size(), kGrcEvents);
    EXPECT_LT(ts.lastTime(), kTaHorizon);
    EXPECT_LT(gs.lastTime(), kGrcHorizon);
    EXPECT_GT(ts.at(0).time, 30.0) << "cold-start guard";
}

TEST(Integration, GestureFastFewerKernelTransitionsThanCompact)
{
    auto sched = tinySchedule(15);
    RunMetrics fast = runGestureRemote(GrcVariant::Fast, Policy::CapyP,
                                       sched, 15, 900.0);
    RunMetrics compact = runGestureRemote(GrcVariant::Compact,
                                          Policy::CapyP, sched, 15,
                                          900.0);
    // Compact splits gesture/tx into separate tasks: at least as many
    // transitions per event chain.
    EXPECT_GE(double(compact.kernel.transitions),
              0.9 * double(fast.kernel.transitions));
}

TEST(Integration, WarnFreeOnNominalApps)
{
    unsigned long before = warnCount();
    auto sched = tinySchedule(16);
    (void)runTempAlarm(Policy::CapyP, sched, 16, 900.0);
    (void)runGestureRemote(GrcVariant::Fast, Policy::CapyP, sched, 16,
                           900.0);
    EXPECT_EQ(warnCount(), before)
        << "nominal runs must not emit model warnings";
}
