/**
 * @file
 * Energy provisioning (§3, "Defining Task Energy Requirements"):
 * estimate a task's energy demand, derive the capacitance that
 * furnishes it (analytically, with derating), and the paper's
 * empirical method — run the task on a progressively larger bank
 * until it completes (§6.1).
 */

#ifndef CAPY_CORE_PROVISION_HH
#define CAPY_CORE_PROVISION_HH

#include "dev/mcu.hh"
#include "power/capacitor.hh"
#include "power/power_system.hh"
#include "rt/task.hh"

namespace capy::core
{

/** A task's demand at the regulated rail. */
struct TaskEnergy
{
    double railPower = 0.0;  ///< W while executing
    double duration = 0.0;   ///< s of atomic execution

    double railEnergy() const { return railPower * duration; }
};

/**
 * "Measure" a task on continuous power with a current-sense
 * amplifier (§3): in the model, the analytic rail power and duration.
 * Includes the MCU's boot cost, which every attempt pays.
 */
TaskEnergy measureTaskEnergy(const rt::Task &task,
                             const dev::McuSpec &mcu);

/**
 * Capacitance that stores enough extractable energy for @p demand,
 * built from parallel copies of @p unit under power system @p spec.
 *
 * Solves E_stored(Vtop..Vbrownout) * eta >= E_rail iteratively, since
 * the brown-out floor depends on the composite ESR, which depends on
 * the unit count.
 *
 * @param derating overprovisioning margin (>= 1), the standard
 *        practice for capacitor aging (§3).
 * @return required capacitance in farads (a multiple of the unit).
 */
double requiredCapacitance(const TaskEnergy &demand,
                           const power::PowerSystem::Spec &spec,
                           const power::CapacitorSpec &unit,
                           double derating = 1.2);

/** Outcome of the empirical trial-provisioning loop. */
struct ProvisionResult
{
    bool feasible = false;
    int unitCount = 0;          ///< parallel copies of the unit part
    double capacitance = 0.0;   ///< F
    double chargeTime = 0.0;    ///< observed time to first full, s
};

/**
 * The paper's iterative provisioning procedure: starting from one
 * unit, run @p task on a device with n parallel units and increase n
 * until the task completes (§6.1), up to @p max_units.
 *
 * @param harvest_power bench harvester power, W.
 */
ProvisionResult provisionByTrial(const rt::Task &task,
                                 const dev::McuSpec &mcu,
                                 const power::PowerSystem::Spec &spec,
                                 const power::CapacitorSpec &unit,
                                 double harvest_power, int max_units);

} // namespace capy::core

#endif // CAPY_CORE_PROVISION_HH
