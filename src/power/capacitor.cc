#include "power/capacitor.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/logging.hh"

namespace capy::power
{

const char *
capTechName(CapTech tech)
{
    switch (tech) {
      case CapTech::Ceramic:
        return "ceramic";
      case CapTech::Tantalum:
        return "tantalum";
      case CapTech::Edlc:
        return "EDLC";
    }
    capy_panic("unknown CapTech %d", static_cast<int>(tech));
}

double
CapacitorSpec::leakageResistance() const
{
    if (leakageCurrent <= 0.0)
        return std::numeric_limits<double>::infinity();
    capy_assert(ratedVoltage > 0.0,
                "part '%s' has leakage but no rated voltage",
                part.c_str());
    return ratedVoltage / leakageCurrent;
}

CapacitorSpec
CapacitorSpec::parallel(std::size_t n) const
{
    capy_assert(n >= 1, "parallel(0) of part '%s'", part.c_str());
    CapacitorSpec out = *this;
    out.part = part + "x" + std::to_string(n);
    out.capacitance = capacitance * double(n);
    out.esr = esr / double(n);
    out.leakageCurrent = leakageCurrent * double(n);
    out.volume = volume * double(n);
    // Rated voltage and cycle endurance are per-part properties and do
    // not change with parallel composition.
    return out;
}

CapacitorSpec
parallelCompose(const std::vector<CapacitorSpec> &parts)
{
    capy_assert(!parts.empty(), "parallelCompose of no parts");
    CapacitorSpec out;
    out.part = "composite(";
    out.tech = parts.front().tech;
    out.ratedVoltage = std::numeric_limits<double>::infinity();
    out.cycleEndurance = std::numeric_limits<double>::infinity();
    double inv_esr = 0.0;
    bool any_esr = false;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        const CapacitorSpec &p = parts[i];
        capy_assert(p.capacitance > 0.0,
                    "part '%s' has non-positive capacitance",
                    p.part.c_str());
        out.part += (i ? "+" : "") + p.part;
        out.capacitance += p.capacitance;
        out.leakageCurrent += p.leakageCurrent;
        out.volume += p.volume;
        out.ratedVoltage = std::min(out.ratedVoltage, p.ratedVoltage);
        if (p.cycleEndurance > 0.0) {
            out.cycleEndurance =
                std::min(out.cycleEndurance, p.cycleEndurance);
        }
        if (p.esr > 0.0) {
            inv_esr += 1.0 / p.esr;
            any_esr = true;
        } else {
            // An ideal (zero-ESR) branch shorts the composite ESR.
            inv_esr = std::numeric_limits<double>::infinity();
            any_esr = true;
        }
    }
    out.part += ")";
    out.esr = any_esr && std::isfinite(inv_esr) && inv_esr > 0.0
                  ? 1.0 / inv_esr
                  : 0.0;
    if (std::isinf(out.cycleEndurance))
        out.cycleEndurance = 0.0;
    return out;
}

CapacitorBank::CapacitorBank(std::string bank_name,
                             CapacitorSpec composite_spec)
    : bankName(std::move(bank_name)), composite(std::move(composite_spec))
{
    capy_assert(composite.capacitance > 0.0,
                "bank '%s' has non-positive capacitance",
                bankName.c_str());
}

double
CapacitorBank::voltage() const
{
    return std::sqrt(2.0 * storedEnergy / composite.capacitance);
}

double
CapacitorBank::charge() const
{
    return composite.capacitance * voltage();
}

double
CapacitorBank::energyAtVoltage(double v) const
{
    capy_assert(v >= 0.0, "negative voltage %g", v);
    return 0.5 * composite.capacitance * v * v;
}

void
CapacitorBank::setEnergy(double joules)
{
    storedEnergy = std::max(0.0, joules);
}

void
CapacitorBank::setVoltage(double v)
{
    setEnergy(energyAtVoltage(v));
}

void
CapacitorBank::deposit(double joules)
{
    setEnergy(storedEnergy + joules);
    if (composite.ratedVoltage > 0.0 &&
        voltage() > composite.ratedVoltage * 1.001) {
        capy_warn("bank '%s' charged to %.3g V above rating %.3g V",
                  bankName.c_str(), voltage(), composite.ratedVoltage);
    }
}

double
equalizeParallel(std::vector<CapacitorBank *> &banks)
{
    capy_assert(!banks.empty(), "equalize of no banks");
    double total_q = 0.0;
    double total_c = 0.0;
    for (CapacitorBank *b : banks) {
        total_q += b->charge();
        total_c += b->capacitance();
    }
    double v = total_q / total_c;
    for (CapacitorBank *b : banks)
        b->setVoltage(v);
    return v;
}

} // namespace capy::power
