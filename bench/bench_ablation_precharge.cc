/**
 * @file
 * Ablation (§6.4): the pre-charge voltage penalty. The prototype's
 * switch circuit can pre-charge a bank only to a strictly lower
 * voltage (~0.3 V) than a directly charged bank reaches. A larger
 * penalty shrinks the voltage window Capy-P's bursts run on —
 * increasing top-up work and burst failures — while Capy-R (which
 * always charges directly on the critical path) is unaffected but
 * pays an order of magnitude more latency.
 */

#include <cstdio>
#include <vector>

#include "apps/ta.hh"
#include "bench_util.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace capy;
using namespace capy::apps;
using namespace capy::bench;
using namespace capy::core;

int
main()
{
    setQuiet(true);
    banner("Section 6.4 ablation", "pre-charge voltage penalty");

    constexpr std::uint64_t kSeed = 4242;
    auto sched = taSchedule(kSeed);

    std::vector<double> penalties = {0.0, 0.3, 0.6};
    std::vector<MetricsJob> jobs = {[&sched] {
        return runTempAlarm(Policy::CapyR, sched, kSeed);
    }};
    for (double p : penalties)
        jobs.push_back([&sched, p] {
            return runTempAlarm(Policy::CapyP, sched, kSeed,
                                kTaHorizon, p);
        });
    auto results = runMetricsBatch(jobs);
    RunMetrics capy_r = results[0];
    std::vector<RunMetrics> runs(results.begin() + 1, results.end());

    sim::Table t({"system", "correct", "latency mean (s)",
                  "latency max (s)", "burst activations",
                  "burst recharges", "pre-charge phases"});
    t.addRow({"Capy-R (direct charge)",
              sim::cell(capy_r.summary.correct),
              sim::cell(capy_r.summary.latency.mean(), 4),
              sim::cell(capy_r.summary.latency.max(), 4),
              sim::cell(capy_r.runtime.burstActivations),
              sim::cell(capy_r.runtime.burstRecharges),
              sim::cell(capy_r.runtime.prechargePhases)});
    for (std::size_t i = 0; i < penalties.size(); ++i) {
        t.addRow({strfmt("Capy-P (%.1f V penalty)", penalties[i]),
                  sim::cell(runs[i].summary.correct),
                  sim::cell(runs[i].summary.latency.mean(), 4),
                  sim::cell(runs[i].summary.latency.max(), 4),
                  sim::cell(runs[i].runtime.burstActivations),
                  sim::cell(runs[i].runtime.burstRecharges),
                  sim::cell(runs[i].runtime.prechargePhases)});
    }
    t.print();

    const RunMetrics &nominal = runs[1];  // 0.3 V, the prototype
    shapeCheck(nominal.runtime.burstActivations > 0,
               "Capy-P serves alarms from pre-charged bursts");
    shapeCheck(capy_r.runtime.burstActivations == 0,
               "Capy-R has no burst support");
    shapeCheck(capy_r.summary.latency.mean() >
                   5.0 * nominal.summary.latency.mean(),
               "the penalty is well spent: Capy-P latency is an order "
               "of magnitude below Capy-R (§6.4)");
    shapeCheck(runs[2].runtime.burstRecharges >=
                   runs[0].runtime.burstRecharges,
               "a larger penalty forces at least as many critical-path "
               "burst recharges");
    shapeCheck(runs[2].summary.latency.mean() >=
                   runs[0].summary.latency.mean(),
               "a larger penalty cannot improve latency");
    shapeCheck(capy_r.summary.correct + 2 >=
                   nominal.summary.correct,
               "Capy-R's direct-charge efficiency keeps its accuracy "
               "on par (§6.4 / Fig. 10)");
    return finish();
}
