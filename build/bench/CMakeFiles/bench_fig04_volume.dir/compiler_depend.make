# Empty compiler generated dependencies file for bench_fig04_volume.
# This may be replaced when dependencies are built.
