/**
 * @file
 * Tests for capacitor specs, parallel composition, charge-holding
 * banks, charge redistribution, and the parts catalog.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "power/capacitor.hh"
#include "power/parts.hh"
#include "power/units.hh"

using namespace capy;
using namespace capy::power;

TEST(CapacitorSpec, LeakageResistanceFromCurrent)
{
    CapacitorSpec s;
    s.part = "t";
    s.capacitance = 100_uF;
    s.ratedVoltage = 6.3_V;
    s.leakageCurrent = 1_uA;
    EXPECT_DOUBLE_EQ(s.leakageResistance(), 6.3e6);
    s.leakageCurrent = 0.0;
    EXPECT_TRUE(std::isinf(s.leakageResistance()));
}

TEST(CapacitorSpec, ParallelScalesFields)
{
    CapacitorSpec s = parts::cph3225a();
    CapacitorSpec p = s.parallel(4);
    EXPECT_DOUBLE_EQ(p.capacitance, 4 * s.capacitance);
    EXPECT_DOUBLE_EQ(p.esr, s.esr / 4);
    EXPECT_DOUBLE_EQ(p.leakageCurrent, 4 * s.leakageCurrent);
    EXPECT_DOUBLE_EQ(p.volume, 4 * s.volume);
    EXPECT_DOUBLE_EQ(p.ratedVoltage, s.ratedVoltage);
}

TEST(CapacitorSpec, ComposeSumsAndMins)
{
    auto composed = parallelCompose({parts::x5r100uF(),
                                     parts::tant330uF()});
    EXPECT_DOUBLE_EQ(composed.capacitance, 430e-6);
    EXPECT_DOUBLE_EQ(composed.ratedVoltage, 6.3);
    EXPECT_DOUBLE_EQ(composed.volume, 80.0);
    // Parallel ESR below the smallest branch ESR.
    EXPECT_LT(composed.esr, parts::x5r100uF().esr);
    EXPECT_GT(composed.esr, 0.0);
}

TEST(CapacitorBank, VoltageEnergyRoundTrip)
{
    CapacitorBank b("b", parts::x5r100uF());
    b.setVoltage(3.0);
    EXPECT_NEAR(b.energy(), 0.5 * 100e-6 * 9.0, 1e-15);
    EXPECT_NEAR(b.voltage(), 3.0, 1e-12);
    EXPECT_NEAR(b.charge(), 100e-6 * 3.0, 1e-15);
}

TEST(CapacitorBank, DepositAndClamp)
{
    CapacitorBank b("b", parts::x5r100uF());
    b.setVoltage(1.0);
    double e0 = b.energy();
    b.deposit(e0);  // double the energy
    EXPECT_NEAR(b.voltage(), std::sqrt(2.0), 1e-12);
    b.deposit(-10.0);  // overdraw clamps at zero
    EXPECT_DOUBLE_EQ(b.energy(), 0.0);
    EXPECT_DOUBLE_EQ(b.voltage(), 0.0);
}

TEST(CapacitorBank, CycleCounting)
{
    CapacitorBank b("b", parts::edlc7_5mF());
    EXPECT_EQ(b.cyclesUsed(), 0u);
    b.recordCycle();
    b.recordCycle();
    EXPECT_EQ(b.cyclesUsed(), 2u);
}

TEST(Equalize, ConservesChargeNotEnergy)
{
    CapacitorBank a("a", parts::x5r100uF());
    CapacitorBank b("b", parts::tant330uF());
    a.setVoltage(3.0);
    b.setVoltage(0.0);
    double q_before = a.charge() + b.charge();
    double e_before = a.energy() + b.energy();
    std::vector<CapacitorBank *> banks{&a, &b};
    double v = equalizeParallel(banks);
    EXPECT_NEAR(a.charge() + b.charge(), q_before, q_before * 1e-12);
    EXPECT_LT(a.energy() + b.energy(), e_before);  // redistribution loss
    EXPECT_NEAR(a.voltage(), v, 1e-12);
    EXPECT_NEAR(b.voltage(), v, 1e-12);
    // V = q / Ctotal = 3*100u / 430u.
    EXPECT_NEAR(v, 3.0 * 100.0 / 430.0, 1e-9);
}

TEST(Equalize, EqualVoltagesUnchanged)
{
    CapacitorBank a("a", parts::x5r100uF());
    CapacitorBank b("b", parts::tant330uF());
    a.setVoltage(2.0);
    b.setVoltage(2.0);
    std::vector<CapacitorBank *> banks{&a, &b};
    double v = equalizeParallel(banks);
    EXPECT_NEAR(v, 2.0, 1e-12);
    EXPECT_NEAR(a.voltage(), 2.0, 1e-12);
}

TEST(Parts, CatalogLookup)
{
    auto spec = parts::byName("CPH3225A");
    EXPECT_EQ(spec.tech, CapTech::Edlc);
    EXPECT_DOUBLE_EQ(spec.capacitance, 11e-3);
    EXPECT_DOUBLE_EQ(spec.esr, 160.0);
}

TEST(Parts, AllHavePositiveFields)
{
    for (const auto &p : parts::all()) {
        EXPECT_GT(p.capacitance, 0.0) << p.part;
        EXPECT_GT(p.ratedVoltage, 0.0) << p.part;
        EXPECT_GT(p.volume, 0.0) << p.part;
        EXPECT_GE(p.esr, 0.0) << p.part;
    }
}

TEST(Parts, EdlcDensityBeatsCeramic)
{
    // The premise of Fig. 4: supercaps store far more per volume.
    auto ceramic = parts::x5r100uF();
    auto edlc = parts::cph3225a();
    double d_ceramic = ceramic.capacitance / ceramic.volume;
    double d_edlc = edlc.capacitance / edlc.volume;
    EXPECT_GT(d_edlc, 50.0 * d_ceramic);
}

TEST(Parts, SynthesizeScalesDensity)
{
    auto s = parts::synthesize(CapTech::Ceramic, 400e-6);
    EXPECT_DOUBLE_EQ(s.capacitance, 400e-6);
    auto ref = parts::x5r100uF();
    EXPECT_NEAR(s.volume, ref.volume * 4.0, 1e-9);
    EXPECT_NEAR(s.esr, ref.esr / 4.0, 1e-12);
}

TEST(Parts, TechNames)
{
    EXPECT_STREQ(capTechName(CapTech::Ceramic), "ceramic");
    EXPECT_STREQ(capTechName(CapTech::Tantalum), "tantalum");
    EXPECT_STREQ(capTechName(CapTech::Edlc), "EDLC");
}
