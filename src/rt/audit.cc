#include "rt/audit.hh"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstring>

#include "power/solver.hh"
#include "rt/checkpoint.hh"
#include "rt/kernel.hh"
#include "sim/logging.hh"

namespace capy::rt
{

namespace
{

std::string
fmt(const char *f, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, f);
    std::vsnprintf(buf, sizeof(buf), f, ap);
    va_end(ap);
    return buf;
}

} // namespace

CrashAuditor::CrashAuditor(dev::Device &device) : dev(device)
{
    dev.setObserver(dev::Device::Observer{
        .onRailUp = [this] { onRailUp(); },
        .onRailDown =
            [this](dev::Device::RailDownReason r) { onRailDown(r); },
    });

    // Device-level failure accounting is audited unconditionally:
    // every boot failure and every injected failure is also a power
    // failure, counted exactly once.
    addInvariant("dev-failure-accounting", [this]() -> std::string {
        const auto &st = dev.stats();
        if (st.bootFailures > st.powerFailures)
            return fmt("bootFailures %llu > powerFailures %llu",
                       (unsigned long long)st.bootFailures,
                       (unsigned long long)st.powerFailures);
        if (st.injectedFailures > st.powerFailures)
            return fmt("injectedFailures %llu > powerFailures %llu",
                       (unsigned long long)st.injectedFailures,
                       (unsigned long long)st.powerFailures);
        return "";
    });
}

void
CrashAuditor::addInvariant(std::string rule, Check check)
{
    capy_assert(check != nullptr, "null check '%s'", rule.c_str());
    invariants.emplace_back(std::move(rule), std::move(check));
}

void
CrashAuditor::addMonotonic(std::string rule,
                           std::function<double()> probe, double tol)
{
    capy_assert(probe != nullptr, "null probe '%s'", rule.c_str());
    monotonics.push_back(MonotonicProbe{std::move(rule),
                                        std::move(probe), tol, 0.0});
}

void
CrashAuditor::watchKernel(const Kernel &kernel)
{
    const Kernel *k = &kernel;

    addInvariant("chain-accounting", [k]() -> std::string {
        const auto &st = k->stats();
        std::uint64_t expected =
            st.transitions + (k->halted() ? 1u : 0u);
        if (st.taskCompletions != expected)
            return fmt("completions %llu != transitions %llu + "
                       "halted %d",
                       (unsigned long long)st.taskCompletions,
                       (unsigned long long)st.transitions,
                       k->halted() ? 1 : 0);
        return "";
    });

    addInvariant("chain-task-valid", [k]() -> std::string {
        const Task *t = k->taskCell().peek();
        if (t == nullptr)
            return "recovered NV task pointer is null";
        if (!k->app().owns(t))
            return "recovered NV task pointer is not a task of "
                   "the app";
        return "";
    });

    addInvariant("chain-journal", [k]() -> std::string {
        auto st = k->taskCell().auditState();
        if (st.commits > 0 && st.active < 0)
            return fmt("no valid journal slot after %llu commits",
                       (unsigned long long)st.commits);
        return "";
    });

    addInvariant("chain-recovery-integrity", [k]() -> std::string {
        const Task *seen = k->taskCell().peek();
        const Task *strict = k->taskCell().auditRecover();
        if (seen != strict)
            return fmt("read path recovered %p, protocol recovers %p",
                       (const void *)seen, (const void *)strict);
        return "";
    });

    addMonotonic("chain-transitions", [k] {
        return static_cast<double>(k->stats().transitions);
    });
}

void
CrashAuditor::watchCheckpoint(const CheckpointKernel &kernel)
{
    const CheckpointKernel *k = &kernel;

    addMonotonic("ckpt-progress",
                 [k] { return k->progressCell().peek(); });

    addInvariant("ckpt-progress-range", [k]() -> std::string {
        double p = k->progressCell().peek();
        if (p < -1e-9 || p > k->workTarget() + 1e-9)
            return fmt("recovered progress %g outside [0, %g]", p,
                       k->workTarget());
        return "";
    });

    addInvariant("ckpt-overhead-identity", [k]() -> std::string {
        const auto &st = k->stats();
        const auto &spec = k->kernelSpec();
        double expected =
            double(st.checkpoints) * spec.checkpointTime +
            double(st.restores) * spec.restoreTime;
        if (std::abs(st.overheadTime - expected) > 1e-9)
            return fmt("overheadTime %g != %llu ckpts * %g + "
                       "%llu restores * %g",
                       st.overheadTime,
                       (unsigned long long)st.checkpoints,
                       spec.checkpointTime,
                       (unsigned long long)st.restores,
                       spec.restoreTime);
        return "";
    });

    addInvariant("ckpt-journal", [k]() -> std::string {
        auto st = k->progressCell().auditState();
        if (st.commits > 0 && st.active < 0)
            return fmt("no valid journal slot after %llu commits",
                       (unsigned long long)st.commits);
        return "";
    });

    // Re-derive recovery through the protocol and compare with what
    // the software's read path returns: catches a recovery
    // implementation that believes torn slots (skipped CRC checks).
    addInvariant("ckpt-recovery-integrity", [k]() -> std::string {
        double seen = k->progressCell().peek();
        double strict = k->progressCell().auditRecover();
        if (std::memcmp(&seen, &strict, sizeof seen) != 0)
            return fmt("read path recovered %.17g, protocol "
                       "recovers %.17g",
                       seen, strict);
        return "";
    });
}

void
CrashAuditor::watchLatches()
{
    latchesWatched = true;
}

void
CrashAuditor::checkNow()
{
    runChecks();
    sampleMonotonics();
}

void
CrashAuditor::onRailDown(dev::Device::RailDownReason)
{
    // Runs after the software's onPowerFail hook: this is the exact
    // non-volatile state that must survive the outage.
    runChecks();
    sampleMonotonics();
    if (latchesWatched)
        recordLatches();
    downRecorded = true;
    lastDownTime = dev.simulator().now();
    if (lastUpTime >= 0.0) {
        spans.emplace_back(lastUpTime, lastDownTime);
        lastUpTime = -1.0;
    }
}

void
CrashAuditor::onRailUp()
{
    // Runs before the software's onBoot hook: recovered state is
    // audited before recovery code can repair it.
    runChecks();
    sampleMonotonics();
    if (downRecorded) {
        ++numOutages;
        if (latchesWatched)
            checkLatches();
        downRecorded = false;
    }
    lastUpTime = dev.simulator().now();
}

std::vector<std::pair<sim::Time, sim::Time>>
CrashAuditor::activeSpans() const
{
    auto out = spans;
    if (lastUpTime >= 0.0 && dev.simulator().now() > lastUpTime)
        out.emplace_back(lastUpTime, dev.simulator().now());
    return out;
}

void
CrashAuditor::runChecks()
{
    for (const auto &[rule, check] : invariants) {
        ++numChecks;
        std::string detail = check();
        if (!detail.empty())
            violate(rule, std::move(detail));
    }
}

void
CrashAuditor::sampleMonotonics()
{
    for (MonotonicProbe &m : monotonics) {
        ++numChecks;
        double v = m.probe();
        if (m.seeded && v < m.highWater - m.tol) {
            violate(m.rule, fmt("value regressed to %.12g from "
                                "high-water %.12g",
                                v, m.highWater));
        }
        if (!m.seeded || v > m.highWater) {
            m.highWater = v;
            m.seeded = true;
        }
    }
}

void
CrashAuditor::recordLatches()
{
    latchesAtDown.clear();
    const auto &ps = dev.powerSystem();
    sim::Time now = dev.simulator().now();
    for (int i = 0; i < ps.numBanks(); ++i) {
        const power::BankSwitch *sw = ps.bankSwitch(i);
        if (!sw)
            continue;
        latchesAtDown.push_back(LatchRecord{
            i, sw->closed(), sw->atDefault(), sw->expiryTime(now)});
    }
}

void
CrashAuditor::checkLatches()
{
    // The unpowered window ran from rail-down until the boot sequence
    // re-enabled the rail, one boot time before this rail-up.
    sim::Time boot_start =
        dev.simulator().now() - dev.mcu().bootTime;
    const auto &ps = dev.powerSystem();
    for (const LatchRecord &rec : latchesAtDown) {
        ++numChecks;
        const power::BankSwitch *sw = ps.bankSwitch(rec.bankIdx);
        if (!sw)
            continue;
        double tol = 1e-6 + 1e-9 * std::abs(rec.expiry);
        if (!std::isfinite(rec.expiry) ||
            boot_start < rec.expiry - tol) {
            // Latch outlives the outage: the commanded state must be
            // retained exactly.
            if (sw->closed() != rec.closed)
                violate("latch-retention",
                        fmt("bank %d switch changed state while its "
                            "latch held (down %.6g, up %.6g, expiry "
                            "%.6g)",
                            rec.bankIdx, lastDownTime,
                            dev.simulator().now(), rec.expiry));
        } else if (boot_start > rec.expiry + tol && !rec.atDefault) {
            // Latch expired while unpowered: the switch must have
            // reverted to its default.
            if (!sw->atDefault())
                violate("latch-reversion",
                        fmt("bank %d switch held past latch expiry "
                            "%.6g (repowered %.6g)",
                            rec.bankIdx, rec.expiry, boot_start));
        }
    }
}

void
CrashAuditor::violate(const std::string &rule, std::string detail)
{
    found.push_back(
        Violation{rule, std::move(detail), dev.simulator().now()});
}

std::string
CrashAuditor::report() const
{
    std::string out;
    for (const Violation &v : found) {
        out += fmt("[t=%.9g] %s: ", v.when, v.rule.c_str());
        out += v.detail;
        out += '\n';
    }
    return out;
}

} // namespace capy::rt
