/**
 * @file
 * Closed-form transient solver for capacitor energy under piecewise-
 * constant conditions.
 *
 * Between simulation events a storage node sees a constant net power
 * P (harvest in minus load out) and a parallel leakage resistance R
 * across total capacitance C. Stored energy then obeys
 *
 *     dE/dt = P - V^2/R = P - 2E/(R C)
 *
 * a linear ODE with solution E(t) = Einf + (E0 - Einf) e^{-t/tau},
 * tau = R C / 2, Einf = P R C / 2. Both the trajectory and crossing
 * times for energy targets are available in closed form, which lets
 * the event-driven simulator jump directly to charge-complete and
 * brown-out instants without numeric integration.
 */

#ifndef CAPY_POWER_SOLVER_HH
#define CAPY_POWER_SOLVER_HH

#include <array>
#include <bit>
#include <cstdint>
#include <limits>

namespace capy::power
{

/** Positive infinity, used for "never" crossing times. */
inline constexpr double kNever = std::numeric_limits<double>::infinity();

/**
 * Constant-condition phase for the storage node.
 */
struct Phase
{
    double power = 0.0;        ///< net power into the node, W (can be <0)
    double capacitance = 0.0;  ///< total node capacitance, F
    /** Parallel leakage resistance, ohm; infinity = lossless. */
    double leakRes = std::numeric_limits<double>::infinity();
};

/**
 * Small direct-mapped memo for exp(-dt / tau).
 *
 * The power-system hot path evaluates the same exponential repeatedly
 * for unchanged (dt, tau) pairs: a predictive query walks the phase
 * sequence, and the advanceTo() that follows re-walks the identical
 * segments; back-to-back queries between advances repeat them again.
 * Entries are keyed on the exact (dt, tau) bit patterns and store the
 * exp value computed the normal way, so a hit returns bit-identical
 * results — the memo can change nothing observable.
 */
class ExpCache
{
  public:
    /** exp(-dt / tau), memoized on the exact (dt, tau) pair. */
    double
    expNegRatio(double dt, double tau)
    {
        Entry &e = entries[slotFor(dt, tau)];
        if (e.dt == dt && e.tau == tau) {
            ++hitCount;
            return e.value;
        }
        ++missCount;
        e.dt = dt;
        e.tau = tau;
        e.value = uncachedExp(dt, tau);
        return e.value;
    }

    std::uint64_t hits() const { return hitCount; }
    std::uint64_t misses() const { return missCount; }

  private:
    struct Entry
    {
        double dt = -1.0;  ///< never matches: callers pass dt >= 0
        double tau = -1.0;
        double value = 0.0;
    };

    static std::size_t
    slotFor(double dt, double tau)
    {
        std::uint64_t h = std::bit_cast<std::uint64_t>(dt) ^
                          (std::bit_cast<std::uint64_t>(tau) >> 1);
        return std::size_t((h ^ (h >> 17)) & (kSlots - 1));
    }

    static double uncachedExp(double dt, double tau);

    static constexpr std::size_t kSlots = 4;
    std::array<Entry, kSlots> entries{};
    std::uint64_t hitCount = 0;
    std::uint64_t missCount = 0;
};

/**
 * Energy after @p dt seconds starting from @p e0 joules under @p ph.
 * Clamped at zero (a capacitor cannot hold negative energy; once
 * empty, negative net power has nothing left to remove).
 *
 * @param memo optional exp memo for hot paths that revisit identical
 *        (dt, tau) pairs; results are identical with or without it.
 */
double advanceEnergy(double e0, const Phase &ph, double dt,
                     ExpCache *memo = nullptr);

/**
 * Time for stored energy to reach @p target joules from @p e0 under
 * @p ph.
 *
 * @return 0 when already at the target (within one part in 1e12),
 *         kNever when the trajectory never reaches it, otherwise the
 *         positive crossing time in seconds.
 */
double timeToEnergy(double e0, double target, const Phase &ph);

/**
 * Asymptotic energy of the phase (P R C / 2); kNever for a lossless
 * phase with positive power.
 */
double steadyStateEnergy(const Phase &ph);

} // namespace capy::power

#endif // CAPY_POWER_SOLVER_HH
