/**
 * @file
 * Shared experiment driver: per-run metrics, schedule builders with
 * the paper's event counts/horizons (§6.2), and metric collection.
 */

#ifndef CAPY_APPS_EXPERIMENT_HH
#define CAPY_APPS_EXPERIMENT_HH

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "apps/boards.hh"
#include "apps/faults.hh"
#include "core/runtime.hh"
#include "dev/radio.hh"
#include "env/events.hh"
#include "env/scoring.hh"
#include "rt/kernel.hh"
#include "sim/runner.hh"

namespace capy::apps
{

/** Everything one application run produces. */
struct RunMetrics
{
    core::Policy policy = core::Policy::Fixed;
    env::Scoreboard::Summary summary;
    /** Inter-sample intervals (Fig. 11). */
    std::vector<env::Scoreboard::Interval> intervals;
    dev::Device::Stats device;
    rt::Kernel::Stats kernel;
    core::Runtime::Stats runtime;
    std::uint64_t packetsSent = 0;
    std::uint64_t packetsLost = 0;
    std::uint64_t samples = 0;
    /** Charging-interval statistics over the run. */
    std::size_t chargeSpans = 0;
    double chargeSpanMean = 0.0;
    double chargeSpanMax = 0.0;
    /** Full charge-discharge cycles per bank (wear levelling, §5.2). */
    std::vector<std::pair<std::string, std::uint64_t>> bankCycles;
    /** Per-task energy attribution (§3 measurement methodology). */
    std::map<std::string, rt::Kernel::TaskEnergyUse> taskEnergy;
    /** Simulator events executed over the run. */
    std::uint64_t simEvents = 0;
    /** Injection/audit outcome (all-zero for unfaulted runs). */
    FaultReport faults;
};

/** TA evaluation horizon: 50 events over 120 minutes (§6.2). */
inline constexpr double kTaHorizon = 120.0 * 60.0;
inline constexpr std::size_t kTaEvents = 50;

/** GRC/CSR horizon: 80 events over 42 minutes (§6.2). */
inline constexpr double kGrcHorizon = 42.0 * 60.0;
inline constexpr std::size_t kGrcEvents = 80;

/**
 * The paper's TA event sequence (50 Poisson events / 120 min).
 *
 * Pure function of @p seed (a private generator per call), so sweep
 * jobs draw their own schedule on the worker thread instead of the
 * caller pre-generating and sharing one — same bytes at any
 * CAPY_JOBS.
 */
env::EventSchedule taSchedule(std::uint64_t seed);

/** The paper's GRC/CSR event sequence (80 Poisson events / 42 min);
 *  pure function of @p seed, like taSchedule(). */
env::EventSchedule grcSchedule(std::uint64_t seed);

/**
 * Fill the bookkeeping shared by all runs (device/kernel/runtime
 * stats, radio counters, scoreboard summary, charge spans).
 */
void collectMetrics(RunMetrics &out, const env::Scoreboard &sb,
                    const dev::Device &device,
                    const rt::Kernel &kernel,
                    const core::Runtime &runtime,
                    const dev::Radio &radio);

/** Look up a bank's recorded cycles in @p m; 0 when absent. */
std::uint64_t bankCyclesFor(const RunMetrics &m,
                            const std::string &bank_name);

/** A deferred application run producing its metrics. */
using MetricsJob = std::function<RunMetrics()>;

/**
 * Run independent application sweeps in parallel on the shared sweep
 * pool (sized by CAPY_JOBS / hardware concurrency) and return the
 * results in submission order, so tables built from them are
 * byte-identical at any thread count. Jobs must be independent: each
 * builds its own Simulator/Device/Kernel stack internally, and
 * schedule generation belongs inside the job (seeded, e.g.
 * taSchedule()/poissonCountSeeded()) so it parallelizes with the run
 * instead of serializing on the caller thread.
 */
std::vector<RunMetrics> runMetricsBatch(
    const std::vector<MetricsJob> &jobs);

/** The process-wide sweep pool used by runMetricsBatch(). */
sim::BatchRunner &sweepPool();

} // namespace capy::apps

#endif // CAPY_APPS_EXPERIMENT_HH
