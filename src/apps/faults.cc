#include "apps/faults.hh"

#include <memory>
#include <utility>

#include "dev/mcu.hh"
#include "power/parts.hh"
#include "rt/checkpoint.hh"
#include "rt/kernel.hh"
#include "sim/logging.hh"

namespace capy::apps
{

FaultHarness::FaultHarness(dev::Device &device, const FaultSpec &spec,
                           dev::NvMemory *nv)
{
    if (spec.breakRecovery) {
        capy_assert(nv != nullptr,
                    "breakRecovery needs the NV device");
        nv->disableRecoveryForTest(true);
    }
    if (spec.audit) {
        aud.emplace(device);
        if (spec.watchLatches)
            aud->watchLatches();
    }
    if (!spec.plan.empty()) {
        injector.emplace(device.simulator(), spec.plan,
                         [&device, kind = spec.kind] {
                             return device.injectPowerFailure(kind);
                         });
    }
}

void
FaultHarness::watchKernel(const rt::Kernel &kernel)
{
    if (aud)
        aud->watchKernel(kernel);
}

void
FaultHarness::watchCheckpoint(const rt::CheckpointKernel &kernel)
{
    if (aud)
        aud->watchCheckpoint(kernel);
}

FaultReport
FaultHarness::finish()
{
    FaultReport rep;
    if (injector) {
        rep.attempts = injector->attempts();
        rep.fired = injector->fired();
    }
    if (aud) {
        // End-state pass: the device may have halted mid-charge with
        // no further rail transitions to audit at.
        aud->checkNow();
        rep.outagesAudited = aud->outagesAudited();
        rep.checksRun = aud->checksRun();
        rep.violations = aud->violations().size();
        rep.violationText = aud->report();
        rep.activeSpans = aud->activeSpans();
    }
    return rep;
}

CheckpointCrashMetrics
runCheckpointCrashWorkload(const FaultSpec *faults, double total_work,
                           double horizon)
{
    sim::Simulator simulator;
    power::PowerSystem::Spec spec;
    // 3 mW in against a 22 mW active draw: the run must charge, burn
    // a slice, checkpoint, and hibernate repeatedly, so failure
    // points cross every phase of the charge-then-execute cycle.
    auto ps = std::make_unique<power::PowerSystem>(
        spec, std::make_unique<power::RegulatedSupply>(3e-3, 3.3));
    ps->addBank("b", power::parts::edlc7_5mF());
    dev::Device device(simulator, std::move(ps), dev::msp430fr5969(),
                       dev::Device::PowerMode::Intermittent);
    dev::NvMemory fram("fram");

    // Slow (multi-word, tearable) NVM image writes: a wide
    // checkpoint window is what gives mid-commit failure points
    // something to tear.
    rt::CheckpointKernel::Spec kspec;
    kspec.checkpointTime = 25e-3;
    kspec.restoreTime = 10e-3;

    bool complete = false;
    rt::CheckpointKernel kernel(device, kspec, total_work, 0.0,
                                [&] { complete = true; }, &fram);

    std::optional<FaultHarness> harness;
    if (faults) {
        harness.emplace(device, *faults, &fram);
        harness->watchCheckpoint(kernel);
    }

    kernel.start();
    simulator.runUntil(horizon);

    CheckpointCrashMetrics out;
    out.finished = complete;
    out.progress = kernel.progressCell().peek();
    out.kernel = kernel.stats();
    out.device = device.stats();
    out.tornCommits = fram.tornCommits();
    out.tornRecoveries = fram.tornRecoveries();
    out.simEvents = simulator.eventsExecuted();
    if (harness)
        out.faults = harness->finish();
    return out;
}

} // namespace capy::apps
