#include "dev/peripheral.hh"

#include <algorithm>

#include "power/units.hh"
#include "sim/logging.hh"

namespace capy::dev
{

using namespace capy::literals;

namespace periph
{

PeripheralSpec
apds9960Gesture()
{
    return PeripheralSpec{
        .name = "APDS-9960-gesture",
        .activePower = 2.2_mW,
        .warmupTime = 10_ms,
        .minActiveTime = 250_ms,
    };
}

PeripheralSpec
apds9960Proximity()
{
    return PeripheralSpec{
        .name = "APDS-9960-proximity",
        .activePower = 1.0_mW,
        .warmupTime = 5_ms,
        .minActiveTime = 5_ms,
    };
}

PeripheralSpec
phototransistor()
{
    return PeripheralSpec{
        .name = "phototransistor",
        .activePower = 120.0_uW,
        .warmupTime = 1_ms,
        .minActiveTime = 1_ms,
    };
}

PeripheralSpec
tmp36()
{
    return PeripheralSpec{
        .name = "TMP36",
        .activePower = 180.0_uW,
        .warmupTime = 2_ms,
        .minActiveTime = 2_ms,
    };
}

PeripheralSpec
magnetometer()
{
    return PeripheralSpec{
        .name = "magnetometer",
        .activePower = 900.0_uW,
        .warmupTime = 5_ms,
        .minActiveTime = 3_ms,
    };
}

PeripheralSpec
led()
{
    return PeripheralSpec{
        .name = "LED",
        .activePower = 5_mW,
        .warmupTime = 0.0,
        .minActiveTime = 250_ms,
    };
}

PeripheralSpec
accelerometer()
{
    return PeripheralSpec{
        .name = "accelerometer",
        .activePower = 700.0_uW,
        .warmupTime = 4_ms,
        .minActiveTime = 2_ms,
    };
}

PeripheralSpec
gyroscope()
{
    return PeripheralSpec{
        .name = "gyroscope",
        .activePower = 4.5_mW,
        .warmupTime = 50_ms,
        .minActiveTime = 10_ms,
    };
}

} // namespace periph

double
totalActivePower(const std::vector<PeripheralSpec> &specs)
{
    double total = 0.0;
    for (const auto &s : specs)
        total += s.activePower;
    return total;
}

double
maxWarmup(const std::vector<PeripheralSpec> &specs)
{
    double warmup = 0.0;
    for (const auto &s : specs)
        warmup = std::max(warmup, s.warmupTime);
    return warmup;
}

Sensor::Sensor(PeripheralSpec sensor_spec, Source source_fn)
    : sensorSpec(std::move(sensor_spec)), source(std::move(source_fn))
{
    capy_assert(source != nullptr, "sensor '%s' has no signal source",
                sensorSpec.name.c_str());
}

double
Sensor::read(sim::Time t)
{
    ++numSamples;
    return source(t);
}

} // namespace capy::dev
