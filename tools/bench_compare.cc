/**
 * @file
 * BENCH_SIM.json comparator: gates the repo's performance trajectory.
 *
 * Reads two baselines (schema `capy-bench-sim-v1` or `-v2`, written
 * by bench_engine and augmented by bench_power) and exits non-zero
 * when the candidate regresses the baseline by more than the
 * threshold (default 10%) on any headline metric:
 *
 *  - event_queue.events_per_sec        (lower is a regression),
 *  - sweep.parallel_wall_s             (higher is a regression),
 *  - power.advance_steps_per_sec       (v2; lower is a regression),
 *  - power.query_bundles_per_sec      (v2; lower is a regression).
 *
 * The power metrics are gated only when both files carry them, so a
 * v2 candidate still compares cleanly against a v1 baseline.
 *
 * Usage:
 *   bench_compare [--threshold FRACTION] BASELINE.json CANDIDATE.json
 *   bench_compare --self-test
 *
 * The parser is deliberately minimal: it scans for the `"key": value`
 * pairs the fixed schema emits, so the tool has no dependencies and
 * builds everywhere. Exit codes: 0 = within threshold, 1 = regression
 * (or self-test failure), 2 = usage/parse error.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

namespace
{

/** Find `"key"` and parse the number after the following colon.
 *  @retval NAN when the key is absent or malformed. */
double
findNumber(const std::string &text, const std::string &key)
{
    std::string needle = "\"" + key + "\"";
    std::size_t at = text.find(needle);
    if (at == std::string::npos)
        return NAN;
    at = text.find(':', at + needle.size());
    if (at == std::string::npos)
        return NAN;
    const char *start = text.c_str() + at + 1;
    char *end = nullptr;
    double v = std::strtod(start, &end);
    return end == start ? NAN : v;
}

struct Baseline
{
    double eventsPerSec = NAN;
    double sweepWall = NAN;
    // v2 power section; NAN when absent (v1 files).
    double advanceStepsPerSec = NAN;
    double queryBundlesPerSec = NAN;
};

bool
loadBaseline(const char *path, Baseline &out)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bench_compare: cannot read %s\n", path);
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();
    if (text.find("\"capy-bench-sim-v1\"") == std::string::npos &&
        text.find("\"capy-bench-sim-v2\"") == std::string::npos) {
        std::fprintf(stderr,
                     "bench_compare: %s is not a capy-bench-sim-v1/v2 "
                     "baseline\n",
                     path);
        return false;
    }
    out.eventsPerSec = findNumber(text, "events_per_sec");
    out.sweepWall = findNumber(text, "parallel_wall_s");
    out.advanceStepsPerSec = findNumber(text, "advance_steps_per_sec");
    out.queryBundlesPerSec = findNumber(text, "query_bundles_per_sec");
    if (std::isnan(out.eventsPerSec) || std::isnan(out.sweepWall) ||
        out.eventsPerSec <= 0.0 || out.sweepWall <= 0.0) {
        std::fprintf(stderr,
                     "bench_compare: %s is missing events_per_sec / "
                     "parallel_wall_s\n",
                     path);
        return false;
    }
    return true;
}

/** One metric line; @p higher_is_better flips the regression sense.
 *  @retval true when the candidate is within the threshold. */
bool
judge(const char *metric, double base, double cand, double threshold,
      bool higher_is_better)
{
    double change = cand / base - 1.0;  // signed, relative to base
    double regression = higher_is_better ? -change : change;
    bool ok = regression <= threshold;
    std::printf("bench_compare: %-28s base %-12.6g cand %-12.6g "
                "%+6.1f%%  %s\n",
                metric, base, cand, change * 100.0,
                ok ? "OK" : "REGRESSION");
    return ok;
}

/** @return the process exit code for comparing @p base vs @p cand. */
int
compareBaselines(const Baseline &base, const Baseline &cand,
                 double threshold)
{
    bool ok = true;
    ok &= judge("event_queue.events_per_sec", base.eventsPerSec,
                cand.eventsPerSec, threshold, true);
    ok &= judge("sweep.parallel_wall_s", base.sweepWall,
                cand.sweepWall, threshold, false);
    // Power metrics are optional (v1 files lack them): gate only when
    // both sides measured them.
    if (!std::isnan(base.advanceStepsPerSec) &&
        !std::isnan(cand.advanceStepsPerSec)) {
        ok &= judge("power.advance_steps_per_sec",
                    base.advanceStepsPerSec, cand.advanceStepsPerSec,
                    threshold, true);
    }
    if (!std::isnan(base.queryBundlesPerSec) &&
        !std::isnan(cand.queryBundlesPerSec)) {
        ok &= judge("power.query_bundles_per_sec",
                    base.queryBundlesPerSec, cand.queryBundlesPerSec,
                    threshold, true);
    }
    if (!ok) {
        std::printf("bench_compare: FAIL (threshold %.0f%%)\n",
                    threshold * 100.0);
        return 1;
    }
    std::printf("bench_compare: PASS (threshold %.0f%%)\n",
                threshold * 100.0);
    return 0;
}

int
compareFiles(const char *base_path, const char *cand_path,
             double threshold)
{
    Baseline base, cand;
    if (!loadBaseline(base_path, base) ||
        !loadBaseline(cand_path, cand))
        return 2;
    return compareBaselines(base, cand, threshold);
}

/** Render a minimal but schema-valid baseline for the self-test.
 *  @p query_bundles_per_sec <= 0 renders a v1 file with no power
 *  section. */
std::string
syntheticJson(double events_per_sec, double parallel_wall_s,
              double query_bundles_per_sec = 0.0)
{
    char buf[512];
    if (query_bundles_per_sec <= 0.0) {
        std::snprintf(
            buf, sizeof buf,
            "{\n  \"schema\": \"capy-bench-sim-v1\",\n"
            "  \"event_queue\": { \"events_per_sec\": %.6g },\n"
            "  \"sweep\": { \"parallel_wall_s\": %.6g }\n}\n",
            events_per_sec, parallel_wall_s);
    } else {
        std::snprintf(
            buf, sizeof buf,
            "{\n  \"schema\": \"capy-bench-sim-v2\",\n"
            "  \"event_queue\": { \"events_per_sec\": %.6g },\n"
            "  \"sweep\": { \"parallel_wall_s\": %.6g },\n"
            "  \"power\": {\n"
            "    \"advance_steps_per_sec\": 5e6,\n"
            "    \"query_bundles_per_sec\": %.6g\n  }\n}\n",
            events_per_sec, parallel_wall_s, query_bundles_per_sec);
    }
    return buf;
}

bool
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path);
    out << text;
    return bool(out);
}

/**
 * End-to-end self-check through the same file + compare code path
 * main() uses: identical baselines pass, >10% synthetic regressions
 * on either axis fail, sub-threshold drift passes, and improvements
 * never trip the gate.
 */
int
selfTest()
{
    struct Case
    {
        const char *name;
        double baseQueries;  ///< base power metric; 0 = v1 file
        double events, wall; ///< candidate, vs base 1e7 / 0.1 s
        double queries;      ///< candidate power metric; 0 = v1 file
        int expected;
    };
    const Case cases[] = {
        {"identical", 0.0, 1e7, 0.1, 0.0, 0},
        {"events 20% slower", 0.0, 0.8e7, 0.1, 0.0, 1},
        {"sweep 20% slower", 0.0, 1e7, 0.12, 0.0, 1},
        {"events 5% slower (within 10%)", 0.0, 0.95e7, 0.1, 0.0, 0},
        {"both 30% faster", 0.0, 1.3e7, 0.07, 0.0, 0},
        {"v2 identical", 1e5, 1e7, 0.1, 1e5, 0},
        {"v2 queries 20% slower", 1e5, 1e7, 0.1, 0.8e5, 1},
        {"v2 queries 2x faster", 1e5, 1e7, 0.1, 2e5, 0},
        {"v1 base vs v2 candidate", 0.0, 1e7, 0.1, 1e5, 0},
        {"v2 base vs v1 candidate", 1e5, 1e7, 0.1, 0.0, 0},
    };
    const std::string base_path = "bench_compare_selftest_base.json";
    const std::string cand_path = "bench_compare_selftest_cand.json";
    int failures = 0;
    for (const Case &c : cases) {
        std::printf("self-test case: %s\n", c.name);
        if (!writeFile(base_path,
                       syntheticJson(1e7, 0.1, c.baseQueries)) ||
            !writeFile(cand_path,
                       syntheticJson(c.events, c.wall, c.queries)))
            return 2;
        int rc = compareFiles(base_path.c_str(), cand_path.c_str(),
                              0.10);
        if (rc != c.expected) {
            std::printf("self-test FAIL: %s: exit %d, expected %d\n",
                        c.name, rc, c.expected);
            ++failures;
        }
    }
    // Unreadable / non-schema input must be a hard error, not a pass.
    if (compareFiles("bench_compare_selftest_missing.json",
                     cand_path.c_str(), 0.10) != 2) {
        std::printf("self-test FAIL: missing file not rejected\n");
        ++failures;
    }
    std::remove(base_path.c_str());
    std::remove(cand_path.c_str());
    std::printf("self-test: %s\n", failures ? "FAIL" : "PASS");
    return failures ? 1 : 0;
}

void
usage()
{
    std::fprintf(stderr,
                 "usage: bench_compare [--threshold FRACTION] "
                 "BASELINE.json CANDIDATE.json\n"
                 "       bench_compare --self-test\n");
}

} // namespace

int
main(int argc, char **argv)
{
    double threshold = 0.10;
    int arg = 1;
    if (arg < argc && std::strcmp(argv[arg], "--self-test") == 0)
        return selfTest();
    if (arg < argc && std::strcmp(argv[arg], "--threshold") == 0) {
        if (arg + 1 >= argc) {
            usage();
            return 2;
        }
        char *end = nullptr;
        threshold = std::strtod(argv[arg + 1], &end);
        if (end == argv[arg + 1] || threshold < 0.0) {
            std::fprintf(stderr,
                         "bench_compare: bad threshold '%s'\n",
                         argv[arg + 1]);
            return 2;
        }
        arg += 2;
    }
    if (argc - arg != 2) {
        usage();
        return 2;
    }
    return compareFiles(argv[arg], argv[arg + 1], threshold);
}
