/**
 * @file
 * Property tests for the closed-form transient solver: agreement with
 * fine-step RK4 integration across a parameter sweep, crossing-time
 * correctness, monotonicity, and clamping behaviour.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "power/solver.hh"
#include "power/units.hh"

using namespace capy;
using namespace capy::power;

namespace
{

/** Reference RK4 integration of dE/dt = P - 2E/(RC), clamped at 0. */
double
rk4Advance(double e0, const Phase &ph, double dt, int steps = 20000)
{
    auto f = [&](double e) {
        double leak = std::isinf(ph.leakRes)
                          ? 0.0
                          : 2.0 * e / (ph.leakRes * ph.capacitance);
        return ph.power - leak;
    };
    double h = dt / steps;
    double e = e0;
    for (int i = 0; i < steps; ++i) {
        double k1 = f(e);
        double k2 = f(e + 0.5 * h * k1);
        double k3 = f(e + 0.5 * h * k2);
        double k4 = f(e + h * k3);
        e += h / 6.0 * (k1 + 2 * k2 + 2 * k3 + k4);
        if (e < 0.0)
            e = 0.0;
    }
    return e;
}

} // namespace

TEST(Solver, LosslessChargeIsLinear)
{
    Phase ph{1e-3, 1e-3, kNever};
    EXPECT_DOUBLE_EQ(advanceEnergy(0.0, ph, 10.0), 0.01);
    EXPECT_DOUBLE_EQ(advanceEnergy(5.0, ph, 10.0), 5.01);
}

TEST(Solver, LosslessDischargeClampsAtZero)
{
    Phase ph{-1e-3, 1e-3, kNever};
    EXPECT_DOUBLE_EQ(advanceEnergy(0.005, ph, 10.0), 0.0);
    EXPECT_DOUBLE_EQ(advanceEnergy(0.02, ph, 10.0), 0.01);
}

TEST(Solver, ZeroDtIsIdentity)
{
    Phase ph{5e-3, 1e-3, 1e6};
    EXPECT_DOUBLE_EQ(advanceEnergy(0.123, ph, 0.0), 0.123);
}

TEST(Solver, LeakOnlyDecaysExponentially)
{
    // E(t) = E0 exp(-2t/(RC)); RC = 1e6 * 1e-6 = 1, tau = 0.5.
    Phase ph{0.0, 1e-6, 1e6};
    double e = advanceEnergy(1.0, ph, 0.5);
    EXPECT_NEAR(e, std::exp(-1.0), 1e-12);
}

TEST(Solver, SteadyStateEnergyFormula)
{
    Phase ph{2e-3, 1e-3, 1e5};
    // Einf = P R C / 2 = 2e-3 * 1e5 * 1e-3 / 2 = 0.1 J.
    EXPECT_DOUBLE_EQ(steadyStateEnergy(ph), 0.1);
    Phase lossless{1e-3, 1e-3, kNever};
    EXPECT_TRUE(std::isinf(steadyStateEnergy(lossless)));
    Phase drain{-1e-3, 1e-3, kNever};
    EXPECT_DOUBLE_EQ(steadyStateEnergy(drain), 0.0);
}

TEST(Solver, TimeToEnergyRoundTripsAdvance)
{
    Phase ph{3e-3, 2.2e-3, 5e5};
    double e0 = 0.001;
    double target = 0.02;
    double t = timeToEnergy(e0, target, ph);
    ASSERT_TRUE(std::isfinite(t));
    EXPECT_NEAR(advanceEnergy(e0, ph, t), target, target * 1e-9);
}

TEST(Solver, TimeToEnergyUnreachableTargets)
{
    // Steady state at 0.1 J; a 0.2 J target is unreachable.
    Phase ph{2e-3, 1e-3, 1e5};
    EXPECT_TRUE(std::isinf(timeToEnergy(0.0, 0.2, ph)));
    // Target behind a rising trajectory is unreachable.
    EXPECT_TRUE(std::isinf(timeToEnergy(0.05, 0.01, ph)));
    // Discharging: target above start unreachable.
    Phase drain{-1e-3, 1e-3, kNever};
    EXPECT_TRUE(std::isinf(timeToEnergy(0.01, 0.02, drain)));
}

TEST(Solver, TimeToEnergyAtTargetIsZero)
{
    Phase ph{1e-3, 1e-3, 1e6};
    EXPECT_DOUBLE_EQ(timeToEnergy(0.5, 0.5, ph), 0.0);
}

TEST(Solver, DischargeToZeroCrossing)
{
    Phase ph{-2e-3, 1e-3, kNever};
    double t = timeToEnergy(0.01, 0.0, ph);
    EXPECT_NEAR(t, 5.0, 1e-12);
}

TEST(Solver, DischargeWithLeakReachesZeroSooner)
{
    Phase lossless{-2e-3, 1e-3, kNever};
    Phase leaky{-2e-3, 1e-3, 1e4};
    double t_ideal = timeToEnergy(0.01, 0.001, lossless);
    double t_leaky = timeToEnergy(0.01, 0.001, leaky);
    ASSERT_TRUE(std::isfinite(t_leaky));
    EXPECT_LT(t_leaky, t_ideal);
}

/** Sweep: closed form must agree with RK4 across the parameter grid. */
class SolverSweep
    : public ::testing::TestWithParam<std::tuple<double, double, double>>
{};

TEST_P(SolverSweep, MatchesRk4)
{
    auto [power, cap, leak] = GetParam();
    Phase ph{power, cap, leak};
    double e0 = 0.5 * cap * 2.0 * 2.0;  // start at 2 V
    double dt = 5.0;
    double closed = advanceEnergy(e0, ph, dt);
    double numeric = rk4Advance(e0, ph, dt);
    double scale = std::max({closed, numeric, 1e-9});
    EXPECT_NEAR(closed, numeric, scale * 1e-5)
        << "P=" << power << " C=" << cap << " R=" << leak;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SolverSweep,
    ::testing::Combine(
        ::testing::Values(-10e-3, -1e-3, 0.0, 1e-3, 10e-3),
        ::testing::Values(100e-6, 1e-3, 10e-3, 67.5e-3),
        ::testing::Values(1e4, 1e6, kNever)));

/** Crossing times found by the solver agree with bisection on RK4. */
class CrossingSweep
    : public ::testing::TestWithParam<std::tuple<double, double>>
{};

TEST_P(CrossingSweep, CrossingConsistentWithTrajectory)
{
    auto [power, leak] = GetParam();
    Phase ph{power, 4.7e-3, leak};
    double e0 = 0.01;
    double einf = steadyStateEnergy(ph);
    // Pick a target guaranteed between e0 and the asymptote.
    double target;
    if (std::isinf(einf)) {
        target = power > 0 ? e0 * 2.0 : e0 * 0.5;
    } else if (einf > e0) {
        target = e0 + 0.5 * (einf - e0);
    } else {
        target = einf + 0.5 * (e0 - einf);
    }
    if (power == 0.0 && std::isinf(leak))
        return;  // static trajectory, nothing to cross
    double t = timeToEnergy(e0, target, ph);
    ASSERT_TRUE(std::isfinite(t)) << "target " << target;
    double e_at = advanceEnergy(e0, ph, t);
    EXPECT_NEAR(e_at, target, std::abs(target) * 1e-9 + 1e-15);
    // Before the crossing the trajectory must not have reached it.
    double e_before = advanceEnergy(e0, ph, t * 0.5);
    if (target > e0)
        EXPECT_LT(e_before, target);
    else
        EXPECT_GT(e_before, target);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CrossingSweep,
    ::testing::Combine(::testing::Values(-5e-3, -1e-4, 1e-4, 5e-3),
                       ::testing::Values(1e4, 5e5, kNever)));

TEST(Solver, TargetAboveSteadyStateWithLeakIsNever)
{
    // Einf = P R C / 2 = 0.1 J; from below, anything at or above the
    // asymptote is unreachable — including the asymptote itself,
    // which is only approached asymptotically.
    Phase ph{2e-3, 1e-3, 1e5};
    ASSERT_DOUBLE_EQ(steadyStateEnergy(ph), 0.1);
    EXPECT_TRUE(std::isinf(timeToEnergy(0.02, 0.15, ph)));
    EXPECT_TRUE(std::isinf(timeToEnergy(0.02, 0.1, ph)));
    // Just below the asymptote is reachable, and consistent.
    double t = timeToEnergy(0.02, 0.0999, ph);
    ASSERT_TRUE(std::isfinite(t));
    EXPECT_NEAR(advanceEnergy(0.02, ph, t), 0.0999, 1e-12);
}

TEST(Solver, StartingAtSteadyStateNeverMoves)
{
    Phase ph{2e-3, 1e-3, 1e5};
    double einf = steadyStateEnergy(ph);
    EXPECT_TRUE(std::isinf(timeToEnergy(einf, 0.05, ph)));
    EXPECT_TRUE(std::isinf(timeToEnergy(einf, 0.15, ph)));
    EXPECT_NEAR(advanceEnergy(einf, ph, 100.0), einf, einf * 1e-12);
}

TEST(Solver, LosslessDrainReachesZeroExactly)
{
    // dE/dt = -P: crossing time is e0/|P|, after which the energy
    // clamps at zero and stays there.
    Phase drain{-4e-3, 1e-3, kNever};
    double t = timeToEnergy(0.02, 0.0, drain);
    EXPECT_DOUBLE_EQ(t, 5.0);
    EXPECT_DOUBLE_EQ(advanceEnergy(0.02, drain, t), 0.0);
    EXPECT_DOUBLE_EQ(advanceEnergy(0.02, drain, 2.0 * t), 0.0);
    EXPECT_DOUBLE_EQ(advanceEnergy(0.0, drain, 1.0), 0.0);
}

TEST(Solver, LeakyDischargeCrossesZeroAndClamps)
{
    // With P < 0 and finite leak the asymptote is below zero, so the
    // trajectory crosses E = 0 in finite time and clamps there.
    Phase ph{-1e-3, 1e-3, 1e5};
    double t = timeToEnergy(0.01, 0.0, ph);
    ASSERT_TRUE(std::isfinite(t));
    EXPECT_NEAR(advanceEnergy(0.01, ph, t), 0.0, 1e-12);
    EXPECT_DOUBLE_EQ(advanceEnergy(0.01, ph, t * 2.0), 0.0);
}

TEST(Solver, ZeroPowerTrajectories)
{
    // Lossless with no power: static forever.
    Phase idle{0.0, 1e-3, kNever};
    EXPECT_TRUE(std::isinf(timeToEnergy(0.01, 0.02, idle)));
    EXPECT_TRUE(std::isinf(timeToEnergy(0.01, 0.005, idle)));
    EXPECT_DOUBLE_EQ(advanceEnergy(0.01, idle, 1e6), 0.01);
    // Leak only: decays toward zero, upward targets unreachable.
    Phase leak{0.0, 1e-3, 1e5};
    EXPECT_TRUE(std::isinf(timeToEnergy(0.01, 0.02, leak)));
    double t = timeToEnergy(0.01, 0.005, leak);
    ASSERT_TRUE(std::isfinite(t));
    EXPECT_NEAR(advanceEnergy(0.01, leak, t), 0.005, 1e-15);
}

TEST(Solver, TargetWithinToleranceOfStartIsImmediate)
{
    Phase ph{1e-3, 1e-3, 1e5};
    EXPECT_DOUBLE_EQ(timeToEnergy(1.0, 1.0 + 1e-13, ph), 0.0);
    EXPECT_DOUBLE_EQ(timeToEnergy(1.0, 1.0 - 1e-13, ph), 0.0);
    EXPECT_DOUBLE_EQ(timeToEnergy(0.0, 0.0, ph), 0.0);
}

TEST(Solver, MonotoneInTime)
{
    Phase ph{1e-3, 1e-3, 1e5};
    double prev = 0.0;
    for (int i = 1; i <= 100; ++i) {
        double e = advanceEnergy(0.0, ph, double(i));
        EXPECT_GE(e, prev);
        prev = e;
    }
}

TEST(Solver, SemigroupProperty)
{
    // advance(e, t1+t2) == advance(advance(e, t1), t2)
    Phase ph{2e-3, 3.3e-3, 2e5};
    double e0 = 0.004;
    double one_shot = advanceEnergy(e0, ph, 7.0);
    double two_step = advanceEnergy(advanceEnergy(e0, ph, 3.0), ph, 4.0);
    EXPECT_NEAR(one_shot, two_step, one_shot * 1e-12);
}
