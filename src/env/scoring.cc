#include "env/scoring.hh"

#include "sim/logging.hh"

namespace capy::env
{

const char *
outcomeName(Outcome outcome)
{
    switch (outcome) {
      case Outcome::Correct:
        return "correct";
      case Outcome::Misclassified:
        return "misclassified";
      case Outcome::ProximityOnly:
        return "proximity-only";
      case Outcome::Missed:
        return "missed";
    }
    capy_panic("unknown Outcome %d", static_cast<int>(outcome));
}

namespace
{

/** Quality rank for the monotone-upgrade rule. */
int
rank(Outcome o)
{
    switch (o) {
      case Outcome::Missed:
        return 0;
      case Outcome::ProximityOnly:
        return 1;
      case Outcome::Misclassified:
        return 2;
      case Outcome::Correct:
        return 3;
    }
    return -1;
}

} // namespace

Scoreboard::Scoreboard(const EventSchedule &schedule_ref)
    : schedule(schedule_ref),
      outcomes(schedule_ref.size(), Outcome::Missed),
      reportLatency(schedule_ref.size(), -1.0)
{}

bool
Scoreboard::validId(int event_id) const
{
    return event_id >= 0 &&
           event_id < static_cast<int>(outcomes.size());
}

void
Scoreboard::recordDetection(int event_id)
{
    if (!validId(event_id))
        return;
    auto &slot = outcomes[static_cast<std::size_t>(event_id)];
    if (rank(Outcome::ProximityOnly) > rank(slot))
        slot = Outcome::ProximityOnly;
}

void
Scoreboard::recordMisclassified(int event_id)
{
    if (!validId(event_id))
        return;
    auto &slot = outcomes[static_cast<std::size_t>(event_id)];
    if (rank(Outcome::Misclassified) > rank(slot))
        slot = Outcome::Misclassified;
}

void
Scoreboard::recordReport(int event_id, sim::Time t)
{
    if (!validId(event_id))
        return;
    auto idx = static_cast<std::size_t>(event_id);
    auto &slot = outcomes[idx];
    if (rank(Outcome::Correct) > rank(slot)) {
        slot = Outcome::Correct;
        reportLatency[idx] = t - schedule.at(idx).time;
    }
}

void
Scoreboard::recordSample(sim::Time t)
{
    capy_assert(sampleTimes.empty() || t >= sampleTimes.back(),
                "samples must be recorded in time order");
    sampleTimes.push_back(t);
}

Outcome
Scoreboard::outcome(int event_id) const
{
    capy_assert(validId(event_id), "bad event id %d", event_id);
    return outcomes[static_cast<std::size_t>(event_id)];
}

Scoreboard::Summary
Scoreboard::summarize() const
{
    Summary s;
    s.total = outcomes.size();
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        switch (outcomes[i]) {
          case Outcome::Correct:
            ++s.correct;
            s.latency.add(reportLatency[i]);
            break;
          case Outcome::Misclassified:
            ++s.misclassified;
            break;
          case Outcome::ProximityOnly:
            ++s.proximityOnly;
            break;
          case Outcome::Missed:
            ++s.missed;
            break;
        }
    }
    s.fracCorrect =
        s.total ? double(s.correct) / double(s.total) : 0.0;
    return s;
}

std::vector<Scoreboard::Interval>
Scoreboard::sampleIntervals(double back_to_back_threshold) const
{
    std::vector<Interval> out;
    for (std::size_t i = 1; i < sampleTimes.size(); ++i) {
        Interval iv;
        iv.length = sampleTimes[i] - sampleTimes[i - 1];
        iv.backToBack = iv.length < back_to_back_threshold;
        iv.containsMissed = false;
        for (int id :
             schedule.eventsBetween(sampleTimes[i - 1], sampleTimes[i])) {
            if (outcomes[static_cast<std::size_t>(id)] ==
                Outcome::Missed) {
                iv.containsMissed = true;
                break;
            }
        }
        out.push_back(iv);
    }
    return out;
}

} // namespace capy::env
