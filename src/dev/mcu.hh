/**
 * @file
 * Microcontroller power/performance model. The board-level "effective
 * compute power" and op rate are calibrated so that atomicity counts
 * (Mops per charge, Fig. 3/4) land in the paper's range; see
 * EXPERIMENTS.md for the calibration note.
 */

#ifndef CAPY_DEV_MCU_HH
#define CAPY_DEV_MCU_HH

#include <string>

namespace capy::dev
{

/** Static parameters of a microcontroller. */
struct McuSpec
{
    std::string name = "generic-mcu";
    /**
     * Rail power while computing, W. Board-level effective figure:
     * core + FRAM + always-on board overhead attributable to compute.
     */
    double activePower = 8.4e-3;
    /** Rail power in a memory-retaining sleep state, W. */
    double sleepPower = 150e-6;
    /** Time from rail-good to first instruction of the app, s. */
    double bootTime = 5e-3;
    /** Effective operations per second for atomicity accounting. */
    double opRate = 1e6;

    /** Energy per effective operation, J. */
    double energyPerOp() const { return activePower / opRate; }

    /** Time to execute @p ops operations, s. */
    double timeForOps(double ops) const { return ops / opRate; }
};

/** TI MSP430FR5969: the paper's compute MCU (FRAM, 16-bit). */
McuSpec msp430fr5969();

/** TI CC2650: the paper's wireless MCU (hosts the BLE radio). */
McuSpec cc2650();

} // namespace capy::dev

#endif // CAPY_DEV_MCU_HH
