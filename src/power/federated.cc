#include "power/federated.hh"

#include <algorithm>
#include <cmath>

#include "power/solver.hh"
#include "sim/logging.hh"

namespace capy::power
{

namespace
{

constexpr double kVTol = 1e-6;
/** Fullness tolerance: crossing-time landings sit within FP error of
 *  the target; treat anything within 0.1 mV as full. */
constexpr double kVFullTol = 1e-4;
constexpr double kTimeTol = 1e-12;

} // namespace

FederatedStorage::FederatedStorage(Spec spec_in,
                                   std::unique_ptr<Harvester> h)
    : spec(spec_in), harvester(std::move(h))
{
    capy_assert(harvester != nullptr, "federated storage needs a "
                                      "harvester");
}

int
FederatedStorage::addNode(const std::string &name,
                          const CapacitorSpec &cap)
{
    nodes.push_back(NodeState{CapacitorBank(name, cap), 0.0});
    peekEnergy.resize(nodes.size());
    return static_cast<int>(nodes.size()) - 1;
}

const CapacitorBank &
FederatedStorage::node(int idx) const
{
    capy_assert(idx >= 0 && idx < numNodes(), "node index %d", idx);
    return nodes[static_cast<std::size_t>(idx)].bank;
}

CapacitorBank &
FederatedStorage::nodeForTest(int idx)
{
    capy_assert(idx >= 0 && idx < numNodes(), "node index %d", idx);
    return nodes[static_cast<std::size_t>(idx)].bank;
}

void
FederatedStorage::setNodeLoad(int idx, double watts)
{
    capy_assert(idx >= 0 && idx < numNodes(), "node index %d", idx);
    capy_assert(watts >= 0.0, "negative load");
    advanceTo(lastTime);
    nodes[static_cast<std::size_t>(idx)].load = watts;
}

double
FederatedStorage::nodeVoltage(int idx) const
{
    return node(idx).voltage();
}

bool
FederatedStorage::nodeFull(int idx) const
{
    double top = std::min(spec.maxStorageVoltage,
                          node(idx).spec().ratedVoltage);
    return node(idx).voltage() >= top - kVFullTol;
}

bool
FederatedStorage::allFull() const
{
    for (int i = 0; i < numNodes(); ++i)
        if (!nodeFull(i))
            return false;
    return true;
}

int
FederatedStorage::chargingNode() const
{
    for (int i = 0; i < numNodes(); ++i)
        if (!nodeFull(i))
            return i;
    return -1;
}

double
FederatedStorage::nodeBrownoutVoltage(int idx) const
{
    const NodeState &ns = nodes[static_cast<std::size_t>(idx)];
    return brownoutVoltage(spec.output, ns.load, ns.bank.esr());
}

double
FederatedStorage::totalStoredEnergy() const
{
    double e = 0.0;
    for (const auto &ns : nodes)
        e += ns.bank.energy();
    return e;
}

double
FederatedStorage::nodePower(std::size_t idx, double v, sim::Time t,
                            bool charging_here) const
{
    const NodeState &ns = nodes[idx];
    double pd = ns.load > 0.0 ? storageDrawPower(spec.output, ns.load)
                              : 0.0;
    pd += spec.nodeQuiescentPower;
    double pc = 0.0;
    if (charging_here) {
        pc = inputChargePower(spec.input, harvester->power(t),
                              harvester->voltage(t), v);
    }
    return pc - pd;
}

double
FederatedStorage::stepOnce(sim::Time t, double dt)
{
    // Conditions are constant except for the charging node's voltage
    // phases; bound the step by the charging node's boundaries.
    int ci = chargingNode();
    double step = dt;

    if (ci >= 0) {
        const NodeState &cn = nodes[static_cast<std::size_t>(ci)];
        double v = cn.bank.voltage();
        double vtop = std::min(spec.maxStorageVoltage,
                               cn.bank.spec().ratedVoltage);
        double p = nodePower(std::size_t(ci), v, t, true);
        Phase ph{p, cn.bank.capacitance(),
                 cn.bank.spec().leakageResistance()};
        // Boundaries: full target plus the input-converter voltage
        // regions (cold start, bypass cutoff).
        double vh = harvester->voltage(t);
        double boundaries[3] = {vtop, spec.input.coldStartVoltage,
                                vh - spec.input.bypassDiodeDrop};
        for (double b : boundaries) {
            if (b <= v + kVTol || b > vtop)
                continue;
            double tb = timeToEnergy(cn.bank.energy(),
                                     cn.bank.energyAtVoltage(b), ph);
            if (std::isfinite(tb) && tb > kTimeTol)
                step = std::min(step, tb);
        }
    }

    // Advance every node by `step`.
    bool harvesting = harvester->power(t) > 0.0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        NodeState &ns = nodes[i];
        double v = ns.bank.voltage();
        double vtop = std::min(spec.maxStorageVoltage,
                               ns.bank.spec().ratedVoltage);
        double e_full = ns.bank.energyAtVoltage(vtop);
        if (harvesting && ns.load <= 0.0 && int(i) != ci &&
            v >= vtop - kVFullTol) {
            // Maintenance top-up: the cascade comparator reconnects
            // momentarily whenever a full node dips, covering its
            // leakage. Hold it at the top.
            ns.bank.setEnergy(e_full);
            continue;
        }
        double p = nodePower(i, v, t, int(i) == ci);
        Phase ph{p, ns.bank.capacitance(),
                 ns.bank.spec().leakageResistance()};
        double e = advanceEnergy(ns.bank.energy(), ph, step);
        if (e > e_full)
            e = e_full;  // keeper diode / regulator pins at the top
        ns.bank.setEnergy(e);
    }
    return step;
}

void
FederatedStorage::advanceTo(sim::Time t)
{
    capy_assert(t >= lastTime, "advanceTo(%g) behind clock %g", t,
                lastTime);
    int guard = 0;
    while (t - lastTime > kTimeTol) {
        capy_assert(++guard < 100000, "federated advance stalled");
        double dt = t - lastTime;
        sim::Time hb = harvester->nextChange(lastTime);
        if (std::isfinite(hb) && hb - lastTime < dt)
            dt = std::max(kTimeTol, hb - lastTime);
        double consumed = stepOnce(lastTime, dt);
        lastTime += consumed;
    }
    lastTime = t;
}

sim::Time
FederatedStorage::timeToNodeFull(int idx) const
{
    capy_assert(idx >= 0 && idx < numNodes(), "node index %d", idx);
    // Analytic phase-bounded peek over scalar scratch state. The live
    // nodes are untouched and nothing is allocated per call: the walk
    // mirrors stepOnce's phase machinery (same boundaries, same
    // advanceEnergy calls) but jumps straight from boundary to
    // boundary instead of stepping a fixed dt, and stops at the exact
    // instant the target node crosses its full threshold.
    const std::size_t n = nodes.size();
    const auto target = static_cast<std::size_t>(idx);
    for (std::size_t i = 0; i < n; ++i)
        peekEnergy[i] = nodes[i].bank.energy();

    auto vtopOf = [&](std::size_t i) {
        return std::min(spec.maxStorageVoltage,
                        nodes[i].bank.spec().ratedVoltage);
    };
    auto voltOf = [&](std::size_t i) {
        double c = nodes[i].bank.capacitance();
        return c > 0.0 ? std::sqrt(2.0 * peekEnergy[i] / c) : 0.0;
    };
    auto fullAt = [&](std::size_t i) {
        return voltOf(i) >= vtopOf(i) - kVFullTol;
    };

    sim::Time t = lastTime;
    sim::Time total = 0.0;
    for (int iter = 0; iter < 100000; ++iter) {
        if (fullAt(target))
            return total;
        if (total > 1e7)
            return kNever;

        // Cascade assignment for this micro-phase (the target is not
        // full, so some node always needs charge).
        int ci = -1;
        for (std::size_t i = 0; i < n; ++i) {
            if (!fullAt(i)) {
                ci = static_cast<int>(i);
                break;
            }
        }

        bool harvesting = harvester->power(t) > 0.0;
        double vh = harvester->voltage(t);
        sim::Time hb = harvester->nextChange(t);
        double seg = std::isfinite(hb) ? std::max(kTimeTol, hb - t)
                                       : kNever;

        // Earliest event: a converter-region or full-threshold
        // crossing of the charging node, or a non-held full node
        // dipping below its full threshold (cascade reassignment).
        // Only upward boundaries bound the charging node, as in
        // stepOnce. The winning node lands exactly on its boundary.
        double step = seg;
        int snap_node = -1;
        double snap_energy = 0.0;
        auto consider = [&](std::size_t i, double e_bound,
                            const Phase &ph) {
            double tb = timeToEnergy(peekEnergy[i], e_bound, ph);
            if (std::isfinite(tb) && tb > kTimeTol && tb < step) {
                step = tb;
                snap_node = static_cast<int>(i);
                snap_energy = e_bound;
            }
        };

        if (ci >= 0) {
            const auto c = static_cast<std::size_t>(ci);
            const CapacitorBank &cb = nodes[c].bank;
            double v = voltOf(c);
            double vtop = vtopOf(c);
            Phase ph{nodePower(c, v, t, true), cb.capacitance(),
                     cb.spec().leakageResistance()};
            double boundaries[3] = {vtop - kVFullTol,
                                    spec.input.coldStartVoltage,
                                    vh - spec.input.bypassDiodeDrop};
            for (double b : boundaries) {
                if (b <= v + kVTol || b > vtop)
                    continue;
                consider(c, cb.energyAtVoltage(b), ph);
            }
        }
        for (std::size_t i = 0; i < n; ++i) {
            if (static_cast<int>(i) == ci || !fullAt(i))
                continue;
            if (harvesting && nodes[i].load <= 0.0)
                continue;  // maintenance top-up holds it at the top
            // A draining full node: its dip below the threshold hands
            // the cascade back to it. Aim just under the threshold so
            // the landing is unambiguously non-full.
            const CapacitorBank &b = nodes[i].bank;
            double v_dip = vtopOf(i) - kVFullTol - kVTol;
            if (voltOf(i) <= v_dip + kVTol)
                continue;
            Phase ph{nodePower(i, voltOf(i), t, false),
                     b.capacitance(), b.spec().leakageResistance()};
            consider(i, b.energyAtVoltage(v_dip), ph);
        }

        if (!std::isfinite(step)) {
            // No boundary and no harvester change ahead: every node
            // just relaxes toward its asymptote, so if the target's
            // full threshold were reachable the consider() above
            // would have found a finite crossing.
            return kNever;
        }

        // Advance every node through the micro-phase.
        for (std::size_t i = 0; i < n; ++i) {
            double vtop = vtopOf(i);
            double e_full = nodes[i].bank.energyAtVoltage(vtop);
            if (harvesting && nodes[i].load <= 0.0 &&
                static_cast<int>(i) != ci && fullAt(i)) {
                peekEnergy[i] = e_full;  // maintenance top-up
                continue;
            }
            Phase ph{nodePower(i, voltOf(i), t,
                               static_cast<int>(i) == ci),
                     nodes[i].bank.capacitance(),
                     nodes[i].bank.spec().leakageResistance()};
            double e = advanceEnergy(peekEnergy[i], ph, step);
            if (static_cast<int>(i) == snap_node)
                e = snap_energy;  // land exactly on the boundary
            if (e > e_full)
                e = e_full;  // keeper diode pins at the top
            peekEnergy[i] = e;
        }
        t += step;
        total += step;
    }
    return kNever;
}

sim::Time
FederatedStorage::timeToAnyBrownout() const
{
    // Analytic for each loaded node under current conditions, taking
    // the cascade's charging assignment as fixed (conservative).
    int ci = chargingNode();
    sim::Time earliest = kNever;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const NodeState &ns = nodes[i];
        if (ns.load <= 0.0)
            continue;
        double v_bo = nodeBrownoutVoltage(int(i));
        double v = ns.bank.voltage();
        if (v <= v_bo + kVTol)
            return 0.0;
        double p = nodePower(i, v, lastTime, int(i) == ci);
        Phase ph{p, ns.bank.capacitance(),
                 ns.bank.spec().leakageResistance()};
        double tb = timeToEnergy(ns.bank.energy(),
                                 ns.bank.energyAtVoltage(v_bo), ph);
        earliest = std::min(earliest, tb);
    }
    return earliest;
}

} // namespace capy::power
