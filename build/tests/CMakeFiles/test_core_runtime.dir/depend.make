# Empty dependencies file for test_core_runtime.
# This may be replaced when dependencies are built.
