/**
 * @file
 * Discrete-event queue: time-ordered callbacks with stable FIFO
 * ordering among simultaneous events and O(1) cancellation.
 *
 * Bookkeeping uses generation-counted slot records instead of hash
 * sets: every event occupies a small slot whose generation counter is
 * bumped when the event runs or is cancelled, so a heap record whose
 * embedded generation no longer matches its slot is stale and gets
 * skipped lazily at the head of the heap. Cancel is a counter bump,
 * and slots recycle through a free list, so long-lived simulators
 * with heavy cancel traffic retain no tombstone state.
 */

#ifndef CAPY_SIM_EVENT_HH
#define CAPY_SIM_EVENT_HH

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/callback.hh"

namespace capy::sim
{

/** Simulated time in seconds. */
using Time = double;

/** Handle identifying a scheduled event; 0 is never a valid id. */
using EventId = std::uint64_t;

/** Sentinel id meaning "no event". */
inline constexpr EventId kInvalidEvent = 0;

/**
 * Min-heap of timestamped callbacks. Events scheduled for the same
 * instant run in scheduling order. Cancelled events are skipped lazily
 * when they reach the head of the heap.
 */
class EventQueue
{
  public:
    /**
     * Schedule @p fn to run at absolute time @p when.
     * @return a handle usable with cancel().
     */
    EventId schedule(Time when, Callback fn);

    /**
     * Cancel a previously scheduled event.
     * @retval true if the event was pending and is now cancelled.
     * @retval false if it already ran, was already cancelled, or the
     *         handle is invalid.
     */
    bool cancel(EventId id);

    /** @return true when no runnable events remain. */
    bool empty() const;

    /** Time of the earliest pending event; empty() must be false. */
    Time nextTime() const;

    /**
     * Pop the earliest pending event and run its callback.
     * @return the time at which the event ran.
     */
    Time runNext();

    /** Number of events executed so far. */
    std::uint64_t executed() const { return numExecuted; }

    /** Number of events currently pending (excludes cancelled). */
    std::size_t pending() const { return pendingCount; }

    /** @retval true if @p id refers to a still-pending event. */
    bool isPending(EventId id) const;

    /** Slots allocated over the queue's lifetime (bookkeeping bound:
     *  never exceeds the peak number of simultaneously pending
     *  events). */
    std::size_t slotCapacity() const { return slots.size(); }

    /**
     * Process-wide count of scheduled callbacks whose capture
     * overflowed Callback's inline buffer and heap-allocated. The
     * inline size was chosen so device/kernel hot paths never
     * overflow; hot-path benches assert this stays 0.
     */
    static std::uint64_t
    callbackHeapFallbacks()
    {
        return Callback::heapFallbacks();
    }

  private:
    struct Record
    {
        Time when;
        std::uint64_t seq;
        EventId id;
        Callback fn;
    };

    /** Per-slot liveness: gen changes whenever the slot's current
     *  event ends (runs or is cancelled), invalidating old handles
     *  and any stale heap record. */
    struct Slot
    {
        std::uint32_t gen = 0;
        bool live = false;
    };

    struct Later
    {
        bool
        operator()(const Record &a, const Record &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** An EventId packs (generation, slot + 1) so that 0 stays
     *  invalid and handles from recycled slots never compare equal. */
    static EventId
    makeId(std::uint32_t slot, std::uint32_t gen)
    {
        return (EventId(gen) << 32) | EventId(slot + 1);
    }

    static std::uint32_t
    slotOf(EventId id)
    {
        return std::uint32_t(id & 0xffffffffu) - 1;
    }

    static std::uint32_t
    genOf(EventId id)
    {
        return std::uint32_t(id >> 32);
    }

    /** A heap record whose slot moved on (ran/cancelled/recycled). */
    bool
    stale(const Record &rec) const
    {
        const Slot &s = slots[slotOf(rec.id)];
        return !s.live || s.gen != genOf(rec.id);
    }

    /** Retire @p slot: invalidate its handles and recycle it. */
    void
    retire(std::uint32_t slot)
    {
        Slot &s = slots[slot];
        s.live = false;
        ++s.gen;
        freeSlots.push_back(slot);
        --pendingCount;
    }

    /** Drop stale records from the head of the heap. */
    void skipCancelled() const;

    mutable std::priority_queue<Record, std::vector<Record>, Later> heap;
    std::vector<Slot> slots;
    std::vector<std::uint32_t> freeSlots;
    std::size_t pendingCount = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t numExecuted = 0;
};

} // namespace capy::sim

#endif // CAPY_SIM_EVENT_HH
