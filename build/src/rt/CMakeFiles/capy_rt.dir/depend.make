# Empty dependencies file for capy_rt.
# This may be replaced when dependencies are built.
