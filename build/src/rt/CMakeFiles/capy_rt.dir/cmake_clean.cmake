file(REMOVE_RECURSE
  "CMakeFiles/capy_rt.dir/checkpoint.cc.o"
  "CMakeFiles/capy_rt.dir/checkpoint.cc.o.d"
  "CMakeFiles/capy_rt.dir/kernel.cc.o"
  "CMakeFiles/capy_rt.dir/kernel.cc.o.d"
  "CMakeFiles/capy_rt.dir/task.cc.o"
  "CMakeFiles/capy_rt.dir/task.cc.o.d"
  "libcapy_rt.a"
  "libcapy_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capy_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
