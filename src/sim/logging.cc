#include "sim/logging.hh"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <vector>

namespace capy
{

namespace
{

std::atomic<unsigned long> warnCounter{0};
std::atomic<bool> quietMode{false};

} // namespace

std::string
strfmt(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (needed < 0) {
        va_end(args_copy);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file,
                 line);
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file,
                 line);
    std::fflush(stderr);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    warnCounter.fetch_add(1, std::memory_order_relaxed);
    if (!quietMode.load(std::memory_order_relaxed))
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!quietMode.load(std::memory_order_relaxed))
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail

unsigned long
warnCount()
{
    return warnCounter.load(std::memory_order_relaxed);
}

void
setQuiet(bool quiet)
{
    quietMode.store(quiet, std::memory_order_relaxed);
}

} // namespace capy
