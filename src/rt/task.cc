#include "rt/task.hh"

#include "sim/logging.hh"

namespace capy::rt
{

Task *
App::addTask(std::string name, double duration, double extra_power,
             TaskBody body, double sleep_after)
{
    capy_assert(duration >= 0.0, "task '%s': negative duration",
                name.c_str());
    capy_assert(extra_power >= 0.0, "task '%s': negative power",
                name.c_str());
    capy_assert(body != nullptr, "task '%s': missing body",
                name.c_str());
    tasks.push_back(Task{std::move(name), duration, extra_power, 0.0,
                         std::move(body), sleep_after});
    Task *t = &tasks.back();
    if (!entryTask)
        entryTask = t;
    return t;
}

void
App::setEntry(const Task *task)
{
    capy_assert(task != nullptr, "entry task is null");
    entryTask = task;
}

const Task *
App::entry() const
{
    capy_assert(entryTask != nullptr, "app has no tasks");
    return entryTask;
}

const Task *
App::find(const std::string &name) const
{
    for (const Task &t : tasks)
        if (t.name == name)
            return &t;
    return nullptr;
}

bool
App::owns(const Task *task) const
{
    for (const Task &t : tasks)
        if (&t == task)
            return true;
    return false;
}

} // namespace capy::rt
