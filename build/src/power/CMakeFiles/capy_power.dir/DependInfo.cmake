
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/bankswitch.cc" "src/power/CMakeFiles/capy_power.dir/bankswitch.cc.o" "gcc" "src/power/CMakeFiles/capy_power.dir/bankswitch.cc.o.d"
  "/root/repo/src/power/booster.cc" "src/power/CMakeFiles/capy_power.dir/booster.cc.o" "gcc" "src/power/CMakeFiles/capy_power.dir/booster.cc.o.d"
  "/root/repo/src/power/capacitor.cc" "src/power/CMakeFiles/capy_power.dir/capacitor.cc.o" "gcc" "src/power/CMakeFiles/capy_power.dir/capacitor.cc.o.d"
  "/root/repo/src/power/federated.cc" "src/power/CMakeFiles/capy_power.dir/federated.cc.o" "gcc" "src/power/CMakeFiles/capy_power.dir/federated.cc.o.d"
  "/root/repo/src/power/harvester.cc" "src/power/CMakeFiles/capy_power.dir/harvester.cc.o" "gcc" "src/power/CMakeFiles/capy_power.dir/harvester.cc.o.d"
  "/root/repo/src/power/parts.cc" "src/power/CMakeFiles/capy_power.dir/parts.cc.o" "gcc" "src/power/CMakeFiles/capy_power.dir/parts.cc.o.d"
  "/root/repo/src/power/power_system.cc" "src/power/CMakeFiles/capy_power.dir/power_system.cc.o" "gcc" "src/power/CMakeFiles/capy_power.dir/power_system.cc.o.d"
  "/root/repo/src/power/solver.cc" "src/power/CMakeFiles/capy_power.dir/solver.cc.o" "gcc" "src/power/CMakeFiles/capy_power.dir/solver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/capy_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
