/**
 * @file
 * Ground-truth external event schedules. The evaluation drives every
 * application with event sequences drawn from Poisson distributions
 * (§6.2) and replays the *same* sequence against each power-system
 * variant, so schedules are explicit, immutable values.
 */

#ifndef CAPY_ENV_EVENTS_HH
#define CAPY_ENV_EVENTS_HH

#include <vector>

#include "sim/event.hh"
#include "sim/random.hh"

namespace capy::env
{

/** One ground-truth external event. */
struct EnvEvent
{
    int id;
    sim::Time time;
};

/** An immutable, time-sorted schedule of ground-truth events. */
class EventSchedule
{
  public:
    EventSchedule() = default;
    explicit EventSchedule(std::vector<sim::Time> times);

    /**
     * Poisson process with mean inter-arrival @p mean_interval over
     * [start_after, horizon).
     */
    static EventSchedule poisson(sim::Rng &rng, double mean_interval,
                                 double horizon,
                                 double start_after = 0.0);

    /**
     * Exactly @p count events over roughly @p horizon with
     * Poisson-like (exponential) gaps, matching the paper's "50
     * events over 120 minutes" style of sequence. The sequence is
     * scaled to fit the horizon.
     */
    static EventSchedule poissonCount(sim::Rng &rng, std::size_t count,
                                      double horizon,
                                      double start_after = 0.0);

    /**
     * poisson() with a private generator constructed from
     * (seed, stream). Lets each parallel sweep job draw its own
     * schedule worker-side — identical to pre-generating on the
     * caller thread with sim::Rng(seed, stream), at any CAPY_JOBS.
     */
    static EventSchedule poissonSeeded(std::uint64_t seed,
                                       std::uint64_t stream,
                                       double mean_interval,
                                       double horizon,
                                       double start_after = 0.0);

    /** poissonCount() with a private (seed, stream) generator. */
    static EventSchedule poissonCountSeeded(std::uint64_t seed,
                                            std::uint64_t stream,
                                            std::size_t count,
                                            double horizon,
                                            double start_after = 0.0);

    const std::vector<EnvEvent> &events() const { return list; }
    std::size_t size() const { return list.size(); }
    bool empty() const { return list.empty(); }
    const EnvEvent &at(std::size_t i) const;

    /** Time of the last event; schedule must be non-empty. */
    sim::Time lastTime() const;

    /**
     * Index of the event active for a window [t, t + dur) given each
     * event spans [time, time + span); -1 when none. When windows
     * overlap several events the earliest unexpired one wins.
     */
    int eventCovering(sim::Time t, double dur, double span) const;

    /** Ids of events with time in the open interval (t0, t1). */
    std::vector<int> eventsBetween(sim::Time t0, sim::Time t1) const;

  private:
    std::vector<EnvEvent> list;
};

} // namespace capy::env

#endif // CAPY_ENV_EVENTS_HH
