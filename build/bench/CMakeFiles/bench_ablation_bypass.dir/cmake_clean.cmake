file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bypass.dir/bench_ablation_bypass.cc.o"
  "CMakeFiles/bench_ablation_bypass.dir/bench_ablation_bypass.cc.o.d"
  "bench_ablation_bypass"
  "bench_ablation_bypass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bypass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
