file(REMOVE_RECURSE
  "CMakeFiles/provision_tool.dir/provision_tool.cpp.o"
  "CMakeFiles/provision_tool.dir/provision_tool.cpp.o.d"
  "provision_tool"
  "provision_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provision_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
