/**
 * @file
 * Ablation (§5.1): the input-booster bypass optimization. Without the
 * bypass, cold-starting a large capacitor crawls on the converter's
 * trickle; with the bypass diode the harvester charges the capacitors
 * directly until the converter can start. The paper observed at least
 * an order of magnitude reduction in charge time.
 */

#include <cmath>
#include <cstdio>
#include <memory>

#include "bench_util.hh"
#include "power/parts.hh"
#include "power/power_system.hh"
#include "power/solver.hh"
#include "sim/logging.hh"
#include "sim/runner.hh"
#include "sim/stats.hh"

using namespace capy;
using namespace capy::bench;

namespace
{

struct ChargeTimes
{
    double coldStart;  ///< time to lift storage past the converter's
                       ///< cold-start threshold
    double full;       ///< time to the full charge target
};

ChargeTimes
chargeTime(const power::CapacitorSpec &bank, double harvest_w,
           bool bypass)
{
    power::PowerSystem::Spec spec;
    spec.input.bypassEnabled = bypass;
    power::PowerSystem ps(
        spec,
        std::make_unique<power::RegulatedSupply>(harvest_w, 3.3));
    ps.addBank("b", bank);
    return ChargeTimes{
        ps.timeToVoltage(spec.input.coldStartVoltage),
        ps.timeToFull(),
    };
}

} // namespace

int
main()
{
    setQuiet(true);
    banner("Section 5.1 ablation", "input booster bypass optimization");

    struct Case
    {
        const char *name;
        power::CapacitorSpec bank;
        double harvest;
    };
    Case cases[] = {
        {"TA large bank @ 0.84 mW",
         power::parallelCompose({power::parts::tant1000uF(),
                                 power::parts::edlc7_5mF()}),
         0.84e-3},
        {"GRC fixed bank @ 8 mW",
         power::parallelCompose({power::parts::x5r100uF().parallel(4),
                                 power::parts::tant330uF(),
                                 power::parts::edlc7_5mF().parallel(9)}),
         8e-3},
        {"small bank @ 8 mW", power::parts::x5r100uF().parallel(4),
         8e-3},
    };

    // Jobs 2i / 2i+1 are case i with/without the bypass.
    sim::BatchRunner pool;
    auto times = pool.map(2 * std::size(cases), [&](std::size_t i) {
        const Case &c = cases[i / 2];
        return chargeTime(c.bank, c.harvest, i % 2 == 0);
    });

    sim::Table t({"configuration", "cold start w/ bypass (s)",
                  "cold start w/o (s)", "cold-start speedup",
                  "full charge w/ (s)", "full charge w/o (s)",
                  "full speedup"});
    double min_cold = 1e9, min_full = 1e9;
    for (std::size_t ci = 0; ci < std::size(cases); ++ci) {
        const Case &c = cases[ci];
        const ChargeTimes &with = times[2 * ci];
        const ChargeTimes &without = times[2 * ci + 1];
        double cold_speedup = without.coldStart / with.coldStart;
        double full_speedup = without.full / with.full;
        min_cold = std::min(min_cold, cold_speedup);
        min_full = std::min(min_full, full_speedup);
        t.addRow({c.name, sim::cell(with.coldStart, 4),
                  sim::cell(without.coldStart, 4),
                  sim::cell(cold_speedup, 3) + "x",
                  sim::cell(with.full, 4), sim::cell(without.full, 4),
                  sim::cell(full_speedup, 3) + "x"});
    }
    t.print();

    shapeCheck(min_cold >= 10.0,
               "the bypass accelerates the cold-start phase by at "
               "least an order of magnitude (§5.1)");
    shapeCheck(min_full >= 2.0,
               "end-to-end charge time improves substantially too");
    return finish();
}
