/**
 * @file
 * The intermittent-execution kernel: drives an App's task graph on a
 * Device, keeping the current-task pointer in non-volatile memory so
 * execution resumes at the interrupted task after every power
 * failure.
 *
 * The Capybara runtime (src/core) attaches through the pre-task gate:
 * before a task executes — on every attempt, including restarts — the
 * gate may reconfigure the power system and power the device down to
 * recharge; execution proceeds only when the gate calls through.
 */

#ifndef CAPY_RT_KERNEL_HH
#define CAPY_RT_KERNEL_HH

#include <functional>
#include <map>
#include <string>

#include "dev/device.hh"
#include "dev/nvmem.hh"
#include "rt/task.hh"

namespace capy::rt
{

/**
 * Chain-style scheduler for one application on one device.
 */
class Kernel
{
  public:
    /**
     * Pre-task gate: called with the task about to execute and a
     * continuation. The gate either calls @p proceed (possibly after
     * reconfiguring the power system) or parks the device
     * (Device::powerDown()); after the subsequent boot the gate runs
     * again for the same task.
     */
    using PreTaskGate =
        std::function<void(const Task &, std::function<void()> proceed)>;

    /** Execution counters. */
    struct Stats
    {
        std::uint64_t taskCompletions = 0;
        /** Task attempts cut short by a power failure. */
        std::uint64_t taskRestarts = 0;
        /** Committed task-to-task transitions. */
        std::uint64_t transitions = 0;
    };

    /**
     * Per-task energy/time attribution — the §3 provisioning
     * methodology ("measure a task's energy consumption") built into
     * the kernel. Wasted energy is charge spent on attempts that a
     * power failure discarded.
     */
    struct TaskEnergyUse
    {
        std::uint64_t completions = 0;
        std::uint64_t failedAttempts = 0;
        double railEnergy = 0.0;    ///< J spent on completed runs
        double wastedEnergy = 0.0;  ///< J spent on aborted attempts
        double activeTime = 0.0;    ///< s of completed execution
    };

    Kernel(dev::Device &device, const App &app,
           dev::NvMemory *nv = nullptr);

    /** Install the Capybara gate; must precede start(). */
    void setPreTaskGate(PreTaskGate gate);

    /** Wire device hooks and begin (device starts charging). */
    void start();

    /** The task the NV pointer currently designates. */
    const Task *currentTask() const { return nvCurrent.get(); }

    /** The crash-consistent task-pointer journal (audit access). */
    const dev::NvJournaledCell<const Task *> &taskCell() const
    {
        return nvCurrent;
    }

    /** The application this kernel schedules. */
    const App &app() const { return application; }

    /** True once a body returned nullptr. */
    bool halted() const { return isHalted; }

    const Stats &stats() const { return kernelStats; }

    /** Energy attribution by task name. */
    const std::map<std::string, TaskEnergyUse> &energyByTask() const
    {
        return taskEnergy;
    }

    dev::Device &device() { return dev; }
    sim::Time now() const { return dev.simulator().now(); }

  private:
    void onBoot();
    void onPowerFail();
    void executeCurrent();
    void runTask(const Task *task);
    void completeTask(const Task *task);
    void commitTransition(const Task *next);

    dev::Device &dev;
    const App &application;
    /** The Chain NV task pointer. Committed through a two-slot
     *  journal: the transition is atomic even though a pointer spans
     *  two memory words. */
    dev::NvJournaledCell<const Task *> nvCurrent;
    PreTaskGate preTaskGate;
    Stats kernelStats;
    std::map<std::string, TaskEnergyUse> taskEnergy;
    bool started = false;
    bool isHalted = false;
    bool inTask = false;
};

} // namespace capy::rt

#endif // CAPY_RT_KERNEL_HH
