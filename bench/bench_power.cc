/**
 * @file
 * Power-layer hot-path benchmark: every simulated second of a device
 * run funnels through PowerSystem::advanceTo, the closed-form solver,
 * and Harvester queries, and the runtime leans on the predictive
 * queries (timeToFull / timeToBrownout) to jump the clock. This
 * harness measures that single-thread hot path directly under two
 * workloads:
 *
 *  - advance-heavy: many small advanceTo() steps against a looping
 *    288-sample harvest trace with periodic load changes (the
 *    trace-replay pattern of a deployed device), and
 *  - query-heavy: repeated predictive-query bundles (storageVoltage,
 *    isFull, timeToFull, timeToBrownout) between small advances (the
 *    charge-wake scheduling pattern in dev::Device).
 *
 * After the registered google-benchmark cases run, the binary takes
 * best-of-3 headline measurements and merges a "power" section into
 * BENCH_SIM.json (schema capy-bench-sim-v2; path override via
 * CAPY_BENCH_JSON), alongside the cache hit/miss counters of the
 * harvester query cursor, the PowerSystem node-snapshot cache, and
 * the solver exp memo, so fast-path regressions are observable in the
 * perf gate rather than just slow.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "power/harvester.hh"
#include "power/parts.hh"
#include "power/power_system.hh"
#include "power/solver.hh"
#include "sim/logging.hh"

using namespace capy;

namespace
{

/** Synthetic solar day: 288 five-minute samples, half-sine envelope
 *  (night = 0), looping. Step count is what drives harvester query
 *  cost, matching a measured deployment trace. */
std::vector<power::TraceHarvester::Sample>
solarDayTrace()
{
    std::vector<power::TraceHarvester::Sample> samples;
    samples.reserve(288);
    for (int i = 0; i < 288; ++i) {
        double t = double(i) * 300.0;
        double phase = double(i) / 288.0;  // 0..1 over the day
        double sun = std::sin((phase - 0.25) * 2.0 * M_PI);
        double p = sun > 0.0 ? 8e-3 * sun : 0.0;
        samples.push_back({t, p});
    }
    return samples;
}

std::unique_ptr<power::PowerSystem>
makeBenchSystem()
{
    power::PowerSystem::Spec spec;
    auto ps = std::make_unique<power::PowerSystem>(
        spec,
        std::make_unique<power::TraceHarvester>(solarDayTrace(), 3.3));
    ps->addBank("small", power::parts::x5r100uF().parallel(4));
    ps->addBank("big", power::parts::edlc7_5mF());
    ps->bankForTest(0).setVoltage(1.5);
    ps->bankForTest(1).setVoltage(1.5);
    return ps;
}

/** One advance-heavy pass: @p steps 1-second advances with a load
 *  change every 50 steps. Returns a value sink. */
double
advanceHeavy(power::PowerSystem &ps, int steps)
{
    double sink = 0.0;
    sim::Time t = ps.time();
    ps.setRailEnabled(true);
    for (int i = 0; i < steps; ++i) {
        if (i % 50 == 0)
            ps.setRailLoad(i % 100 == 0 ? 2e-3 : 0.2e-3);
        t += 1.0;
        ps.advanceTo(t);
        sink += ps.storageVoltage();
    }
    return sink;
}

/** One query-heavy pass: @p bundles predictive-query bundles with a
 *  0.5 s advance every 8 bundles (the device re-queries far more
 *  often than conditions change). Returns a value sink. */
double
queryHeavy(power::PowerSystem &ps, int bundles)
{
    double sink = 0.0;
    sim::Time t = ps.time();
    ps.setRailEnabled(true);
    ps.setRailLoad(1e-3);
    for (int i = 0; i < bundles; ++i) {
        sink += ps.storageVoltage();
        sink += ps.isFull() ? 1.0 : 0.0;
        sim::Time tf = ps.timeToFull();
        sim::Time tb = ps.timeToBrownout();
        sink += std::isfinite(tf) ? tf : 0.0;
        sink += std::isfinite(tb) ? tb : 0.0;
        if (i % 8 == 7) {
            t += 0.5;
            ps.advanceTo(t);
        }
    }
    return sink;
}

// --- Registered microbenchmarks -------------------------------------

void
BM_PowerAdvanceTrace(benchmark::State &state)
{
    auto ps = makeBenchSystem();
    for (auto _ : state)
        benchmark::DoNotOptimize(advanceHeavy(*ps, 256));
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_PowerAdvanceTrace);

void
BM_PowerQueryBundle(benchmark::State &state)
{
    auto ps = makeBenchSystem();
    for (auto _ : state)
        benchmark::DoNotOptimize(queryHeavy(*ps, 64));
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_PowerQueryBundle);

// --- Headline measurement + BENCH_SIM.json merge --------------------

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Repetitions per headline measurement (same policy as
 *  bench_engine: best-of to shed scheduler noise). */
constexpr int kMeasureReps = 3;

double
measureAdvanceRate()
{
    const int steps = 20000;
    double best = 0.0;
    for (int rep = 0; rep < kMeasureReps; ++rep) {
        auto ps = makeBenchSystem();
        auto t0 = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(advanceHeavy(*ps, steps));
        double dt = secondsSince(t0);
        best = std::max(best, double(steps) / dt);
    }
    return best;
}

double
measureQueryRate()
{
    const int bundles = 4000;
    double best = 0.0;
    for (int rep = 0; rep < kMeasureReps; ++rep) {
        auto ps = makeBenchSystem();
        auto t0 = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(queryHeavy(*ps, bundles));
        double dt = secondsSince(t0);
        best = std::max(best, double(bundles) / dt);
    }
    return best;
}

/** Hot-path cache counters from one fixed reference workload. */
struct CacheCounters
{
    power::PowerSystem::CacheStats ps{};
    std::uint64_t cursorHits = 0;
    std::uint64_t cursorMisses = 0;
};

/**
 * Run the reference workload (untimed) and collect every hot-path
 * cache counter. The workload is fixed and single-threaded, so the
 * counters are exact and deterministic — a fast path that silently
 * stops hitting shows up as a counter regression in BENCH_SIM.json
 * even when the wall-clock gate is too noisy to catch it.
 */
CacheCounters
collectCounters()
{
    auto ps = makeBenchSystem();
    benchmark::DoNotOptimize(advanceHeavy(*ps, 4000));
    benchmark::DoNotOptimize(queryHeavy(*ps, 2000));
    CacheCounters c;
    c.ps = ps->cacheStats();
    if (const auto *th = dynamic_cast<const power::TraceHarvester *>(
            &ps->harvesterRef())) {
        c.cursorHits = th->cursorHits();
        c.cursorMisses = th->cursorMisses();
    }
    return c;
}

/** Strip a previously merged "power" section (idempotent re-runs). */
std::string
stripPowerSection(std::string text)
{
    std::size_t at = text.find("\"power\": {");
    if (at == std::string::npos)
        return text;
    // Back up over indentation to the start of the line.
    std::size_t start = text.rfind('\n', at);
    start = start == std::string::npos ? at : start + 1;
    // Find the matching close brace.
    std::size_t depth = 0, i = text.find('{', at);
    for (; i < text.size(); ++i) {
        if (text[i] == '{')
            ++depth;
        else if (text[i] == '}' && --depth == 0)
            break;
    }
    if (i >= text.size())
        return text;  // malformed; leave as-is
    std::size_t end = i + 1;
    if (end < text.size() && text[end] == ',')
        ++end;
    if (end < text.size() && text[end] == '\n')
        ++end;
    text.erase(start, end - start);
    return text;
}

/** The "power" block merged into BENCH_SIM.json. */
std::string
powerSection(double advance_per_sec, double query_per_sec,
             const CacheCounters &c)
{
    char buf[2048];
    std::snprintf(
        buf, sizeof buf,
        "  \"power\": {\n"
        "    \"workload\": \"trace-replay 2-bank system\",\n"
        "    \"advance_steps_per_sec\": %.6g,\n"
        "    \"query_bundles_per_sec\": %.6g,\n"
        "    \"cache\": {\n"
        "      \"node_hits\": %llu,\n"
        "      \"node_misses\": %llu,\n"
        "      \"query_hits\": %llu,\n"
        "      \"query_misses\": %llu,\n"
        "      \"exp_hits\": %llu,\n"
        "      \"exp_misses\": %llu,\n"
        "      \"cursor_hits\": %llu,\n"
        "      \"cursor_misses\": %llu\n"
        "    }\n"
        "  },\n",
        advance_per_sec, query_per_sec,
        (unsigned long long)c.ps.nodeHits,
        (unsigned long long)c.ps.nodeMisses,
        (unsigned long long)c.ps.queryHits,
        (unsigned long long)c.ps.queryMisses,
        (unsigned long long)c.ps.expHits,
        (unsigned long long)c.ps.expMisses,
        (unsigned long long)c.cursorHits,
        (unsigned long long)c.cursorMisses);
    return buf;
}

/**
 * Merge the power section into the BENCH_SIM.json written by
 * bench_engine (schema v2), or write a standalone v2 file when none
 * exists yet.
 */
void
writeMerged(double advance_per_sec, double query_per_sec,
            const CacheCounters &counters)
{
    const char *path = std::getenv("CAPY_BENCH_JSON");
    if (path == nullptr)
        path = "BENCH_SIM.json";

    std::string text;
    {
        std::ifstream in(path);
        if (in) {
            std::ostringstream buf;
            buf << in.rdbuf();
            text = buf.str();
        }
    }

    std::string section =
        powerSection(advance_per_sec, query_per_sec, counters);
    if (text.find("\"capy-bench-sim-v") != std::string::npos) {
        // Upgrade v1 snapshots in place; drop any stale power block.
        std::size_t v1 = text.find("\"capy-bench-sim-v1\"");
        if (v1 != std::string::npos)
            text.replace(v1, 19, "\"capy-bench-sim-v2\"");
        text = stripPowerSection(std::move(text));
        std::size_t anchor = text.find("  \"hardware_concurrency\"");
        if (anchor == std::string::npos)
            anchor = text.rfind('}');
        if (anchor == std::string::npos) {
            std::fprintf(stderr, "bench_power: cannot merge into %s\n",
                         path);
            return;
        }
        text.insert(anchor, section);
    } else {
        text = "{\n  \"schema\": \"capy-bench-sim-v2\",\n" + section +
               "  \"hardware_concurrency\": 1\n}\n";
    }

    std::FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "bench_power: cannot write %s\n", path);
        return;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("power hot-path metrics merged into %s\n", path);
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    double advance_per_sec = measureAdvanceRate();
    double query_per_sec = measureQueryRate();
    CacheCounters counters = collectCounters();
    std::printf("power hot path: %.4g advance steps/s, "
                "%.4g query bundles/s\n",
                advance_per_sec, query_per_sec);
    std::printf("caches: node %llu/%llu, query %llu/%llu, "
                "exp %llu/%llu, cursor %llu/%llu (hits/misses)\n",
                (unsigned long long)counters.ps.nodeHits,
                (unsigned long long)counters.ps.nodeMisses,
                (unsigned long long)counters.ps.queryHits,
                (unsigned long long)counters.ps.queryMisses,
                (unsigned long long)counters.ps.expHits,
                (unsigned long long)counters.ps.expMisses,
                (unsigned long long)counters.cursorHits,
                (unsigned long long)counters.cursorMisses);
    writeMerged(advance_per_sec, query_per_sec, counters);
    if (counters.ps.nodeHits == 0 || counters.ps.queryHits == 0 ||
        counters.ps.expHits == 0 || counters.cursorHits == 0) {
        std::fprintf(stderr, "bench_power: FAIL: a hot-path cache "
                             "recorded zero hits on the reference "
                             "workload\n");
        return 1;
    }
    return 0;
}
