/**
 * @file
 * Automatic bank allocation — the paper's stated future work (§8):
 * "find an allocation of capacitors to banks for a set of task energy
 * requirements."
 *
 * Given the energy modes of an application (each summarized by its
 * most demanding task and whether it is temporally constrained), the
 * allocator chooses concrete capacitor parts from a catalog and
 * organizes them into a hard-wired base bank plus one switched bank
 * per additional mode, minimizing total capacitor volume subject to:
 *
 *  - capacity: each mode's active set stores enough extractable
 *    energy for its worst task (with derating),
 *  - feasibility: the composite ESR keeps the brown-out floor below
 *    the charge target and the boot droop below the start voltage,
 *  - reactivity: the base (most reactive) mode is the smallest bank.
 */

#ifndef CAPY_CORE_ALLOCATE_HH
#define CAPY_CORE_ALLOCATE_HH

#include <limits>
#include <string>
#include <vector>

#include "core/provision.hh"
#include "power/capacitor.hh"
#include "power/power_system.hh"

namespace capy::core
{

/** One energy mode's demand, as input to the allocator. */
struct ModeRequirement
{
    std::string name;
    /** The mode's most demanding task (rail power + duration). */
    TaskEnergy demand;
    /**
     * Temporally constrained: the mode's recharge time should be
     * minimized.
     */
    bool reactive = false;
    /**
     * Upper bound on the mode's estimated recharge time, s
     * (infinity = unconstrained). Reactive modes set this to bound
     * how long the device may be dark between executions.
     */
    double maxChargeTime = std::numeric_limits<double>::infinity();
};

/** One allocated bank. */
struct BankPlan
{
    std::string modeName;
    /** Catalog part chosen. */
    power::CapacitorSpec unit;
    int unitCount = 0;
    /** The parallel composition actually placed. */
    power::CapacitorSpec composition;
    /** True for the always-connected base bank. */
    bool hardwired = false;
    /** Estimated recharge time of the mode's full active set, s. */
    double chargeTime = 0.0;
};

/** A complete allocation. */
struct AllocationPlan
{
    std::vector<BankPlan> banks;
    double totalVolume = 0.0;      ///< mm^3 of capacitors
    double totalSwitchArea = 0.0;  ///< mm^2 of switch modules
    bool feasible = false;

    /** Capacitance active in mode @p i (base + that mode's bank). */
    double activeCapacitance(std::size_t i) const;
};

/**
 * Allocate banks for @p modes (any order; the allocator sorts by
 * demand) from @p catalog parts under power system @p spec.
 *
 * @param harvest_power expected harvest for charge-time estimates, W.
 * @param derating capacity margin (>= 1).
 */
AllocationPlan
allocateBanks(const std::vector<ModeRequirement> &modes,
              const power::PowerSystem::Spec &spec,
              const std::vector<power::CapacitorSpec> &catalog,
              double harvest_power, double derating = 1.2);

/**
 * Validate an allocation by simulation: for each mode, run a task
 * with the mode's demand on a device whose active banks follow the
 * plan, and check it completes.
 */
bool verifyAllocation(const AllocationPlan &plan,
                      const std::vector<ModeRequirement> &modes,
                      const power::PowerSystem::Spec &spec,
                      double harvest_power);

} // namespace capy::core

#endif // CAPY_CORE_ALLOCATE_HH
