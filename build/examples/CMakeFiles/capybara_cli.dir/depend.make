# Empty dependencies file for capybara_cli.
# This may be replaced when dependencies are built.
