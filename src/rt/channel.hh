/**
 * @file
 * Chain-style channels: non-volatile, task-to-task data flow.
 *
 * In Chain, tasks exchange data exclusively through channels whose
 * contents live in non-volatile memory and are updated only by
 * completed tasks, which is what makes task restarts idempotent. In
 * this model a task's body runs only at completion (the workload is
 * simulated as opaque time/energy), so a channel reduces to a typed
 * non-volatile cell plus a bounded NV ring buffer for time series.
 */

#ifndef CAPY_RT_CHANNEL_HH
#define CAPY_RT_CHANNEL_HH

#include <array>
#include <cstddef>

#include "dev/nvmem.hh"
#include "sim/logging.hh"

namespace capy::rt
{

/** Scalar channel: one non-volatile value. */
template <typename T>
using Channel = dev::NvCell<T>;

/**
 * Bounded non-volatile ring buffer, e.g. the TempAlarm time series of
 * recent samples that ships with each alarm packet (§6.1.2).
 */
template <typename T, std::size_t N>
class RingChannel
{
  public:
    explicit RingChannel(dev::NvMemory *mem = nullptr) : memory(mem) {}

    /** Append a value, evicting the oldest when full. */
    void
    push(const T &v)
    {
        data[head] = v;
        head = (head + 1) % N;
        if (count < N)
            ++count;
        if (memory)
            memory->noteWrite(1);
    }

    std::size_t size() const { return count; }
    static constexpr std::size_t capacity() { return N; }
    bool full() const { return count == N; }

    /** Element @p i counting from the oldest retained value. */
    const T &
    at(std::size_t i) const
    {
        capy_assert(i < count, "ring index %zu of %zu", i, count);
        std::size_t start = (head + N - count) % N;
        if (memory)
            memory->noteRead();
        return data[(start + i) % N];
    }

    void
    clear()
    {
        count = 0;
        head = 0;
        if (memory)
            memory->noteWrite(1);
    }

  private:
    std::array<T, N> data{};
    std::size_t head = 0;
    std::size_t count = 0;
    dev::NvMemory *memory;
};

} // namespace capy::rt

#endif // CAPY_RT_CHANNEL_HH
