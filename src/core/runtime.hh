/**
 * @file
 * The Capybara runtime (§4.3): intercepts every task attempt through
 * the kernel's pre-task gate and reconfigures the power system to
 * match the task's declared energy mode — including the non-volatile
 * preburst state machine that charges a future burst's banks off the
 * critical path, and burst activation that runs immediately on
 * pre-charged energy.
 */

#ifndef CAPY_CORE_RUNTIME_HH
#define CAPY_CORE_RUNTIME_HH

#include <unordered_map>

#include "core/energy_mode.hh"
#include "dev/nvmem.hh"
#include "rt/kernel.hh"

namespace capy::core
{

/**
 * Power-system disciplines evaluated in §6: continuous power, a
 * statically provisioned fixed bank, and the two Capybara variants.
 */
enum class Policy
{
    Continuous,  ///< "Pwr": bench supply, annotations ignored
    Fixed,       ///< single worst-case bank, annotations ignored
    CapyR,       ///< reconfiguration only: bursts degrade to configs
                 ///< and recharge on the critical path
    CapyP,       ///< full Capybara: reconfiguration + preburst/burst
};

const char *policyName(Policy policy);

/**
 * Runtime that executes task energy annotations against the
 * reconfigurable power system. All control state that must survive
 * power failures (the preburst phase machine, the burst-retry flag)
 * lives in non-volatile cells.
 */
class Runtime
{
  public:
    struct Stats
    {
        /** Switch flips actually performed. */
        std::uint64_t reconfigurations = 0;
        /** Times a task parked the device to recharge. */
        std::uint64_t rechargePauses = 0;
        /** Bursts that ran immediately on pre-charged banks. */
        std::uint64_t burstActivations = 0;
        /** Bursts that found insufficient pre-charge and had to
         *  recharge on the critical path (§6.3 "provisioning is for
         *  the average case"). */
        std::uint64_t burstRecharges = 0;
        /** Preburst charge phases completed. */
        std::uint64_t prechargePhases = 0;
        /** Preburst phases skipped because banks were still charged. */
        std::uint64_t prechargeSkips = 0;
    };

    /**
     * @param kernel the task kernel to gate.
     * @param registry mode -> bank-set mapping.
     * @param policy discipline to enforce.
     * @param nv accounting device for the runtime's NV cells.
     */
    Runtime(rt::Kernel &kernel, ModeRegistry registry, Policy policy,
            dev::NvMemory *nv = nullptr);

    /** Attach an energy annotation to @p task. */
    void annotate(const rt::Task *task, Annotation ann);

    /** Install the gate on the kernel; call before Kernel::start(). */
    void install();

    const Stats &stats() const { return rtStats; }
    Policy policy() const { return activePolicy; }
    const ModeRegistry &modes() const { return registry; }

  private:
    /** Margin below the pre-charge ceiling treated as "still full". */
    static constexpr double kPrechargeMargin = 0.1;

    /**
     * Multiples of the boot energy kept as readiness margin below the
     * full charge target. Booting and running the gate itself drain
     * the buffer below the exact full voltage; without an energy
     * margin that covers several boots the runtime would park in an
     * endless recharge loop on small banks.
     */
    static constexpr double kReadyBootMargin = 3.0;

    /** Whether the active buffer is charged enough to execute. */
    bool bufferReady() const;

    void gate(const rt::Task &task, std::function<void()> proceed);
    Annotation effectiveAnnotation(const rt::Task &task) const;

    void handleConfig(ModeId mode, std::function<void()> &proceed);
    void handleBurst(const rt::Task &task, ModeId mode,
                     std::function<void()> &proceed);
    void handlePreburst(const rt::Task &task, const Annotation &ann,
                        std::function<void()> &proceed);

    /** Re-issue switch commands so exactly @p mode's banks (plus the
     *  hard-wired ones) are active. */
    void applyMode(ModeId mode);

    /** Whether every bank of @p mode holds at least @p v volts. */
    bool banksHold(ModeId mode, double v) const;

    double prechargeCeiling() const;

    /** Park the device to recharge; the gate re-runs after reboot. */
    void parkToCharge();

    rt::Kernel &kernel;
    ModeRegistry registry;
    Policy activePolicy;
    std::unordered_map<const rt::Task *, Annotation> annotations;
    Stats rtStats;

    /** Set while parked charging a preburst's banks (accounting). */
    dev::NvCell<int> nvPbCharging;
    /**
     * The mode the runtime believes the hardware is in — what it last
     * commanded. The hardware cannot report actual switch state
     * (§5.2), so after a latch reversion belief and reality diverge
     * until the next reconfiguration. Reset at every boot so the
     * runtime conservatively re-issues the configuration after power
     * failures, which is what produces the paper's adversarial
     * NO-switch cycle of "switch state loss, incomplete task
     * execution, and switch reconfiguration".
     */
    dev::NvCell<ModeId> nvBelievedMode;
    /** Boot count at the last gate, to detect fresh boots. */
    std::uint64_t lastSeenBoots = ~0ull;
    /** Burst task whose proceed was issued but not yet left behind. */
    dev::NvCell<const rt::Task *> nvBurstAttempt;
    bool installed = false;
};

} // namespace capy::core

#endif // CAPY_CORE_RUNTIME_HH
