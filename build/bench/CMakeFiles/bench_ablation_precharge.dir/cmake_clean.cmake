file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_precharge.dir/bench_ablation_precharge.cc.o"
  "CMakeFiles/bench_ablation_precharge.dir/bench_ablation_precharge.cc.o.d"
  "bench_ablation_precharge"
  "bench_ablation_precharge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_precharge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
