/**
 * @file
 * Tests for the checkpoint-based intermittent kernel and the
 * trace-replay harvester.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "power/parts.hh"
#include "power/power_system.hh"
#include "power/solver.hh"
#include "rt/checkpoint.hh"
#include "rt/kernel.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

using namespace capy;
using namespace capy::dev;
using namespace capy::power;
using namespace capy::rt;

namespace
{

struct CkptRig
{
    sim::Simulator sim;
    std::unique_ptr<Device> device;

    explicit CkptRig(CapacitorSpec bank, double harvest_mw = 10.0)
    {
        PowerSystem::Spec spec;
        auto ps = std::make_unique<PowerSystem>(
            spec,
            std::make_unique<RegulatedSupply>(harvest_mw * 1e-3, 3.3));
        ps->addBank("b", bank);
        device = std::make_unique<Device>(
            sim, std::move(ps), msp430fr5969(),
            Device::PowerMode::Intermittent);
    }
};

} // namespace

TEST(Checkpoint, ShortWorkCompletesInOneSlice)
{
    CkptRig rig(parts::edlc7_5mF());
    bool complete = false;
    CheckpointKernel k(*rig.device, CheckpointKernel::Spec{}, 0.05,
                       0.0, [&] { complete = true; });
    k.start();
    rig.sim.runUntil(60.0);
    EXPECT_TRUE(complete);
    EXPECT_EQ(k.stats().checkpoints, 1u) << "final commit only";
    EXPECT_EQ(k.stats().restores, 0u);
    EXPECT_NEAR(k.progress(), 0.05, 1e-12);
}

TEST(Checkpoint, LongWorkSpansManyPowerCycles)
{
    // 5 s of compute on a bank holding ~1.3 s worth: needs several
    // charge cycles, each ending in a checkpoint.
    CkptRig rig(parts::edlc7_5mF());
    bool complete = false;
    CheckpointKernel k(*rig.device, CheckpointKernel::Spec{}, 5.0, 0.0,
                       [&] { complete = true; });
    k.start();
    rig.sim.runUntil(600.0);
    EXPECT_TRUE(complete);
    EXPECT_GE(k.stats().checkpoints, 3u);
    EXPECT_GE(k.stats().restores, 2u);
    EXPECT_NEAR(k.progress(), 5.0, 1e-9);
    EXPECT_EQ(rig.device->stats().powerFailures, 0u)
        << "the LVI threshold preempts brown-outs";
}

TEST(Checkpoint, ProgressWhereAtomicTaskIsInfeasible)
{
    // The same 5 s workload as a single Chain task can never complete
    // on this bank — the checkpointing kernel finishes it.
    CkptRig chain_rig(parts::edlc7_5mF());
    rt::App app;
    bool task_done = false;
    app.addTask("big", 5.0, 0.0, [&](Kernel &) -> const Task * {
        task_done = true;
        return nullptr;
    });
    Kernel chain(*chain_rig.device, app);
    chain.start();
    chain_rig.sim.runUntil(600.0);
    EXPECT_FALSE(task_done) << "atomic task exceeds the bank";
    EXPECT_GT(chain.stats().taskRestarts, 5u);

    CkptRig ckpt_rig(parts::edlc7_5mF());
    bool complete = false;
    CheckpointKernel k(*ckpt_rig.device, CheckpointKernel::Spec{}, 5.0,
                       0.0, [&] { complete = true; });
    k.start();
    ckpt_rig.sim.runUntil(600.0);
    EXPECT_TRUE(complete);
}

TEST(Checkpoint, OverheadAccounted)
{
    CkptRig rig(parts::edlc7_5mF());
    CheckpointKernel::Spec spec;
    bool complete = false;
    CheckpointKernel k(*rig.device, spec, 3.0, 0.0,
                       [&] { complete = true; });
    k.start();
    rig.sim.runUntil(600.0);
    ASSERT_TRUE(complete);
    double expected =
        double(k.stats().checkpoints) * spec.checkpointTime +
        double(k.stats().restores) * spec.restoreTime;
    EXPECT_NEAR(k.stats().overheadTime, expected, 1e-9);
}

TEST(Checkpoint, InsufficientHeadroomLosesWork)
{
    // With (near) zero headroom the checkpoint write itself browns
    // out; the kernel keeps losing the in-flight slice.
    CkptRig rig(parts::x5r100uF().parallel(4));
    CheckpointKernel::Spec spec;
    spec.voltageHeadroom = 1e-4;
    spec.checkpointTime = 30e-3;  // expensive write
    bool complete = false;
    CheckpointKernel k(*rig.device, spec, 2.0, 0.0,
                       [&] { complete = true; });
    k.start();
    rig.sim.runUntil(120.0);
    EXPECT_GT(k.stats().lostWork, 0.0);
    EXPECT_GT(rig.device->stats().powerFailures, 0u);
    (void)complete;
}

TEST(Checkpoint, SmallBankPaysMoreOverhead)
{
    auto run = [](CapacitorSpec bank) {
        CkptRig rig(bank);
        bool complete = false;
        CheckpointKernel k(*rig.device, CheckpointKernel::Spec{}, 2.0,
                           0.0, [&] { complete = true; });
        k.start();
        rig.sim.runUntil(3600.0);
        EXPECT_TRUE(complete);
        return k.stats().checkpoints;
    };
    auto small = run(parts::x5r100uF().parallel(8));
    auto large = run(parts::edlc7_5mF().parallel(4));
    EXPECT_GT(small, 3 * large)
        << "smaller buffers checkpoint far more often";
}

TEST(TraceHarvester, StepPlaybackAndBoundaries)
{
    TraceHarvester h({{0.0, 1e-3}, {10.0, 5e-3}, {20.0, 0.0}}, 3.3,
                     false);
    EXPECT_DOUBLE_EQ(h.power(0.0), 1e-3);
    EXPECT_DOUBLE_EQ(h.power(9.99), 1e-3);
    EXPECT_DOUBLE_EQ(h.power(10.0), 5e-3);
    EXPECT_DOUBLE_EQ(h.power(19.0), 5e-3);
    EXPECT_DOUBLE_EQ(h.power(21.0), 0.0);
    EXPECT_DOUBLE_EQ(h.power(1000.0), 0.0);
    EXPECT_DOUBLE_EQ(h.nextChange(0.0), 10.0);
    EXPECT_DOUBLE_EQ(h.nextChange(10.0), 20.0);
    EXPECT_DOUBLE_EQ(h.voltage(5.0), 3.3);
}

TEST(TraceHarvester, LoopingRepeatsTrace)
{
    TraceHarvester h({{0.0, 2e-3}, {5.0, 8e-3}}, 3.3, true);
    double span = h.traceSpan();
    EXPECT_DOUBLE_EQ(span, 10.0);  // 5.0 + mean step 5.0
    EXPECT_DOUBLE_EQ(h.power(1.0), 2e-3);
    EXPECT_DOUBLE_EQ(h.power(6.0), 8e-3);
    EXPECT_DOUBLE_EQ(h.power(span + 1.0), 2e-3);
    EXPECT_DOUBLE_EQ(h.power(span + 6.0), 8e-3);
    // Boundaries advance across loop iterations.
    double b = h.nextChange(span + 1.0);
    EXPECT_NEAR(b, span + 5.0, 1e-9);
}

TEST(TraceHarvester, DrivesPowerSystem)
{
    PowerSystem::Spec spec;
    // 30 s of darkness, then strong light.
    PowerSystem ps(spec,
                   std::make_unique<TraceHarvester>(
                       TraceHarvester({{0.0, 0.0}, {30.0, 10e-3}}, 3.3,
                                      false)));
    ps.addBank("b", parts::x5r100uF().parallel(4));
    sim::Time t_full = ps.timeToFull();
    ASSERT_TRUE(std::isfinite(t_full));
    EXPECT_GT(t_full, 30.0) << "nothing charges during darkness";
    ps.advanceTo(29.9);
    EXPECT_LT(ps.storageVoltage(), 0.05);
    ps.advanceTo(t_full + 0.1);
    EXPECT_TRUE(ps.isFull());
}

TEST(TraceHarvester, SingleSampleTrace)
{
    TraceHarvester h({{0.0, 4e-3}}, 3.3, true);
    EXPECT_DOUBLE_EQ(h.power(0.0), 4e-3);
    EXPECT_DOUBLE_EQ(h.power(123.0), 4e-3);
}
