#include "core/energy_mode.hh"

#include "sim/logging.hh"

namespace capy::core
{

ModeId
ModeRegistry::define(std::string name, std::vector<int> switched_banks)
{
    capy_assert(!name.empty(), "mode needs a name");
    capy_assert(find(name) == kNoMode, "duplicate mode '%s'",
                name.c_str());
    modes.push_back(Mode{std::move(name), std::move(switched_banks)});
    return static_cast<ModeId>(modes.size()) - 1;
}

const ModeRegistry::Mode &
ModeRegistry::get(ModeId id) const
{
    capy_assert(id >= 0 && id < static_cast<ModeId>(modes.size()),
                "bad mode id %d", id);
    return modes[static_cast<std::size_t>(id)];
}

const std::string &
ModeRegistry::name(ModeId id) const
{
    return get(id).modeName;
}

const std::vector<int> &
ModeRegistry::banks(ModeId id) const
{
    return get(id).bankSet;
}

ModeId
ModeRegistry::find(const std::string &name) const
{
    for (std::size_t i = 0; i < modes.size(); ++i)
        if (modes[i].modeName == name)
            return static_cast<ModeId>(i);
    return kNoMode;
}

const char *
annKindName(AnnKind kind)
{
    switch (kind) {
      case AnnKind::None:
        return "none";
      case AnnKind::Config:
        return "config";
      case AnnKind::Burst:
        return "burst";
      case AnnKind::Preburst:
        return "preburst";
    }
    capy_panic("unknown AnnKind %d", static_cast<int>(kind));
}

Annotation
Annotation::config(ModeId m)
{
    return Annotation{AnnKind::Config, m, kNoMode};
}

Annotation
Annotation::burst(ModeId m)
{
    return Annotation{AnnKind::Burst, m, kNoMode};
}

Annotation
Annotation::preburst(ModeId bmode, ModeId emode)
{
    return Annotation{AnnKind::Preburst, emode, bmode};
}

} // namespace capy::core
