# Empty dependencies file for bench_checkpoint_comparison.
# This may be replaced when dependencies are built.
