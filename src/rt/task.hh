/**
 * @file
 * Task-based intermittent programming model in the style of Chain
 * [Colin & Lucia, OOPSLA'16], which the paper's applications are
 * written in (§6.1).
 *
 * An application is a graph of function-like tasks. A task executes
 * atomically: its externally visible effects (its body) apply only
 * when the task runs to completion, and control transfers to the next
 * task through a non-volatile task pointer committed at the
 * transition. A power failure mid-task discards the attempt; on
 * reboot the same task restarts from the top.
 */

#ifndef CAPY_RT_TASK_HH
#define CAPY_RT_TASK_HH

#include <deque>
#include <functional>
#include <string>

namespace capy::rt
{

class Kernel;
struct Task;

/**
 * Task body: runs at the instant the task's atomic workload
 * completes, applies the task's effects (sampling, computation,
 * transmission bookkeeping), and names the successor task
 * (the `nexttask` statement). Returning nullptr halts the
 * application.
 */
using TaskBody = std::function<const Task *(Kernel &)>;

/**
 * One application task. Execution cost is explicit: @ref duration
 * seconds of atomic operation at the MCU's active power plus
 * @ref extraPower for the peripherals and radios the task keeps on.
 */
struct Task
{
    std::string name;
    /** Atomic execution time, s. */
    double duration = 0.0;
    /** Peripheral/radio power on top of MCU active power, W. */
    double extraPower = 0.0;
    /**
     * If positive, the total rail power of the task, replacing
     * mcu.activePower + extraPower. Used for workloads where the host
     * MCU sleeps while a subsystem works (e.g. a radio session).
     */
    double absolutePower = 0.0;
    /** Effects + successor selection, applied at completion. */
    TaskBody body;
    /**
     * Optional low-power pause after the task commits, s (sleep
     * pacing between samples; the device stays on at sleep power).
     */
    double sleepAfter = 0.0;
};

/**
 * An application: an owning container of tasks with stable addresses
 * plus a designated entry task.
 */
class App
{
  public:
    /** Create a task; the returned pointer is stable for the App's
     *  lifetime. The first task added becomes the entry by default. */
    Task *addTask(std::string name, double duration, double extra_power,
                  TaskBody body, double sleep_after = 0.0);

    /** Override the entry task. */
    void setEntry(const Task *task);

    const Task *entry() const;

    std::size_t taskCount() const { return tasks.size(); }

    /** Look up a task by name; nullptr when absent. */
    const Task *find(const std::string &name) const;

    /** Whether @p task is one of this app's tasks (audit check on a
     *  pointer recovered from non-volatile memory). */
    bool owns(const Task *task) const;

  private:
    std::deque<Task> tasks;
    const Task *entryTask = nullptr;
};

} // namespace capy::rt

#endif // CAPY_RT_TASK_HH
