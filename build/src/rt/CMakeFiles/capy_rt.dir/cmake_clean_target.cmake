file(REMOVE_RECURSE
  "libcapy_rt.a"
)
