# Empty dependencies file for bench_fig11_intersample.
# This may be replaced when dependencies are built.
