#include "rt/kernel.hh"

#include <utility>

#include "sim/logging.hh"

namespace capy::rt
{

Kernel::Kernel(dev::Device &device, const App &app, dev::NvMemory *nv)
    : dev(device), application(app), nvCurrent(nv, app.entry())
{}

void
Kernel::setPreTaskGate(PreTaskGate gate)
{
    capy_assert(!started, "gate must be installed before start()");
    preTaskGate = std::move(gate);
}

void
Kernel::start()
{
    capy_assert(!started, "kernel already started");
    started = true;
    dev.setHooks(dev::Device::Hooks{
        .onBoot = [this] { onBoot(); },
        .onPowerFail = [this] { onPowerFail(); },
    });
    dev.start();
}

void
Kernel::onBoot()
{
    if (isHalted)
        return;
    executeCurrent();
}

void
Kernel::onPowerFail()
{
    // The interrupted attempt left no visible effects (task bodies run
    // only at completion); the NV task pointer still designates the
    // interrupted task, which restarts on the next boot.
    if (inTask) {
        inTask = false;
        ++kernelStats.taskRestarts;
        const Task *task = nvCurrent.get();
        auto &use = taskEnergy[task->name];
        ++use.failedAttempts;
        const auto &aborted = dev.lastAbortedWorkload();
        use.wastedEnergy += aborted.railPower * aborted.elapsed;
    }
}

void
Kernel::executeCurrent()
{
    const Task *task = nvCurrent.get();
    capy_assert(task != nullptr, "kernel scheduled with no task");
    if (preTaskGate) {
        preTaskGate(*task, [this, task] { runTask(task); });
        return;
    }
    runTask(task);
}

void
Kernel::runTask(const Task *task)
{
    inTask = true;
    double power = task->absolutePower > 0.0
                       ? task->absolutePower
                       : dev.mcu().activePower + task->extraPower;
    dev.runWorkload(power, task->duration,
                    [this, task] { completeTask(task); });
}

void
Kernel::completeTask(const Task *task)
{
    inTask = false;
    ++kernelStats.taskCompletions;
    auto &use = taskEnergy[task->name];
    ++use.completions;
    double power = task->absolutePower > 0.0
                       ? task->absolutePower
                       : dev.mcu().activePower + task->extraPower;
    use.railEnergy += power * task->duration;
    use.activeTime += task->duration;
    const Task *next = task->body(*this);
    commitTransition(next);
    if (isHalted)
        return;
    if (task->sleepAfter > 0.0) {
        // Low-power pause after the transition committed; the pause is
        // outside the atomic region, so a power failure during it
        // leaves the committed transition standing.
        dev.runWorkload(dev.mcu().sleepPower, task->sleepAfter,
                        [this] { executeCurrent(); });
        return;
    }
    executeCurrent();
}

void
Kernel::commitTransition(const Task *next)
{
    if (next == nullptr) {
        isHalted = true;
        return;
    }
    ++kernelStats.transitions;
    nvCurrent.set(next);
}

} // namespace capy::rt
